//! MinHash/LSH blocking over attribute-name 3-gram sets.
//!
//! The second pruning stage groups *near-duplicate* sources — perturbed
//! copies of the same base schema, mirrors under slightly different names —
//! into clusters, so the coarse solve selects among schema families instead
//! of among individual mirrors. Similarity here is the Jaccard coefficient
//! between the union of each source's attribute-name 3-gram sets, estimated
//! by `MinHash`: `P[minhash_i(A) = minhash_i(B)] = J(A, B)`. Banding the
//! signature turns that into a locality-sensitive hash: sources agreeing on
//! *all* rows of at least one band land in the same bucket, and co-bucketed
//! sources merge via union–find.
//!
//! Two deliberate alignments with the rest of the workspace:
//!
//! * the 3-gram shingles are [`JaccardNGram::grams`] — byte-for-byte the
//!   gram definition the matcher's similarity measure scores with, so LSH
//!   recall approximates the same Jaccard the matcher later computes;
//! * an extra *name band* buckets sources by
//!   [`mube_core::canonical_name_key`], the MUBE016 normalization — two
//!   sources the audit calls near-duplicates by name can never land in
//!   different clusters.
//!
//! Signature computation is embarrassingly parallel and
//! [`block_with_threads`] exploits that with scoped threads writing
//! disjoint chunks of a preallocated signature table; bucketing and
//! union–find are then sequential over the table in index order, so the
//! result is **byte-identical for every thread count**.

use std::collections::BTreeMap;

use mube_core::canonical_name_key;
use mube_match::JaccardNGram;
use mube_sketch::hash::{fnv1a64, Mix64};

use crate::stream::SourceRecord;

/// MinHash/LSH parameters.
#[derive(Debug, Clone)]
pub struct LshConfig {
    /// Signature length: `bands × rows_per_band`.
    pub num_hashes: usize,
    /// Number of bands. More bands (fewer rows each) lowers the similarity
    /// threshold at which sources start colliding (`t ≈ (1/b)^(1/r)`).
    pub bands: usize,
    /// Seed of the `MinHash` function family.
    pub seed: u64,
}

impl Default for LshConfig {
    /// 32 hashes in 8 bands of 4 rows: collision threshold ≈ 0.6 Jaccard,
    /// tuned for "perturbed copy of the same base schema".
    fn default() -> Self {
        LshConfig {
            num_hashes: 32,
            bands: 8,
            seed: 0x006C_7368, // "lsh"
        }
    }
}

impl LshConfig {
    fn rows_per_band(&self) -> usize {
        assert!(
            self.bands > 0 && self.num_hashes > 0,
            "degenerate LSH config"
        );
        assert!(
            self.num_hashes.is_multiple_of(self.bands),
            "num_hashes must be divisible by bands"
        );
        self.num_hashes / self.bands
    }
}

/// The blocking outcome: a partition of record positions into clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocks {
    /// Clusters of positions into the record slice handed to [`block`].
    /// Each cluster is sorted ascending; clusters are sorted by their
    /// smallest member. Singletons are included — every input position
    /// appears exactly once.
    pub clusters: Vec<Vec<usize>>,
}

/// One record's `MinHash` signature plus its canonical-name key hash.
struct RecordSketch {
    minhash: Vec<u64>,
    name_key: Option<u64>,
}

/// The 3-gram set of a record: the union of its attribute names' grams,
/// each gram folded to a `u64`. Uses the matcher's gram definition.
fn gram_hashes(record: &SourceRecord, grams: &JaccardNGram) -> Vec<u64> {
    let mut out = Vec::new();
    for (_, attr) in record.schema.iter() {
        for gram in grams.grams(attr.name()) {
            let text: String = gram.into_iter().collect();
            out.push(fnv1a64(text.as_bytes()));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn sketch(record: &SourceRecord, cfg: &LshConfig, grams: &JaccardNGram) -> RecordSketch {
    let hashes = gram_hashes(record, grams);
    let minhash = (0..cfg.num_hashes)
        .map(|i| {
            let h = Mix64::new(cfg.seed.wrapping_add(i as u64));
            hashes
                .iter()
                .map(|&g| h.hash_u64(g))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect();
    let key = canonical_name_key(&record.name);
    RecordSketch {
        minhash,
        name_key: (!key.is_empty()).then(|| fnv1a64(key.as_bytes())),
    }
}

/// Disjoint-set forest with path halving; union by smaller root so cluster
/// representatives are always the smallest member (determinism).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Blocks records into near-duplicate clusters. Sequential form of
/// [`block_with_threads`].
pub fn block(records: &[SourceRecord], cfg: &LshConfig) -> Blocks {
    block_with_threads(records, cfg, 1)
}

/// Blocks records into near-duplicate clusters, computing `MinHash`
/// signatures with up to `threads` OS threads.
///
/// Determinism contract: the returned [`Blocks`] are byte-identical for
/// every `threads` value — each record's signature is a pure function of
/// the record and the seed, threads write disjoint signature slots, and
/// everything after the signature table is sequential in index order.
pub fn block_with_threads(records: &[SourceRecord], cfg: &LshConfig, threads: usize) -> Blocks {
    let rows = cfg.rows_per_band();
    let grams = JaccardNGram::trigram();
    let n = records.len();
    if n == 0 {
        return Blocks {
            clusters: Vec::new(),
        };
    }

    let mut sketches: Vec<Option<RecordSketch>> = Vec::with_capacity(n);
    sketches.resize_with(n, || None);
    let threads = threads.clamp(1, n);
    if threads == 1 {
        for (slot, record) in sketches.iter_mut().zip(records) {
            *slot = Some(sketch(record, cfg, &grams));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (slots, recs) in sketches.chunks_mut(chunk).zip(records.chunks(chunk)) {
                let grams = &grams;
                scope.spawn(move || {
                    for (slot, record) in slots.iter_mut().zip(recs) {
                        *slot = Some(sketch(record, cfg, grams));
                    }
                });
            }
        });
    }

    // Band buckets: key = (band index, hash of the band's rows). BTreeMap
    // iteration order is irrelevant for the result (union-find is
    // order-insensitive given smallest-root union), but deterministic
    // anyway.
    let mut buckets: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for (i, slot) in sketches.iter().enumerate() {
        let s = slot.as_ref().expect("every slot filled above");
        for band in 0..cfg.bands {
            let row_slice = &s.minhash[band * rows..(band + 1) * rows];
            let mut bytes = Vec::with_capacity(rows * 8);
            for v in row_slice {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            buckets.entry((band, fnv1a64(&bytes))).or_default().push(i);
        }
        // The canonical-name band: MUBE016-equal names always co-bucket.
        if let Some(key) = s.name_key {
            buckets.entry((cfg.bands, key)).or_default().push(i);
        }
    }

    let mut uf = UnionFind::new(n);
    for members in buckets.values() {
        for window in members.windows(2) {
            uf.union(window[0], window[1]);
        }
    }

    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = uf.find(i);
        by_root.entry(root).or_default().push(i);
    }
    Blocks {
        clusters: by_root.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::LazySignature;
    use mube_core::schema::Schema;
    use mube_core::source::Characteristics;

    fn rec(index: usize, name: &str, attrs: &[&str]) -> SourceRecord {
        SourceRecord {
            index,
            name: name.to_string(),
            schema: Schema::new(attrs.iter().map(|a| (*a).to_string())),
            cardinality: 10,
            characteristics: Characteristics::new(),
            signature: LazySignature::Absent,
        }
    }

    #[test]
    fn identical_schemas_cluster_together() {
        let records = vec![
            rec(0, "a", &["book title", "author name", "isbn number"]),
            rec(1, "b", &["book title", "author name", "isbn number"]),
            rec(2, "c", &["departure airport", "arrival airport", "fare"]),
        ];
        let blocks = block(&records, &LshConfig::default());
        assert_eq!(blocks.clusters, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn lightly_perturbed_schemas_cluster() {
        let records = vec![
            rec(
                0,
                "a",
                &["book title", "author name", "isbn number", "price"],
            ),
            rec(
                1,
                "b",
                &["book title", "author name", "isbn number", "publisher"],
            ),
            rec(2, "c", &["wingspan", "altitude", "fuel capacity"]),
        ];
        let blocks = block(&records, &LshConfig::default());
        assert_eq!(blocks.clusters.len(), 2, "{:?}", blocks.clusters);
        assert_eq!(blocks.clusters[0], vec![0, 1]);
    }

    #[test]
    fn canonical_name_band_forces_mube016_pairs_together() {
        // Disjoint schemas (no gram collisions) but MUBE016-equal names.
        let records = vec![
            rec(0, "Movie DB", &["departure airport"]),
            rec(1, "movie_db", &["hardback price"]),
        ];
        let blocks = block(&records, &LshConfig::default());
        assert_eq!(blocks.clusters, vec![vec![0, 1]]);
        // Sanity: distinct names with the same disjoint schemas stay apart.
        let records = vec![
            rec(0, "alpha", &["departure airport"]),
            rec(1, "beta", &["hardback price"]),
        ];
        let blocks = block(&records, &LshConfig::default());
        assert_eq!(blocks.clusters.len(), 2);
    }

    #[test]
    fn every_position_appears_exactly_once() {
        let records: Vec<SourceRecord> = (0..40)
            .map(|i| {
                rec(
                    i,
                    &format!("s{i}"),
                    &[["title", "author"], ["fare", "airline"]][i % 2],
                )
            })
            .collect();
        let blocks = block(&records, &LshConfig::default());
        let mut seen: Vec<usize> = blocks.clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        // Clusters sorted by smallest member, members sorted.
        for c in &blocks.clusters {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(blocks.clusters.windows(2).all(|w| w[0][0] < w[1][0]));
    }

    #[test]
    fn byte_deterministic_across_thread_counts() {
        let records: Vec<SourceRecord> = (0..64)
            .map(|i| {
                let attrs: Vec<String> = (0..4).map(|j| format!("attr {} {}", i % 7, j)).collect();
                SourceRecord {
                    index: i,
                    name: format!("site{i:04}"),
                    schema: Schema::new(attrs),
                    cardinality: i as u64,
                    characteristics: Characteristics::new(),
                    signature: LazySignature::Absent,
                }
            })
            .collect();
        let cfg = LshConfig::default();
        let reference = block_with_threads(&records, &cfg, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                block_with_threads(&records, &cfg, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn seed_changes_bucketing_potential() {
        // Different seeds give a different hash family; the *partition* may
        // coincide on easy inputs, but the underlying sketches must differ.
        let r = rec(0, "x", &["book title", "author name"]);
        let a = sketch(&r, &LshConfig::default(), &JaccardNGram::trigram());
        let b = sketch(
            &r,
            &LshConfig {
                seed: 999,
                ..LshConfig::default()
            },
            &JaccardNGram::trigram(),
        );
        assert_ne!(a.minhash, b.minhash);
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        assert!(block(&[], &LshConfig::default()).clusters.is_empty());
    }
}

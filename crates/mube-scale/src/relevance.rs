//! Cheap linear relevance scoring — the first pruning stage.
//!
//! Before any similarity computation or signature synthesis, every streamed
//! source gets a score from a fixed table of additive components: keyword
//! hits against the source name and attribute names, desirable
//! characteristics, and a logarithmic cardinality prior. One pass over the
//! stream with a bounded min-heap keeps the top `k` — memory is `O(k)`, not
//! `O(catalog)`.
//!
//! The table weights follow the classic "scoring table" idiom for source
//! ranking front ends: exact matches dominate partial matches, name hits
//! dominate attribute hits, and the data-volume prior only breaks ties
//! between otherwise indistinguishable sources. Scores are *not* qualities
//! in `[0, 1]`; they only need a total order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::stream::{SourceRecord, SourceStream};

/// What the user is looking for, in keyword form.
#[derive(Debug, Clone, Default)]
pub struct RelevanceQuery {
    /// Terms matched (case-insensitively) against source and attribute
    /// names. Empty is allowed: scoring then degenerates to the
    /// characteristic and cardinality priors.
    pub keywords: Vec<String>,
    /// Characteristics whose *presence* makes a source preferable (e.g.
    /// `mttf`: the source advertises a fault profile).
    pub prefer_characteristics: Vec<String>,
}

/// Scoring-table weights. The defaults encode exact ≫ partial and
/// name ≫ attribute; override for experiments.
#[derive(Debug, Clone)]
pub struct ScoringTable {
    /// Source name equals a keyword (canonicalized).
    pub name_exact: f64,
    /// Source name contains a keyword.
    pub name_partial: f64,
    /// An attribute name equals a keyword.
    pub attr_exact: f64,
    /// An attribute name contains a keyword.
    pub attr_partial: f64,
    /// A preferred characteristic is present.
    pub characteristic_present: f64,
    /// Weight on `ln(1 + cardinality)` — the volume prior.
    pub log_cardinality: f64,
}

impl Default for ScoringTable {
    fn default() -> Self {
        ScoringTable {
            name_exact: 10.0,
            name_partial: 5.0,
            attr_exact: 3.0,
            attr_partial: 2.0,
            characteristic_present: 1.0,
            log_cardinality: 0.1,
        }
    }
}

/// Scores one record against a query. Pure and allocation-light: the hot
/// path of the 100k-source scan.
pub fn score(record: &SourceRecord, query: &RelevanceQuery, table: &ScoringTable) -> f64 {
    let mut total = table.log_cardinality * (1.0 + record.cardinality as f64).ln();
    let name = record.name.to_lowercase();
    for keyword in &query.keywords {
        let kw = keyword.to_lowercase();
        if kw.is_empty() {
            continue;
        }
        if name == kw {
            total += table.name_exact;
        } else if name.contains(&kw) {
            total += table.name_partial;
        }
        for (_, attr) in record.schema.iter() {
            let attr_name = attr.name().to_lowercase();
            if attr_name == kw {
                total += table.attr_exact;
            } else if attr_name.contains(&kw) {
                total += table.attr_partial;
            }
        }
    }
    for characteristic in &query.prefer_characteristics {
        if record.characteristics.contains_key(characteristic) {
            total += table.characteristic_present;
        }
    }
    total
}

/// A survivor of the relevance stage.
pub struct Scored {
    /// The record itself.
    pub record: SourceRecord,
    /// Its relevance score.
    pub score: f64,
}

/// Heap entry ordered worst-first so the binary heap pops the weakest
/// survivor. Ties break toward *keeping* the lower stream index, making the
/// survivor set deterministic for any scan order.
struct HeapEntry {
    score: f64,
    record: SourceRecord,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the greatest element; define "greatest" as the
        // *worst* survivor — lowest score, ties broken toward the higher
        // stream index — so popping evicts exactly the record we want gone.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.record.index.cmp(&other.record.index))
    }
}

/// One streaming pass keeping the `k` best-scoring records (plus every
/// record whose name is in `force_keep`, regardless of score — pinned
/// sources must survive pruning). Survivors return sorted by stream index.
pub fn top_k(
    stream: &dyn SourceStream,
    query: &RelevanceQuery,
    table: &ScoringTable,
    k: usize,
    force_keep: &[String],
) -> Vec<Scored> {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    let mut forced: Vec<Scored> = Vec::new();
    stream.visit(&mut |record| {
        let s = score(&record, query, table);
        if force_keep.contains(&record.name) {
            forced.push(Scored { record, score: s });
            return;
        }
        if k == 0 {
            return;
        }
        heap.push(HeapEntry { score: s, record });
        if heap.len() > k {
            heap.pop(); // discard the current worst
        }
    });
    let mut out: Vec<Scored> = heap
        .into_iter()
        .map(|e| Scored {
            score: e.score,
            record: e.record,
        })
        .collect();
    out.extend(forced);
    out.sort_by_key(|s| s.record.index);
    out.dedup_by_key(|s| s.record.index);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::UniverseStream;
    use mube_core::schema::Schema;
    use mube_core::source::{SourceSpec, Universe};

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("movies", Schema::new(["title", "director"]))
                .cardinality(1000)
                .characteristic("mttf", 80.0),
        );
        b.add_source(SourceSpec::new("books", Schema::new(["title", "author"])).cardinality(100));
        b.add_source(SourceSpec::new("airfares", Schema::new(["fare", "airline"])).cardinality(10));
        b.add_source(SourceSpec::new("moviedb", Schema::new(["movie title"])).cardinality(10));
        b.build().unwrap()
    }

    fn query(words: &[&str]) -> RelevanceQuery {
        RelevanceQuery {
            keywords: words.iter().map(|s| (*s).to_string()).collect(),
            prefer_characteristics: vec!["mttf".to_string()],
        }
    }

    #[test]
    fn keyword_hits_dominate_priors() {
        let u = universe();
        let stream = UniverseStream::new(&u);
        let table = ScoringTable::default();
        let q = query(&["movie"]);
        let scores: Vec<f64> = (0..stream.len())
            .map(|i| score(&stream.get(i), &q, &table))
            .collect();
        // "movies" (partial name hit + mttf) and "moviedb" (partial name +
        // partial attr) outrank "books"/"airfares" despite cardinalities.
        assert!(scores[0] > scores[1], "{scores:?}");
        assert!(scores[3] > scores[2], "{scores:?}");
    }

    #[test]
    fn exact_beats_partial() {
        let u = universe();
        let stream = UniverseStream::new(&u);
        let table = ScoringTable::default();
        let exact = score(&stream.get(1), &query(&["books"]), &table);
        let partial = score(&stream.get(1), &query(&["book"]), &table);
        assert!(exact > partial);
    }

    #[test]
    fn top_k_is_bounded_and_sorted() {
        let u = universe();
        let stream = UniverseStream::new(&u);
        let survivors = top_k(
            &stream,
            &query(&["title"]),
            &ScoringTable::default(),
            2,
            &[],
        );
        assert_eq!(survivors.len(), 2);
        assert!(survivors
            .windows(2)
            .all(|w| w[0].record.index < w[1].record.index));
        // "title" is an exact attribute of sources 0 and 1.
        let kept: Vec<usize> = survivors.iter().map(|s| s.record.index).collect();
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn force_keep_overrides_score() {
        let u = universe();
        let stream = UniverseStream::new(&u);
        let survivors = top_k(
            &stream,
            &query(&["title"]),
            &ScoringTable::default(),
            1,
            &["airfares".to_string()],
        );
        let kept: Vec<&str> = survivors.iter().map(|s| s.record.name.as_str()).collect();
        assert!(kept.contains(&"airfares"), "{kept:?}");
        assert_eq!(survivors.len(), 2, "1 scored + 1 forced");
    }

    #[test]
    fn equal_scores_keep_lower_indices() {
        // Four identical sources, k = 2: the survivor set must be the two
        // lowest indices, deterministically.
        let mut b = Universe::builder();
        for i in 0..4 {
            b.add_source(SourceSpec::new(format!("s{i}"), Schema::new(["x"])).cardinality(5));
        }
        let u = b.build().unwrap();
        let stream = UniverseStream::new(&u);
        let survivors = top_k(
            &stream,
            &RelevanceQuery::default(),
            &ScoringTable::default(),
            2,
            &[],
        );
        let kept: Vec<usize> = survivors.iter().map(|s| s.record.index).collect();
        assert_eq!(kept, vec![0, 1]);
    }
}

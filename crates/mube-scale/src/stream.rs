//! Streaming catalog ingest.
//!
//! At internet scale the catalog cannot be a materialized [`Universe`]: a
//! million [`mube_core::source::Source`]s with PCSA signatures is gigabytes
//! of state, almost all of it belonging to sources the pruning front end
//! will discard unseen. This module defines the ingest contract the rest of
//! the pipeline works against: a [`SourceStream`] yields *records* — name,
//! schema, cardinality, characteristics — one at a time, and defers the
//! expensive part (the `O(cardinality)` PCSA signature) behind a
//! [`LazySignature`] that is only forced for sources that survive pruning.
//!
//! Two implementations ship: [`SynthStream`] over `mube-synth`'s
//! [`StreamingUniverse`] (on-demand synthesis from seeds; peak memory
//! independent of the total tuple count) and [`UniverseStream`] over an
//! already-materialized universe (the `mube-serve` `prune` path, where the
//! catalog was uploaded in full).

use mube_core::schema::Schema;
use mube_core::source::{Characteristics, SourceSpec, Universe};
use mube_sketch::pcsa::PcsaConfig;
use mube_sketch::PcsaSignature;
use mube_synth::data_gen::TupleWindows;
use mube_synth::universe::StreamingUniverse;

/// A PCSA signature that may not have been synthesized yet.
///
/// Forcing a signature costs `O(cardinality)` hashing for the
/// [`LazySignature::Windows`] form, so the pipeline only does it for the
/// (bounded) survivor set — and memoizes the result, since survivors are
/// forced once for the cluster-representative union and again when they
/// materialize into the fine sub-universe.
#[derive(Debug, Clone)]
pub enum LazySignature {
    /// Already materialized (catalog uploads).
    Ready(PcsaSignature),
    /// Synthesizable on demand from interval-compressed tuple windows.
    Windows {
        /// The source's tuple windows.
        windows: TupleWindows,
        /// The PCSA configuration to synthesize under.
        pcsa: PcsaConfig,
        /// Synthesized at most once per record (clones carry the cache).
        cache: std::sync::OnceLock<PcsaSignature>,
    },
    /// The source is uncooperative: no signature exists.
    Absent,
}

impl LazySignature {
    /// Wraps tuple windows for on-demand synthesis under `pcsa`.
    pub fn windows(windows: TupleWindows, pcsa: PcsaConfig) -> Self {
        LazySignature::Windows {
            windows,
            pcsa,
            cache: std::sync::OnceLock::new(),
        }
    }

    /// Forces the signature, synthesizing it (once) if needed. `None` for
    /// uncooperative sources.
    pub fn force(&self) -> Option<PcsaSignature> {
        match self {
            LazySignature::Ready(sig) => Some(sig.clone()),
            LazySignature::Windows {
                windows,
                pcsa,
                cache,
            } => Some(
                cache
                    .get_or_init(|| windows.signature(pcsa.clone()))
                    .clone(),
            ),
            LazySignature::Absent => None,
        }
    }
}

/// One source as seen by the pruning front end: everything cheap, with the
/// signature deferred.
#[derive(Debug, Clone)]
pub struct SourceRecord {
    /// Position in the stream (`0..stream.len()`); the stable identity the
    /// pipeline uses until a sub-universe is built.
    pub index: usize,
    /// Source name.
    pub name: String,
    /// The source's schema.
    pub schema: Schema,
    /// Reported tuple count.
    pub cardinality: u64,
    /// Non-functional characteristics.
    pub characteristics: Characteristics,
    /// The deferred PCSA signature.
    pub signature: LazySignature,
}

impl SourceRecord {
    /// Converts into a [`SourceSpec`], forcing the signature (for survivor
    /// sources entering a sub-universe).
    pub fn into_spec(self) -> SourceSpec {
        let mut spec = SourceSpec::new(self.name, self.schema).cardinality(self.cardinality);
        if let Some(sig) = self.signature.force() {
            spec = spec.signature(sig);
        }
        for (name, value) in &self.characteristics {
            spec = spec.characteristic(name.clone(), *value);
        }
        spec
    }
}

/// A finite, indexable stream of source records.
///
/// `get` must be pure: calling it twice with the same index yields the same
/// record (the pipeline relies on this to re-fetch survivors by index
/// instead of holding every record in memory). Object-safe, so pipelines
/// take `&dyn SourceStream`.
pub trait SourceStream {
    /// Number of sources in the stream.
    fn len(&self) -> usize;

    /// True if the stream has no sources.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Synthesizes or fetches the record at `index` (`< len`).
    fn get(&self, index: usize) -> SourceRecord;

    /// Visits every record in index order, one at a time. The default
    /// drives [`SourceStream::get`]; implementations with cheaper
    /// sequential access may override.
    fn visit(&self, f: &mut dyn FnMut(SourceRecord)) {
        for i in 0..self.len() {
            f(self.get(i));
        }
    }
}

/// Streams a [`StreamingUniverse`]: constant-memory on-demand synthesis.
pub struct SynthStream {
    inner: StreamingUniverse,
}

impl SynthStream {
    /// Wraps a streaming synthetic universe.
    pub fn new(inner: StreamingUniverse) -> Self {
        SynthStream { inner }
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &StreamingUniverse {
        &self.inner
    }
}

impl SourceStream for SynthStream {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, index: usize) -> SourceRecord {
        let src = self.inner.source(index);
        let characteristics: Characteristics = src
            .characteristics
            .iter()
            .map(|&(name, value)| (name.to_string(), value))
            .collect();
        SourceRecord {
            index,
            name: src.name,
            schema: src.schema,
            cardinality: src.cardinality,
            characteristics,
            signature: LazySignature::windows(src.windows, self.inner.pcsa().clone()),
        }
    }
}

/// Streams an already-materialized [`Universe`] — the ingest adapter for
/// catalogs that were uploaded in full (the server's `prune` path).
pub struct UniverseStream<'a> {
    universe: &'a Universe,
}

impl<'a> UniverseStream<'a> {
    /// Wraps a universe.
    pub fn new(universe: &'a Universe) -> Self {
        UniverseStream { universe }
    }
}

impl SourceStream for UniverseStream<'_> {
    fn len(&self) -> usize {
        self.universe.len()
    }

    fn get(&self, index: usize) -> SourceRecord {
        let src = self.universe.source(mube_core::SourceId(index as u32));
        SourceRecord {
            index,
            name: src.name().to_string(),
            schema: src.schema().clone(),
            cardinality: src.cardinality(),
            characteristics: src.characteristics().clone(),
            signature: src
                .signature()
                .map_or(LazySignature::Absent, |s| LazySignature::Ready(s.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_core::source::SourceSpec;
    use mube_synth::SynthConfig;

    #[test]
    fn synth_stream_defers_signatures() {
        let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::small(10), 3));
        assert_eq!(stream.len(), 10);
        let rec = stream.get(4);
        assert_eq!(rec.index, 4);
        assert!(matches!(rec.signature, LazySignature::Windows { .. }));
        let sig = rec.signature.force().expect("synthesizable");
        // Forcing twice is deterministic.
        let again = stream.get(4).signature.force().expect("synthesizable");
        assert_eq!(sig.estimate().to_bits(), again.estimate().to_bits());
    }

    #[test]
    fn visit_covers_every_index_in_order() {
        let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::small(7), 1));
        let mut seen = Vec::new();
        stream.visit(&mut |rec| seen.push(rec.index));
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn universe_stream_roundtrips_records() {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("alpha", Schema::new(["title"]))
                .cardinality(10)
                .characteristic("mttf", 50.0),
        );
        b.add_source(SourceSpec::new("beta", Schema::new(["name"])).cardinality(20));
        let u = b.build().unwrap();
        let stream = UniverseStream::new(&u);
        assert_eq!(stream.len(), 2);
        let rec = stream.get(0);
        assert_eq!(rec.name, "alpha");
        assert_eq!(rec.cardinality, 10);
        assert_eq!(rec.characteristics.get("mttf"), Some(&50.0));
        assert!(matches!(rec.signature, LazySignature::Absent));
        // Records rebuild into specs that produce an equivalent universe.
        let mut b2 = Universe::builder();
        stream.visit(&mut |rec| {
            b2.add_source(rec.into_spec());
        });
        let u2 = b2.build().unwrap();
        assert_eq!(u2.len(), 2);
        assert_eq!(u2.source_by_name("beta").unwrap().cardinality(), 20);
    }
}

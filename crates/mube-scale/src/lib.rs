//! # mube-scale — internet-scale source selection for `µBE`
//!
//! The paper solves source selection over hundreds of sources; the
//! dataspace it motivates has hundreds of thousands. This crate is the
//! front end that closes that gap, turning a massive catalog into a
//! tractable problem in three stages:
//!
//! 1. **streaming ingest** ([`stream`]) — a [`stream::SourceStream`]
//!    yields one source record at a time, with the `O(cardinality)` PCSA
//!    signature deferred behind [`stream::LazySignature`]; backed by
//!    `mube-synth`'s `StreamingUniverse` (on-demand synthesis from seeds)
//!    or an already-materialized universe. Peak memory never depends on
//!    the catalog's total tuple count.
//! 2. **candidate pruning** ([`relevance`], [`lsh`], [`cluster`]) — a
//!    cheap scoring-table pass keeps the `top_k` most relevant sources,
//!    then MinHash/LSH blocking over attribute-name 3-grams (the exact
//!    gram definition the matcher scores with) groups near-duplicates into
//!    clusters, each condensed to a representative with a PCSA-union
//!    signature. Sources whose names collapse under
//!    [`mube_core::canonical_name_key`] — the MUBE016 normalization — are
//!    guaranteed to co-cluster.
//! 3. **hierarchical two-level solve** ([`solve`]) — a coarse `Problem`
//!    over the cluster universe picks the best families under the existing
//!    solver/DeltaEval machinery, the winners expand back to their
//!    members, and a fine sub-universe `Problem` produces the final
//!    [`mube_core::Solution`], which the unchanged `SolutionValidator`
//!    must (and does) accept.
//!
//! ```
//! use mube_opt::{CancelToken, TabuSearch};
//! use mube_scale::{scale_solve, ScaleOptions, SynthStream};
//! use mube_synth::{StreamingUniverse, SynthConfig};
//!
//! let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::small(50), 7));
//! let mut opts = ScaleOptions::new(4);
//! opts.top_k = 30;
//! opts.theta = 0.3;
//! let report = scale_solve(&stream, &opts, &TabuSearch::default(), &CancelToken::none())
//!     .expect("feasible");
//! assert!(report.solution.sources.len() <= 4);
//! assert!(report.survivors <= 30);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod lsh;
pub mod relevance;
pub mod solve;
pub mod stream;

pub use cluster::{build_representatives, cluster_universe, ClusterRep};
pub use lsh::{block, block_with_threads, Blocks, LshConfig};
pub use relevance::{score, top_k, RelevanceQuery, Scored, ScoringTable};
pub use solve::{scale_solve, ScaleOptions, ScaleReport};
pub use stream::{LazySignature, SourceRecord, SourceStream, SynthStream, UniverseStream};

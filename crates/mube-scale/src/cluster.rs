//! Per-cluster representatives and the coarse cluster universe.
//!
//! After LSH blocking, each cluster of near-duplicate sources is condensed
//! into one representative pseudo-source the coarse solve can treat like
//! any other [`mube_core::source::Source`]:
//!
//! * **schema** — the most frequent attribute names across members (count
//!   desc, name asc), capped at the largest member schema, so the coarse
//!   matcher sees the family's consensus vocabulary;
//! * **signature** — the PCSA union of member signatures. PCSA unions are
//!   exactly the sketch of the union of the member tuple sets, so coverage
//!   and redundancy QEFs score the cluster as "all members combined";
//! * **cardinality** — the sum of member cardinalities (the union's upper
//!   bound, consistent with how a cluster would report itself);
//! * **characteristics** — per-name means over the members that report
//!   them.
//!
//! Representative names are `c{cluster:04}~{exemplar}` where the exemplar
//! is the smallest-index member — unique by construction and readable in
//! reports.

use mube_core::error::MubeError;
use mube_core::schema::Schema;
use mube_core::source::{Characteristics, SourceSpec, Universe};
use mube_sketch::PcsaSignature;

use crate::lsh::Blocks;
use crate::stream::SourceRecord;

/// One cluster's representative, plus the bookkeeping to expand it again.
pub struct ClusterRep {
    /// Positions (into the survivor record slice) of the members.
    pub members: Vec<usize>,
    /// Unique display name.
    pub name: String,
    /// Consensus schema.
    pub schema: Schema,
    /// Summed member cardinality.
    pub cardinality: u64,
    /// PCSA union of the cooperating members' signatures.
    pub signature: Option<PcsaSignature>,
    /// Per-name mean characteristics.
    pub characteristics: Characteristics,
}

/// Builds one representative per cluster. Forces member signatures — call
/// only on the (bounded) survivor set, never the raw catalog.
///
/// # Panics
///
/// Panics if a cluster references a position outside `records`, or if two
/// members carry PCSA signatures with mismatched configurations (the
/// streaming generators and catalog loader both enforce one shared config).
pub fn build_representatives(records: &[SourceRecord], blocks: &Blocks) -> Vec<ClusterRep> {
    blocks
        .clusters
        .iter()
        .enumerate()
        .map(|(ci, members)| {
            assert!(!members.is_empty(), "clusters are never empty");
            let exemplar = &records[members[0]];

            // Attribute-name frequency across members; deterministic order.
            let mut counts: std::collections::BTreeMap<&str, usize> =
                std::collections::BTreeMap::new();
            let mut max_len = 0usize;
            for &m in members {
                let schema = &records[m].schema;
                max_len = max_len.max(schema.len());
                for (_, attr) in schema.iter() {
                    *counts.entry(attr.name()).or_default() += 1;
                }
            }
            let mut names: Vec<(&str, usize)> = counts.into_iter().collect();
            names.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let schema = Schema::new(
                names
                    .into_iter()
                    .take(max_len)
                    .map(|(name, _)| name.to_string()),
            );

            let mut cardinality = 0u64;
            let mut signature: Option<PcsaSignature> = None;
            let mut sums: Characteristics = Characteristics::new();
            let mut counts_ch: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for &m in members {
                let r = &records[m];
                cardinality += r.cardinality;
                if let Some(sig) = r.signature.force() {
                    match &mut signature {
                        None => signature = Some(sig),
                        Some(acc) => acc
                            .union_assign(&sig)
                            .expect("survivors share one PCSA config"),
                    }
                }
                for (name, value) in &r.characteristics {
                    *sums.entry(name.clone()).or_default() += value;
                    *counts_ch.entry(name.clone()).or_default() += 1;
                }
            }
            let characteristics: Characteristics = sums
                .into_iter()
                .map(|(name, sum)| {
                    let n = counts_ch[&name];
                    (name, sum / n as f64)
                })
                .collect();

            ClusterRep {
                members: members.clone(),
                name: format!("c{ci:04}~{}", exemplar.name),
                schema,
                cardinality,
                signature,
                characteristics,
            }
        })
        .collect()
}

/// Materializes the coarse universe: cluster `i` becomes source id `i`.
pub fn cluster_universe(reps: &[ClusterRep]) -> Result<Universe, MubeError> {
    let mut builder = Universe::builder();
    for rep in reps {
        let mut spec =
            SourceSpec::new(rep.name.clone(), rep.schema.clone()).cardinality(rep.cardinality);
        if let Some(sig) = &rep.signature {
            spec = spec.signature(sig.clone());
        }
        for (name, value) in &rep.characteristics {
            spec = spec.characteristic(name.clone(), *value);
        }
        builder.add_source(spec);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::{block, LshConfig};
    use crate::stream::{SourceStream, UniverseStream};
    use mube_sketch::pcsa::PcsaConfig;

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(64, 32, 7));
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn records() -> Vec<SourceRecord> {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new(
                "m1",
                Schema::new(["movie title", "director name", "release year"]),
            )
            .cardinality(100)
            .signature(sig(0..100))
            .characteristic("mttf", 100.0),
        );
        b.add_source(
            SourceSpec::new(
                "m2",
                Schema::new(["movie title", "director name", "running time"]),
            )
            .cardinality(200)
            .signature(sig(50..250))
            .characteristic("mttf", 50.0),
        );
        b.add_source(
            SourceSpec::new("b1", Schema::new(["hardback price", "publisher city"]))
                .cardinality(50)
                .signature(sig(500..550)),
        );
        let u = b.build().unwrap();
        let stream = UniverseStream::new(&u);
        (0..stream.len()).map(|i| stream.get(i)).collect()
    }

    #[test]
    fn representatives_condense_clusters() {
        let records = records();
        let blocks = block(&records, &LshConfig::default());
        assert_eq!(blocks.clusters, vec![vec![0, 1], vec![2]]);
        let reps = build_representatives(&records, &blocks);
        assert_eq!(reps.len(), 2);
        let movies = &reps[0];
        assert_eq!(movies.members, vec![0, 1]);
        assert_eq!(movies.cardinality, 300);
        assert!(movies.name.starts_with("c0000~m1"), "{}", movies.name);
        // Consensus schema: shared names first, capped at max member size.
        let names: Vec<&str> = movies.schema.iter().map(|(_, a)| a.name()).collect();
        assert_eq!(names.len(), 3);
        assert_eq!(&names[..2], &["director name", "movie title"]);
        // Mean characteristic over reporting members only.
        assert_eq!(movies.characteristics.get("mttf"), Some(&75.0));
    }

    #[test]
    fn representative_signature_is_the_member_union() {
        let records = records();
        let blocks = block(&records, &LshConfig::default());
        let reps = build_representatives(&records, &blocks);
        let est = reps[0].signature.as_ref().unwrap().estimate();
        // Members cover tuple ids 0..250 (union 250); the PCSA estimate of
        // the union must be far closer to 250 than to the sum 300.
        let direct = sig(0..250).estimate();
        assert!((est - direct).abs() < 1e-9, "union is exact on registers");
    }

    #[test]
    fn cluster_universe_is_buildable_and_dense() {
        let records = records();
        let blocks = block(&records, &LshConfig::default());
        let reps = build_representatives(&records, &blocks);
        let u = cluster_universe(&reps).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.source(mube_core::SourceId(0)).cardinality(), 300);
        assert!(u.source(mube_core::SourceId(0)).cooperates());
    }
}

//! The end-to-end scale pipeline: ingest → prune → block → two-level solve.
//!
//! [`scale_solve`] turns a catalog far too large for a flat solve into a
//! validated [`Solution`]:
//!
//! 1. **relevance pruning** — one streaming pass keeps the `top_k`
//!    best-scoring sources (peak memory `O(top_k)`, independent of the
//!    catalog's tuple count);
//! 2. **LSH blocking** — survivors are grouped into near-duplicate
//!    clusters, each condensed to a representative with a PCSA-union
//!    signature;
//! 3. **coarse solve** — a full [`Problem`] over the cluster universe,
//!    solved with the caller's solver (portfolio, tabu, ...) under the
//!    existing `DeltaEval` machinery, selects the best cluster families;
//! 4. **fine solve** — the winning clusters expand back to their member
//!    sources, which materialize (signatures synthesized now, for the
//!    first time) into a sub-universe whose own [`Problem`] is solved and
//!    validated with the unchanged [`SolutionValidator`].
//!
//! Both solves share one [`CancelToken`], so a wall-clock budget bounds the
//! whole pipeline with anytime semantics.

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::error::MubeError;
use mube_core::problem::{CandidateEval, Problem};
use mube_core::qefs::{data_only_qefs, paper_default_qefs};
use mube_core::solution::Solution;
use mube_core::source::Universe;
use mube_core::validate::SolutionValidator;
use mube_core::SourceId;
use mube_match::{ClusterMatcher, JaccardNGram};
use mube_opt::{solve_two_level, CancelToken, SubsetSolver};

use crate::cluster::{build_representatives, cluster_universe};
use crate::lsh::{block_with_threads, LshConfig};
use crate::relevance::{top_k, RelevanceQuery, ScoringTable};
use crate::stream::SourceStream;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct ScaleOptions {
    /// Sources kept by the relevance stage. Bounds the pipeline's memory
    /// and the cost of every later stage.
    pub top_k: usize,
    /// `m` — the maximum sources in the final solution.
    pub max_sources: usize,
    /// Clusters the coarse solve may select. Defaults to `max_sources`:
    /// every final source could come from a different family.
    pub coarse_clusters: usize,
    /// Matching threshold `θ`, used at both levels.
    pub theta: f64,
    /// Mediated-schema span bound `β`, used at both levels.
    pub beta: usize,
    /// Source names that must survive pruning and appear in the solution.
    pub pins: Vec<String>,
    /// The relevance query (empty = priors only).
    pub query: RelevanceQuery,
    /// Relevance scoring-table weights.
    pub table: ScoringTable,
    /// LSH blocking parameters.
    pub lsh: LshConfig,
    /// Threads for the `MinHash` sketch computation. Blocking is
    /// byte-deterministic in this value (see `lsh::block_with_threads`),
    /// so it is purely a throughput knob.
    pub lsh_threads: usize,
    /// Solver seed (the fine level derives its own stream from it).
    pub seed: u64,
}

impl ScaleOptions {
    /// Defaults for a `max_sources`-source selection: keep 1,500 survivors,
    /// paper-style `θ = 0.75`, `β = 2`.
    pub fn new(max_sources: usize) -> Self {
        ScaleOptions {
            top_k: 1_500,
            max_sources,
            coarse_clusters: max_sources,
            theta: 0.75,
            beta: 2,
            pins: Vec::new(),
            query: RelevanceQuery::default(),
            table: ScoringTable::default(),
            lsh: LshConfig::default(),
            lsh_threads: 1,
            seed: 0,
        }
    }
}

/// What the pipeline did, stage by stage, plus the validated solution.
#[derive(Debug)]
pub struct ScaleReport {
    /// Sources in the ingested catalog.
    pub catalog_sources: usize,
    /// Survivors of the relevance stage.
    pub survivors: usize,
    /// Clusters after LSH blocking.
    pub clusters: usize,
    /// Names of the clusters the coarse solve selected.
    pub selected_clusters: Vec<String>,
    /// Size of the expanded fine universe.
    pub expanded: usize,
    /// Objective value of the coarse incumbent.
    pub coarse_quality: f64,
    /// The fine sub-universe the solution's ids refer to.
    pub universe: Arc<Universe>,
    /// The validated solution over `universe`.
    pub solution: Solution,
}

/// Runs the full pipeline. See the module docs for the stages.
///
/// # Errors
///
/// Fails if a pinned name is missing from the catalog, the pins are
/// mutually infeasible (more pins than `max_sources`), a level's problem
/// cannot be constructed, no feasible solution exists within the budget, or
/// the final validation finds a violation (a bug, not an input error).
pub fn scale_solve(
    stream: &dyn SourceStream,
    opts: &ScaleOptions,
    solver: &dyn SubsetSolver,
    cancel: &CancelToken,
) -> Result<ScaleReport, MubeError> {
    if opts.pins.len() > opts.max_sources {
        return Err(MubeError::ConstraintConflict {
            detail: format!(
                "{} pinned sources but max_sources is {}",
                opts.pins.len(),
                opts.max_sources
            ),
        });
    }
    let catalog_sources = stream.len();

    // Stage 1: relevance pruning.
    let survivors = top_k(stream, &opts.query, &opts.table, opts.top_k, &opts.pins);
    for pin in &opts.pins {
        if !survivors.iter().any(|s| s.record.name == *pin) {
            return Err(MubeError::ConstraintConflict {
                detail: format!("pinned source `{pin}` is not in the catalog"),
            });
        }
    }
    let records: Vec<_> = survivors.into_iter().map(|s| s.record).collect();

    // Stage 2: LSH blocking and cluster representatives.
    let blocks = block_with_threads(&records, &opts.lsh, opts.lsh_threads.max(1));
    let reps = build_representatives(&records, &blocks);
    let coarse_u = Arc::new(cluster_universe(&reps)?);

    let has_mttf = records
        .iter()
        .any(|r| r.characteristics.contains_key("mttf"));
    let qefs = if has_mttf {
        paper_default_qefs("mttf")
    } else {
        data_only_qefs()
    };

    // Stage 3 constraints: pinned sources force their clusters in.
    let coarse_m = opts.coarse_clusters.clamp(1, reps.len());
    let mut coarse_c = Constraints::with_max_sources(coarse_m)
        .theta(opts.theta)
        .beta(opts.beta.min(coarse_m));
    for pin in &opts.pins {
        let pos = records
            .iter()
            .position(|r| r.name == *pin)
            .expect("pin presence checked above");
        let ci = reps
            .iter()
            .position(|rep| rep.members.binary_search(&pos).is_ok())
            .expect("every survivor belongs to exactly one cluster");
        coarse_c = coarse_c.require_source(SourceId(ci as u32));
    }
    let coarse_problem = Problem::new(
        Arc::clone(&coarse_u),
        Arc::new(ClusterMatcher::new(
            Arc::clone(&coarse_u),
            JaccardNGram::trigram(),
        )),
        qefs.clone(),
        coarse_c,
    )?;

    // Stages 3+4: coarse solve, expand winners, fine solve.
    let two = solve_two_level(&coarse_problem, solver, opts.seed, cancel, |winners| {
        let mut positions: Vec<usize> = winners
            .iter()
            .flat_map(|&c| reps[c].members.iter().copied())
            .collect();
        positions.sort_unstable();
        let mut builder = Universe::builder();
        let mut required = Vec::new();
        for &p in &positions {
            let record = records[p].clone();
            let pinned = opts.pins.contains(&record.name);
            let id = builder.add_source(record.into_spec());
            if pinned {
                required.push(id);
            }
        }
        let fine_u = Arc::new(
            builder
                .build()
                .expect("expanded survivor records form a valid universe"),
        );
        let fine_m = opts.max_sources.clamp(1, fine_u.len());
        let mut fine_c = Constraints::with_max_sources(fine_m)
            .theta(opts.theta)
            .beta(opts.beta.min(fine_m));
        for id in required {
            fine_c = fine_c.require_source(id);
        }
        Problem::new(
            Arc::clone(&fine_u),
            Arc::new(ClusterMatcher::new(
                Arc::clone(&fine_u),
                JaccardNGram::trigram(),
            )),
            qefs.clone(),
            fine_c,
        )
        .expect("pins were pre-validated and expansion preserves them")
    });

    let fine_problem = two.objective;
    let sources: std::collections::BTreeSet<SourceId> = two
        .fine
        .selected
        .iter()
        .map(|&i| SourceId(i as u32))
        .collect();
    let CandidateEval::Feasible(mut solution) = fine_problem.evaluate(&sources) else {
        return Err(MubeError::ConstraintConflict {
            detail: "no feasible solution found within the budget".into(),
        });
    };
    solution.evaluations = two.coarse.evaluations + two.fine.evaluations;
    solution.timed_out = two.coarse.timed_out || two.fine.timed_out;

    // The existing validator must pass unchanged on the stitched solution.
    SolutionValidator::for_problem(&fine_problem).validate(&solution)?;

    Ok(ScaleReport {
        catalog_sources,
        survivors: records.len(),
        clusters: reps.len(),
        selected_clusters: two
            .coarse
            .selected
            .iter()
            .map(|&c| reps[c].name.clone())
            .collect(),
        expanded: fine_problem.universe().len(),
        coarse_quality: two.coarse.score,
        universe: Arc::clone(fine_problem.universe()),
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SynthStream;
    use mube_opt::TabuSearch;
    use mube_synth::universe::StreamingUniverse;
    use mube_synth::SynthConfig;

    fn stream(n: usize, seed: u64) -> SynthStream {
        SynthStream::new(StreamingUniverse::new(SynthConfig::small(n), seed))
    }

    fn opts(max: usize) -> ScaleOptions {
        ScaleOptions {
            top_k: 40,
            theta: 0.3,
            ..ScaleOptions::new(max)
        }
    }

    #[test]
    fn end_to_end_solve_validates() {
        let s = stream(60, 3);
        let report = scale_solve(&s, &opts(5), &TabuSearch::default(), &CancelToken::none())
            .expect("pipeline succeeds");
        assert_eq!(report.catalog_sources, 60);
        assert_eq!(report.survivors, 40);
        assert!(report.clusters <= report.survivors);
        assert!(!report.selected_clusters.is_empty());
        assert!(report.expanded <= report.survivors);
        assert!(!report.solution.sources.is_empty());
        assert!(report.solution.sources.len() <= 5);
        assert!((0.0..=1.0).contains(&report.solution.quality));
        // Every selected id resolves in the reported sub-universe.
        for &id in &report.solution.sources {
            assert!(report.universe.get(id).is_some());
        }
        // Re-validate externally against the reported universe.
        let validator = SolutionValidator::new(
            Arc::clone(&report.universe),
            Constraints::with_max_sources(5).theta(0.3).beta(2),
        );
        assert!(validator.check(&report.solution).is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let s = stream(50, 7);
        let a = scale_solve(&s, &opts(4), &TabuSearch::default(), &CancelToken::none()).unwrap();
        let b = scale_solve(&s, &opts(4), &TabuSearch::default(), &CancelToken::none()).unwrap();
        assert_eq!(a.solution.sources, b.solution.sources);
        assert_eq!(a.solution.quality.to_bits(), b.solution.quality.to_bits());
        assert_eq!(a.selected_clusters, b.selected_clusters);
    }

    #[test]
    fn pins_survive_the_whole_pipeline() {
        let s = stream(60, 3);
        // Pin a source that would otherwise be pruned: force top_k tiny.
        let mut o = opts(5);
        o.top_k = 10;
        o.pins = vec!["site0047".to_string()];
        let report = scale_solve(&s, &o, &TabuSearch::default(), &CancelToken::none()).unwrap();
        let pinned = report
            .universe
            .source_by_name("site0047")
            .expect("pinned source expanded into the fine universe");
        assert!(
            report.solution.sources.contains(&pinned.id()),
            "pin must be selected"
        );
    }

    #[test]
    fn unknown_pin_is_a_constraint_conflict() {
        let s = stream(20, 1);
        let mut o = opts(3);
        o.pins = vec!["nope".to_string()];
        let err = scale_solve(&s, &o, &TabuSearch::default(), &CancelToken::none()).unwrap_err();
        assert!(matches!(err, MubeError::ConstraintConflict { .. }));
    }

    #[test]
    fn too_many_pins_rejected_up_front() {
        let s = stream(20, 1);
        let mut o = opts(1);
        o.pins = vec!["site0001".into(), "site0002".into()];
        assert!(matches!(
            scale_solve(&s, &o, &TabuSearch::default(), &CancelToken::none()),
            Err(MubeError::ConstraintConflict { .. })
        ));
    }

    #[test]
    fn cancelled_budget_still_yields_a_feasible_solution() {
        let s = stream(60, 3);
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = scale_solve(&s, &opts(5), &TabuSearch::default(), &cancel)
            .expect("anytime: feasible incumbent even under a dead budget");
        assert!(report.solution.timed_out);
        assert!(!report.solution.sources.is_empty());
    }
}

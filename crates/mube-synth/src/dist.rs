//! Seeded samplers for the distributions the paper's generator needs.
//!
//! Implemented here rather than pulling in `rand_distr`: the generator only
//! needs a bounded Zipf (for source cardinalities) and a Normal (for MTTF),
//! both classic two-liner inverse-transform / Box–Muller constructions.

use rand::Rng;

/// Bounded Zipf-like sampler over `[lo, hi]` via the bounded Pareto
/// distribution with shape `alpha` (α → 1 recovers the classic
/// log-uniform "Zipf" profile: many small values, a heavy tail of large
/// ones).
#[derive(Debug, Clone, Copy)]
pub struct BoundedZipf {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedZipf {
    /// Creates a sampler. `lo` and `hi` must be positive with `lo < hi`;
    /// `alpha` must be positive.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    pub fn new(lo: u64, hi: u64, alpha: f64) -> Self {
        assert!(lo > 0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi}]");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedZipf {
            lo: lo as f64,
            hi: hi as f64,
            alpha,
        }
    }

    /// The paper's cardinality distribution: Zipf over [10,000, 1,000,000].
    pub fn paper_cardinalities() -> Self {
        BoundedZipf::new(10_000, 1_000_000, 1.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let x = if (self.alpha - 1.0).abs() < 1e-9 {
            // α = 1: inverse CDF is log-uniform.
            self.lo * (self.hi / self.lo).powf(u)
        } else {
            let a = self.alpha;
            let l = self.lo.powf(-a);
            let h = self.hi.powf(-a);
            (l - u * (l - h)).powf(-1.0 / a)
        };
        (x.round() as u64).clamp(self.lo as u64, self.hi as u64)
    }
}

/// Normal sampler via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a sampler with the given mean and (non-negative) standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or the parameters are non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && mean.is_finite() && std.is_finite());
        Normal { mean, std }
    }

    /// The paper's MTTF distribution: Normal(100 days, 40).
    pub fn paper_mttf() -> Self {
        Normal::new(100.0, 40.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept away from 0 so ln is finite.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z
    }

    /// Draws a sample truncated below at `floor` (re-clamped, not
    /// resampled — adequate for characteristics that must stay positive).
    pub fn sample_at_least<R: Rng>(&self, rng: &mut R, floor: f64) -> f64 {
        self.sample(rng).max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_respects_bounds() {
        let z = BoundedZipf::new(10, 1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((10..=1000).contains(&x));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_values() {
        let z = BoundedZipf::paper_cardinalities();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let small = (0..n).filter(|_| z.sample(&mut rng) < 100_000).count();
        // Log-uniform: P(X < 1e5) = ln(10)/ln(100) = 0.5; allow slack.
        assert!(small > n * 2 / 5, "small = {small} of {n}");
    }

    #[test]
    fn zipf_alpha_two_works() {
        let z = BoundedZipf::new(10, 1000, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| z.sample(&mut rng) as f64).sum::<f64>() / 10_000.0;
        // Heavier shape → smaller mean than α = 1.
        assert!(mean < 100.0, "mean = {mean}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let n = Normal::paper_mttf();
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean = {mean}");
        assert!((var.sqrt() - 40.0).abs() < 2.0, "std = {}", var.sqrt());
    }

    #[test]
    fn sample_at_least_floors() {
        let n = Normal::new(0.0, 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(n.sample_at_least(&mut rng, 1.0) >= 1.0);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_bad_bounds() {
        let _ = BoundedZipf::new(100, 100, 1.0);
    }
}

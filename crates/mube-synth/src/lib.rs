//! # mube-synth — synthetic workloads for the `µBE` experiments
//!
//! The paper evaluates `µBE` on 700 synthetic data sources (§7.1): schemas
//! drawn from the 50 Books-domain schemas of the UIUC BAMM repository plus
//! perturbed copies, Zipf-distributed cardinalities between 10,000 and
//! 1,000,000 tuples drawn from a 4,000,000-tuple pool split into *General*
//! and *Specialty* halves, and a per-source mean-time-to-failure
//! characteristic from `Normal(100, 40)`.
//!
//! The BAMM repository is no longer distributed, so this crate substitutes a
//! hand-built Books-domain concept inventory with **14 distinct concepts**
//! (the number the paper counts manually in the BAMM Books schemas) and
//! realistic synonym pools; see `DESIGN.md` §4 for the substitution
//! rationale. Everything else follows the paper's recipe, and every
//! generated attribute carries a ground-truth concept label so the Table 1
//! precision/recall experiment can be scored automatically.
//!
//! * [`dist`] — seeded Zipf (bounded Pareto) and Normal samplers;
//! * [`concepts`] — the 14 Books concepts, synonym pools, and the unrelated
//!   word pool used by the perturbation model;
//! * [`schema_gen`] — base schemas and perturbed copies;
//! * [`data_gen`] — tuple windows over the General/Specialty pools, exact
//!   union cardinalities, and PCSA signatures;
//! * [`ground_truth`] — concept labels and Table 1 scoring;
//! * [`universe`] — the end-to-end generator.
//!
//! # Example
//!
//! ```
//! use mube_synth::{SynthConfig, generate};
//!
//! let synth = generate(&SynthConfig::small(40), 7);
//! assert_eq!(synth.universe.len(), 40);
//! // Every source has a schema, a cardinality, a signature, and an MTTF.
//! for s in synth.universe.sources() {
//!     assert!(!s.schema().is_empty());
//!     assert!(s.cooperates());
//!     assert!(s.characteristic("mttf").is_some());
//! }
//! ```

pub mod concepts;
pub mod data_gen;
pub mod dist;
pub mod domains;
pub mod ground_truth;
pub mod schema_gen;
pub mod universe;

pub use domains::DomainKind;
pub use ground_truth::{GaQualityReport, GroundTruth};
pub use universe::{
    generate, generate_mixed, StreamedSource, StreamingUniverse, SynthConfig, SynthUniverse,
};

//! The end-to-end synthetic-universe generator.
//!
//! Reproduces the full §7.1 setup: schemas (50 conformant bases + perturbed
//! copies), Zipf cardinalities, General/Specialty tuple assignment, PCSA
//! signatures, and the MTTF characteristic — all from one seed, fully
//! deterministic.

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::ids::SourceId;
use mube_core::schema::Schema;
use mube_core::source::{SourceSpec, Universe};
use mube_sketch::pcsa::PcsaConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data_gen::{exact_union, Pool, PoolLayout, TupleWindows};
use crate::dist::{BoundedZipf, Normal};
use crate::ground_truth::GroundTruth;
use crate::schema_gen::{base_schemas, perturb, SchemaGenConfig};

/// Full configuration of a synthetic universe.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of sources (paper: 700).
    pub num_sources: usize,
    /// Schema-generation knobs (bases, perturbation probabilities).
    pub schema: SchemaGenConfig,
    /// Minimum source cardinality (paper: 10,000).
    pub min_cardinality: u64,
    /// Maximum source cardinality (paper: 1,000,000).
    pub max_cardinality: u64,
    /// Zipf shape for cardinalities.
    pub zipf_alpha: f64,
    /// Tuple-pool layout (paper: 2,000,000 General + 2,000,000 Specialty).
    pub pool: PoolLayout,
    /// Fraction of sources that carry Specialty tuples (paper: half).
    pub specialty_source_fraction: f64,
    /// For those sources, the fraction of their tuples drawn from the
    /// Specialty pool ("a small number", we use 5%).
    pub specialty_tuple_fraction: f64,
    /// MTTF distribution mean (paper: 100 days).
    pub mttf_mean: f64,
    /// MTTF distribution standard deviation (paper: 40).
    pub mttf_std: f64,
    /// Mean per-request latency in milliseconds (fault profile).
    pub latency_mean_ms: f64,
    /// Latency standard deviation in milliseconds.
    pub latency_std_ms: f64,
    /// Mean repair time in days; availability = mttf / (mttf + downtime).
    pub downtime_mean: f64,
    /// Repair-time standard deviation in days.
    pub downtime_std: f64,
    /// PCSA bitmaps per signature.
    pub pcsa_maps: usize,
    /// PCSA bitmap width.
    pub pcsa_bits: u32,
    /// PCSA hash seed shared by all sources.
    pub pcsa_seed: u64,
}

impl SynthConfig {
    /// The paper's configuration (§7.1), parameterized by universe size so
    /// the Figure 5 sweep (100–700 sources) reuses it.
    pub fn paper(num_sources: usize) -> Self {
        SynthConfig {
            num_sources,
            schema: SchemaGenConfig::default(),
            min_cardinality: 10_000,
            max_cardinality: 1_000_000,
            zipf_alpha: 1.0,
            pool: PoolLayout::paper(),
            specialty_source_fraction: 0.5,
            specialty_tuple_fraction: 0.05,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            latency_mean_ms: 80.0,
            latency_std_ms: 40.0,
            downtime_mean: 2.0,
            downtime_std: 1.0,
            pcsa_maps: 64,
            pcsa_bits: 32,
            pcsa_seed: 0x6D75_6265, // "mube"
        }
    }

    /// A scaled-down configuration for unit/integration tests: small pools
    /// and cardinalities so generation is instant.
    pub fn small(num_sources: usize) -> Self {
        SynthConfig {
            num_sources,
            schema: SchemaGenConfig {
                num_base_schemas: 10,
                ..SchemaGenConfig::default()
            },
            min_cardinality: 100,
            max_cardinality: 2_000,
            zipf_alpha: 1.0,
            pool: PoolLayout::new(10_000),
            specialty_source_fraction: 0.5,
            specialty_tuple_fraction: 0.05,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            latency_mean_ms: 80.0,
            latency_std_ms: 40.0,
            downtime_mean: 2.0,
            downtime_std: 1.0,
            pcsa_maps: 64,
            pcsa_bits: 32,
            pcsa_seed: 0x6D75_6265,
        }
    }

    /// The PCSA configuration all sources share.
    pub fn pcsa(&self) -> PcsaConfig {
        PcsaConfig::new(self.pcsa_maps, self.pcsa_bits, self.pcsa_seed)
    }
}

/// A generated universe plus everything the experiments need to score it.
pub struct SynthUniverse {
    /// The universe, ready for [`mube_core::Problem`].
    pub universe: Arc<Universe>,
    /// Ground-truth concept labels for Table 1 scoring.
    pub ground_truth: GroundTruth,
    /// Per-source tuple windows (index = source id) for exact counting.
    pub windows: Vec<TupleWindows>,
    /// Sources whose schemas are unperturbed base schemas — the paper draws
    /// its source constraints from these.
    pub unperturbed: Vec<SourceId>,
    /// The configuration used.
    pub config: SynthConfig,
}

impl SynthUniverse {
    /// Exact distinct-tuple count of a set of sources (interval arithmetic
    /// over the tuple windows — the baseline for the PCSA experiments).
    pub fn exact_distinct<I: IntoIterator<Item = SourceId>>(&self, sources: I) -> u64 {
        let refs: Vec<&TupleWindows> = sources
            .into_iter()
            .map(|s| &self.windows[s.index()])
            .collect();
        exact_union(&refs)
    }

    /// Exact distinct-tuple count of the whole universe.
    pub fn exact_distinct_universe(&self) -> u64 {
        let refs: Vec<&TupleWindows> = self.windows.iter().collect();
        exact_union(&refs)
    }

    /// Random unperturbed sources, for building the paper's source
    /// constraints.
    pub fn random_unperturbed<R: Rng>(&self, count: usize, rng: &mut R) -> BTreeSet<SourceId> {
        use rand::seq::SliceRandom;
        let mut pool = self.unperturbed.clone();
        pool.shuffle(rng);
        pool.into_iter().take(count).collect()
    }
}

/// Generates a synthetic universe. Deterministic in `(config, seed)`.
pub fn generate(config: &SynthConfig, seed: u64) -> SynthUniverse {
    generate_mixed(config, &[config.schema.domain], seed)
}

/// Generates a universe whose sources cycle through several BAMM domains —
/// the "dataspace" setting of the paper's introduction, where discovered
/// sources span multiple topics and `µBE` must find a coherent subset.
///
/// Each domain gets its own pool of base schemas (of
/// `config.schema.num_base_schemas` each); source `i` descends from domain
/// `domains[i % domains.len()]`. Ground-truth labels use global concept
/// ids, so concepts from different domains never collide.
pub fn generate_mixed(
    config: &SynthConfig,
    domains: &[crate::domains::DomainKind],
    seed: u64,
) -> SynthUniverse {
    assert!(config.num_sources > 0, "need at least one source");
    assert!(!domains.is_empty(), "need at least one domain");
    assert!(
        config.max_cardinality <= config.pool.pool_size(),
        "cardinalities cannot exceed the General pool"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let bases_by_domain: Vec<Vec<crate::schema_gen::GeneratedSchema>> = domains
        .iter()
        .map(|&domain| {
            let cfg = SchemaGenConfig {
                domain,
                ..config.schema.clone()
            };
            base_schemas(&cfg, &mut rng)
        })
        .collect();
    let zipf = BoundedZipf::new(
        config.min_cardinality,
        config.max_cardinality,
        config.zipf_alpha,
    );
    let mttf = Normal::new(config.mttf_mean, config.mttf_std);
    let pcsa = config.pcsa();

    let mut builder = Universe::builder();
    let mut ground_truth = GroundTruth::default();
    let mut windows = Vec::with_capacity(config.num_sources);
    let mut unperturbed = Vec::new();

    for i in 0..config.num_sources {
        let domain_idx = i % domains.len();
        let bases = &bases_by_domain[domain_idx];
        let domain_cfg = SchemaGenConfig {
            domain: domains[domain_idx],
            ..config.schema.clone()
        };
        // The first round(s) of sources are fully conformant bases; the
        // rest are perturbed copies of random bases of their domain.
        let generated = if i / domains.len() < bases.len() && i < bases.len() * domains.len() {
            bases[i / domains.len()].clone()
        } else {
            let base = &bases[rng.random_range(0..bases.len())];
            perturb(base, &domain_cfg, &mut rng)
        };

        let cardinality = zipf.sample(&mut rng);
        let is_specialty = rng.random::<f64>() < config.specialty_source_fraction;
        let specialty_len = if is_specialty {
            ((cardinality as f64 * config.specialty_tuple_fraction) as u64).max(1)
        } else {
            0
        };
        let general_len = cardinality - specialty_len;
        let mut intervals = config.pool.window(
            Pool::General,
            rng.random_range(0..config.pool.pool_size()),
            general_len,
        );
        if specialty_len > 0 {
            intervals.extend(config.pool.window(
                Pool::Specialty,
                rng.random_range(0..config.pool.pool_size()),
                specialty_len,
            ));
        }
        let tuple_windows = TupleWindows::new(intervals);
        // Window overlap within one source merges intervals, so use the
        // realized distinct count as the reported cardinality.
        let realized = tuple_windows.cardinality();
        let signature = tuple_windows.signature(pcsa.clone());

        let mttf_days = mttf.sample_at_least(&mut rng, 1.0);
        // Fault-profile characteristics (latency, availability) are drawn
        // from a per-source stream independent of the main one, so adding
        // them preserves every previously generated value byte-for-byte.
        let mut fault_rng =
            StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        let latency_ms = Normal::new(config.latency_mean_ms, config.latency_std_ms)
            .sample_at_least(&mut fault_rng, 5.0);
        let downtime = Normal::new(config.downtime_mean, config.downtime_std)
            .sample_at_least(&mut fault_rng, 0.1);
        let availability = mttf_days / (mttf_days + downtime);
        let spec = SourceSpec::new(
            format!("site{i:04}"),
            Schema::new(generated.names().map(str::to_string)),
        )
        .cardinality(realized)
        .signature(signature)
        .characteristic("mttf", mttf_days)
        .characteristic("latency", latency_ms)
        .characteristic("availability", availability);
        let sid = builder.add_source(spec);

        if !generated.perturbed {
            unperturbed.push(sid);
        }
        for (j, (_, concept)) in generated.attrs.iter().enumerate() {
            if let Some(c) = concept {
                ground_truth.insert(mube_core::ids::AttrId::new(sid, j as u32), *c);
            }
        }
        windows.push(tuple_windows);
    }

    let universe = Arc::new(builder.build().expect("generated universes are valid"));
    SynthUniverse {
        universe,
        ground_truth,
        windows,
        unperturbed,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let s = generate(&SynthConfig::small(30), 1);
        assert_eq!(s.universe.len(), 30);
        assert_eq!(s.windows.len(), 30);
        assert_eq!(s.unperturbed.len(), 10); // small() uses 10 bases
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&SynthConfig::small(20), 9);
        let b = generate(&SynthConfig::small(20), 9);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.name(), sb.name());
            assert_eq!(sa.cardinality(), sb.cardinality());
            assert_eq!(sa.schema(), sb.schema());
            assert_eq!(sa.characteristic("mttf"), sb.characteristic("mttf"));
        }
        assert_ne!(
            generate(&SynthConfig::small(20), 10)
                .universe
                .source(SourceId(15))
                .cardinality(),
            0
        );
    }

    #[test]
    fn cardinalities_in_range_and_consistent() {
        let cfg = SynthConfig::small(40);
        let s = generate(&cfg, 2);
        for (i, src) in s.universe.sources().enumerate() {
            // Window merging can only shrink, never grow.
            assert!(src.cardinality() <= cfg.max_cardinality);
            assert!(src.cardinality() >= 1);
            assert_eq!(src.cardinality(), s.windows[i].cardinality());
        }
    }

    #[test]
    fn signatures_estimate_exact_counts() {
        let s = generate(&SynthConfig::small(25), 3);
        for (i, src) in s.universe.sources().enumerate() {
            let est = src.signature().unwrap().estimate();
            let truth = s.windows[i].cardinality() as f64;
            let err = (est - truth).abs() / truth;
            assert!(err < 0.5, "source {i}: est={est} truth={truth}");
        }
    }

    #[test]
    fn exact_distinct_unions() {
        let s = generate(&SynthConfig::small(10), 4);
        let all = s.exact_distinct_universe();
        let one = s.exact_distinct([SourceId(0)]);
        assert!(one <= all);
        assert!(all <= s.config.pool.total());
        assert_eq!(one, s.windows[0].cardinality());
    }

    #[test]
    fn fault_profile_characteristics_generated() {
        let s = generate(&SynthConfig::small(30), 8);
        for src in s.universe.sources() {
            let latency = src.characteristic("latency").expect("latency generated");
            assert!(latency >= 5.0, "latency={latency}");
            let availability = src
                .characteristic("availability")
                .expect("availability generated");
            assert!(
                (0.0..=1.0).contains(&availability),
                "availability={availability}"
            );
            // availability = mttf / (mttf + downtime) with downtime ≥ 0.1.
            let mttf = src.characteristic("mttf").unwrap();
            assert!(availability <= mttf / (mttf + 0.1) + 1e-12);
        }
        // Deterministic in the seed, like everything else.
        let t = generate(&SynthConfig::small(30), 8);
        for (a, b) in s.universe.sources().zip(t.universe.sources()) {
            assert_eq!(a.characteristic("latency"), b.characteristic("latency"));
            assert_eq!(
                a.characteristic("availability"),
                b.characteristic("availability")
            );
        }
    }

    #[test]
    fn ground_truth_labels_exist() {
        let s = generate(&SynthConfig::small(30), 5);
        assert!(!s.ground_truth.is_empty());
        // Unperturbed sources are fully labelled.
        for &sid in &s.unperturbed {
            for attr in s.universe.source(sid).attr_ids() {
                assert!(s.ground_truth.concept_of(attr).is_some());
            }
        }
    }

    #[test]
    fn specialty_fraction_roughly_respected() {
        let cfg = SynthConfig::small(200);
        let s = generate(&cfg, 6);
        // Sources with any tuple id ≥ pool half carry specialty tuples.
        let half = cfg.pool.pool_size();
        let specialty = s
            .windows
            .iter()
            .filter(|w| w.intervals().iter().any(|&(start, _)| start >= half))
            .count();
        assert!(
            (60..=140).contains(&specialty),
            "specialty sources = {specialty}"
        );
    }

    #[test]
    fn random_unperturbed_selects_from_bases() {
        let s = generate(&SynthConfig::small(30), 7);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.random_unperturbed(5, &mut rng);
        assert_eq!(picked.len(), 5);
        for p in picked {
            assert!(s.unperturbed.contains(&p));
        }
    }

    #[test]
    #[should_panic]
    fn oversized_cardinality_rejected() {
        let mut cfg = SynthConfig::small(5);
        cfg.max_cardinality = cfg.pool.pool_size() + 1;
        let _ = generate(&cfg, 0);
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use crate::domains::DomainKind;

    #[test]
    fn mixed_universe_cycles_domains() {
        let cfg = SynthConfig::small(40);
        let domains = [DomainKind::Books, DomainKind::Movies];
        let s = generate_mixed(&cfg, &domains, 1);
        assert_eq!(s.universe.len(), 40);
        // Even sources descend from Books, odd from Movies: check via the
        // ground-truth label ranges of their concept attributes.
        for (i, src) in s.universe.sources().enumerate() {
            let expected = domains[i % 2];
            for attr in src.attr_ids() {
                if let Some(cid) = s.ground_truth.concept_of(attr) {
                    let (kind, _) = DomainKind::of_global_id(cid).unwrap();
                    assert_eq!(kind, expected, "source {i}");
                }
            }
        }
    }

    #[test]
    fn mixed_universe_is_deterministic() {
        let cfg = SynthConfig::small(20);
        let domains = [DomainKind::Airfares, DomainKind::MusicRecords];
        let a = generate_mixed(&cfg, &domains, 5);
        let b = generate_mixed(&cfg, &domains, 5);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.schema(), sb.schema());
            assert_eq!(sa.cardinality(), sb.cardinality());
        }
    }

    #[test]
    fn single_domain_mixed_equals_generate() {
        let cfg = SynthConfig::small(15);
        let a = generate(&cfg, 3);
        let b = generate_mixed(&cfg, &[DomainKind::Books], 3);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.schema(), sb.schema());
        }
    }

    #[test]
    fn all_four_domains_mix() {
        let cfg = SynthConfig::small(40);
        let s = generate_mixed(&cfg, &DomainKind::all(), 7);
        let mut kinds_seen = std::collections::BTreeSet::new();
        for src in s.universe.sources() {
            for attr in src.attr_ids() {
                if let Some(cid) = s.ground_truth.concept_of(attr) {
                    kinds_seen.insert(DomainKind::of_global_id(cid).unwrap().0.name());
                }
            }
        }
        assert_eq!(kinds_seen.len(), 4);
    }
}

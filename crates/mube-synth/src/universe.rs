//! The end-to-end synthetic-universe generator.
//!
//! Reproduces the full §7.1 setup: schemas (50 conformant bases + perturbed
//! copies), Zipf cardinalities, General/Specialty tuple assignment, PCSA
//! signatures, and the MTTF characteristic — all from one seed, fully
//! deterministic.

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::ids::SourceId;
use mube_core::schema::Schema;
use mube_core::source::{SourceSpec, Universe};
use mube_sketch::pcsa::PcsaConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data_gen::{exact_union, Pool, PoolLayout, TupleWindows};
use crate::dist::{BoundedZipf, Normal};
use crate::ground_truth::GroundTruth;
use crate::schema_gen::{base_schemas, perturb, SchemaGenConfig};

/// Full configuration of a synthetic universe.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of sources (paper: 700).
    pub num_sources: usize,
    /// Schema-generation knobs (bases, perturbation probabilities).
    pub schema: SchemaGenConfig,
    /// Minimum source cardinality (paper: 10,000).
    pub min_cardinality: u64,
    /// Maximum source cardinality (paper: 1,000,000).
    pub max_cardinality: u64,
    /// Zipf shape for cardinalities.
    pub zipf_alpha: f64,
    /// Tuple-pool layout (paper: 2,000,000 General + 2,000,000 Specialty).
    pub pool: PoolLayout,
    /// Fraction of sources that carry Specialty tuples (paper: half).
    pub specialty_source_fraction: f64,
    /// For those sources, the fraction of their tuples drawn from the
    /// Specialty pool ("a small number", we use 5%).
    pub specialty_tuple_fraction: f64,
    /// MTTF distribution mean (paper: 100 days).
    pub mttf_mean: f64,
    /// MTTF distribution standard deviation (paper: 40).
    pub mttf_std: f64,
    /// Mean per-request latency in milliseconds (fault profile).
    pub latency_mean_ms: f64,
    /// Latency standard deviation in milliseconds.
    pub latency_std_ms: f64,
    /// Mean repair time in days; availability = mttf / (mttf + downtime).
    pub downtime_mean: f64,
    /// Repair-time standard deviation in days.
    pub downtime_std: f64,
    /// PCSA bitmaps per signature.
    pub pcsa_maps: usize,
    /// PCSA bitmap width.
    pub pcsa_bits: u32,
    /// PCSA hash seed shared by all sources.
    pub pcsa_seed: u64,
}

impl SynthConfig {
    /// The paper's configuration (§7.1), parameterized by universe size so
    /// the Figure 5 sweep (100–700 sources) reuses it.
    pub fn paper(num_sources: usize) -> Self {
        SynthConfig {
            num_sources,
            schema: SchemaGenConfig::default(),
            min_cardinality: 10_000,
            max_cardinality: 1_000_000,
            zipf_alpha: 1.0,
            pool: PoolLayout::paper(),
            specialty_source_fraction: 0.5,
            specialty_tuple_fraction: 0.05,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            latency_mean_ms: 80.0,
            latency_std_ms: 40.0,
            downtime_mean: 2.0,
            downtime_std: 1.0,
            pcsa_maps: 64,
            pcsa_bits: 32,
            pcsa_seed: 0x6D75_6265, // "mube"
        }
    }

    /// A scaled-down configuration for unit/integration tests: small pools
    /// and cardinalities so generation is instant.
    pub fn small(num_sources: usize) -> Self {
        SynthConfig {
            num_sources,
            schema: SchemaGenConfig {
                num_base_schemas: 10,
                ..SchemaGenConfig::default()
            },
            min_cardinality: 100,
            max_cardinality: 2_000,
            zipf_alpha: 1.0,
            pool: PoolLayout::new(10_000),
            specialty_source_fraction: 0.5,
            specialty_tuple_fraction: 0.05,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            latency_mean_ms: 80.0,
            latency_std_ms: 40.0,
            downtime_mean: 2.0,
            downtime_std: 1.0,
            pcsa_maps: 64,
            pcsa_bits: 32,
            pcsa_seed: 0x6D75_6265,
        }
    }

    /// A configuration sized for the internet-scale experiments: 100k–1M
    /// sources with modest per-source cardinalities, so a full streaming
    /// scan (including on-demand PCSA synthesis for the survivors of
    /// pruning) stays within a CI time budget.
    pub fn scale(num_sources: usize) -> Self {
        SynthConfig {
            num_sources,
            min_cardinality: 100,
            max_cardinality: 5_000,
            pool: PoolLayout::new(100_000),
            ..SynthConfig::paper(num_sources)
        }
    }

    /// The PCSA configuration all sources share.
    pub fn pcsa(&self) -> PcsaConfig {
        PcsaConfig::new(self.pcsa_maps, self.pcsa_bits, self.pcsa_seed)
    }
}

/// A generated universe plus everything the experiments need to score it.
pub struct SynthUniverse {
    /// The universe, ready for [`mube_core::Problem`].
    pub universe: Arc<Universe>,
    /// Ground-truth concept labels for Table 1 scoring.
    pub ground_truth: GroundTruth,
    /// Per-source tuple windows (index = source id) for exact counting.
    pub windows: Vec<TupleWindows>,
    /// Sources whose schemas are unperturbed base schemas — the paper draws
    /// its source constraints from these.
    pub unperturbed: Vec<SourceId>,
    /// The configuration used.
    pub config: SynthConfig,
}

impl SynthUniverse {
    /// Exact distinct-tuple count of a set of sources (interval arithmetic
    /// over the tuple windows — the baseline for the PCSA experiments).
    pub fn exact_distinct<I: IntoIterator<Item = SourceId>>(&self, sources: I) -> u64 {
        let refs: Vec<&TupleWindows> = sources
            .into_iter()
            .map(|s| &self.windows[s.index()])
            .collect();
        exact_union(&refs)
    }

    /// Exact distinct-tuple count of the whole universe.
    pub fn exact_distinct_universe(&self) -> u64 {
        let refs: Vec<&TupleWindows> = self.windows.iter().collect();
        exact_union(&refs)
    }

    /// Random unperturbed sources, for building the paper's source
    /// constraints.
    pub fn random_unperturbed<R: Rng>(&self, count: usize, rng: &mut R) -> BTreeSet<SourceId> {
        use rand::seq::SliceRandom;
        let mut pool = self.unperturbed.clone();
        pool.shuffle(rng);
        pool.into_iter().take(count).collect()
    }
}

/// Generates a synthetic universe. Deterministic in `(config, seed)`.
pub fn generate(config: &SynthConfig, seed: u64) -> SynthUniverse {
    generate_mixed(config, &[config.schema.domain], seed)
}

/// Generates a universe whose sources cycle through several BAMM domains —
/// the "dataspace" setting of the paper's introduction, where discovered
/// sources span multiple topics and `µBE` must find a coherent subset.
///
/// Each domain gets its own pool of base schemas (of
/// `config.schema.num_base_schemas` each); source `i` descends from domain
/// `domains[i % domains.len()]`. Ground-truth labels use global concept
/// ids, so concepts from different domains never collide.
pub fn generate_mixed(
    config: &SynthConfig,
    domains: &[crate::domains::DomainKind],
    seed: u64,
) -> SynthUniverse {
    assert!(config.num_sources > 0, "need at least one source");
    assert!(!domains.is_empty(), "need at least one domain");
    assert!(
        config.max_cardinality <= config.pool.pool_size(),
        "cardinalities cannot exceed the General pool"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let bases_by_domain: Vec<Vec<crate::schema_gen::GeneratedSchema>> = domains
        .iter()
        .map(|&domain| {
            let cfg = SchemaGenConfig {
                domain,
                ..config.schema.clone()
            };
            base_schemas(&cfg, &mut rng)
        })
        .collect();
    let zipf = BoundedZipf::new(
        config.min_cardinality,
        config.max_cardinality,
        config.zipf_alpha,
    );
    let mttf = Normal::new(config.mttf_mean, config.mttf_std);
    let pcsa = config.pcsa();

    let mut builder = Universe::builder();
    let mut ground_truth = GroundTruth::default();
    let mut windows = Vec::with_capacity(config.num_sources);
    let mut unperturbed = Vec::new();

    for i in 0..config.num_sources {
        let domain_idx = i % domains.len();
        let bases = &bases_by_domain[domain_idx];
        let domain_cfg = SchemaGenConfig {
            domain: domains[domain_idx],
            ..config.schema.clone()
        };
        // The first round(s) of sources are fully conformant bases; the
        // rest are perturbed copies of random bases of their domain.
        let generated = if i / domains.len() < bases.len() && i < bases.len() * domains.len() {
            bases[i / domains.len()].clone()
        } else {
            let base = &bases[rng.random_range(0..bases.len())];
            perturb(base, &domain_cfg, &mut rng)
        };

        let cardinality = zipf.sample(&mut rng);
        let is_specialty = rng.random::<f64>() < config.specialty_source_fraction;
        let specialty_len = if is_specialty {
            ((cardinality as f64 * config.specialty_tuple_fraction) as u64).max(1)
        } else {
            0
        };
        let general_len = cardinality - specialty_len;
        let mut intervals = config.pool.window(
            Pool::General,
            rng.random_range(0..config.pool.pool_size()),
            general_len,
        );
        if specialty_len > 0 {
            intervals.extend(config.pool.window(
                Pool::Specialty,
                rng.random_range(0..config.pool.pool_size()),
                specialty_len,
            ));
        }
        let tuple_windows = TupleWindows::new(intervals);
        // Window overlap within one source merges intervals, so use the
        // realized distinct count as the reported cardinality.
        let realized = tuple_windows.cardinality();
        let signature = tuple_windows.signature(pcsa.clone());

        let mttf_days = mttf.sample_at_least(&mut rng, 1.0);
        // Fault-profile characteristics (latency, availability) are drawn
        // from a per-source stream independent of the main one, so adding
        // them preserves every previously generated value byte-for-byte.
        let mut fault_rng =
            StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        let latency_ms = Normal::new(config.latency_mean_ms, config.latency_std_ms)
            .sample_at_least(&mut fault_rng, 5.0);
        let downtime = Normal::new(config.downtime_mean, config.downtime_std)
            .sample_at_least(&mut fault_rng, 0.1);
        let availability = mttf_days / (mttf_days + downtime);
        let spec = SourceSpec::new(
            format!("site{i:04}"),
            Schema::new(generated.names().map(str::to_string)),
        )
        .cardinality(realized)
        .signature(signature)
        .characteristic("mttf", mttf_days)
        .characteristic("latency", latency_ms)
        .characteristic("availability", availability);
        let sid = builder.add_source(spec);

        if !generated.perturbed {
            unperturbed.push(sid);
        }
        for (j, (_, concept)) in generated.attrs.iter().enumerate() {
            if let Some(c) = concept {
                ground_truth.insert(mube_core::ids::AttrId::new(sid, j as u32), *c);
            }
        }
        windows.push(tuple_windows);
    }

    let universe = Arc::new(builder.build().expect("generated universes are valid"));
    SynthUniverse {
        universe,
        ground_truth,
        windows,
        unperturbed,
        config: config.clone(),
    }
}

/// Stream-constant separating each source's *content* draw (schema,
/// cardinality, tuple windows) from the shared setup stream. Odd, so the
/// multiplied per-source offsets never collide.
const CONTENT_STREAM: u64 = 0xD1B5_4A32_D192_ED03;
/// Stream-constant for the per-source *fault profile* draw, matching the
/// derivation [`generate_mixed`] uses for its fault characteristics.
const FAULT_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// One source emitted by a [`StreamingUniverse`].
///
/// Carries everything cheap to synthesize — name, schema, cardinality,
/// interval-compressed tuple windows, characteristics — but *not* the PCSA
/// signature, whose construction is `O(cardinality)` hashing. Call
/// [`StreamedSource::signature`] (or [`StreamedSource::into_spec`], which
/// does it for you) only for sources that survive pruning; a streaming scan
/// over the whole catalog then costs schema synthesis only.
#[derive(Debug, Clone)]
pub struct StreamedSource {
    /// The source's position in the stream (`0..len`).
    pub index: usize,
    /// Source name, `site{index:04}` like the materializing generator.
    pub name: String,
    /// The source's schema.
    pub schema: Schema,
    /// Realized distinct-tuple count (after window merging).
    pub cardinality: u64,
    /// Interval-compressed tuple windows — `O(1)` memory per source.
    pub windows: TupleWindows,
    /// Whether the schema is a perturbed copy of a base schema.
    pub perturbed: bool,
    /// Non-functional characteristics: mttf, latency, availability.
    pub characteristics: Vec<(&'static str, f64)>,
    pcsa: PcsaConfig,
}

impl StreamedSource {
    /// Synthesizes the source's PCSA signature from its tuple windows.
    /// `O(cardinality)` time, `O(signature)` memory.
    pub fn signature(&self) -> mube_sketch::PcsaSignature {
        self.windows.signature(self.pcsa.clone())
    }

    /// Converts into a [`SourceSpec`] (synthesizing the signature), ready
    /// for a [`mube_core::source::UniverseBuilder`].
    pub fn into_spec(self) -> SourceSpec {
        let signature = self.signature();
        let mut spec = SourceSpec::new(self.name, self.schema)
            .cardinality(self.cardinality)
            .signature(signature);
        for (name, value) in self.characteristics {
            spec = spec.characteristic(name, value);
        }
        spec
    }
}

/// A synthetic universe that is never materialized: sources are synthesized
/// on demand from per-source seed streams, so iterating 100k–1M sources
/// holds only the (bounded) base-schema pool plus one source at a time in
/// memory — peak memory is independent of the total tuple count.
///
/// Unlike [`generate`], which interleaves every source's draws on one RNG
/// stream, each streamed source draws from its own stream derived from
/// `(seed, index)`. That makes [`StreamingUniverse::source`] `O(1)` random
/// access (plus schema-synthesis cost) and the stream trivially resumable,
/// at the price of not being byte-identical with the materializing
/// generator. Determinism contract: identical `(config, domains, seed)`
/// produce identical sources at every index, on any machine and from any
/// number of threads.
pub struct StreamingUniverse {
    config: SynthConfig,
    domains: Vec<crate::domains::DomainKind>,
    seed: u64,
    bases_by_domain: Vec<Vec<crate::schema_gen::GeneratedSchema>>,
    zipf: BoundedZipf,
    pcsa: PcsaConfig,
}

impl StreamingUniverse {
    /// Sets up a single-domain stream (the domain in `config.schema`).
    pub fn new(config: SynthConfig, seed: u64) -> Self {
        let domain = config.schema.domain;
        Self::mixed(config, &[domain], seed)
    }

    /// Sets up a stream whose sources cycle through several BAMM domains,
    /// mirroring [`generate_mixed`].
    pub fn mixed(config: SynthConfig, domains: &[crate::domains::DomainKind], seed: u64) -> Self {
        assert!(config.num_sources > 0, "need at least one source");
        assert!(!domains.is_empty(), "need at least one domain");
        assert!(
            config.max_cardinality <= config.pool.pool_size(),
            "cardinalities cannot exceed the General pool"
        );
        // The base-schema pool is the only up-front state; it is bounded by
        // `num_base_schemas × domains`, not by the universe size.
        let mut setup_rng = StdRng::seed_from_u64(seed);
        let bases_by_domain = domains
            .iter()
            .map(|&domain| {
                let cfg = SchemaGenConfig {
                    domain,
                    ..config.schema.clone()
                };
                base_schemas(&cfg, &mut setup_rng)
            })
            .collect();
        let zipf = BoundedZipf::new(
            config.min_cardinality,
            config.max_cardinality,
            config.zipf_alpha,
        );
        let pcsa = config.pcsa();
        StreamingUniverse {
            config,
            domains: domains.to_vec(),
            seed,
            bases_by_domain,
            zipf,
            pcsa,
        }
    }

    /// Number of sources the stream emits.
    pub fn len(&self) -> usize {
        self.config.num_sources
    }

    /// True if the stream is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.config.num_sources == 0
    }

    /// The configuration in force.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The PCSA configuration shared by all emitted signatures.
    pub fn pcsa(&self) -> &PcsaConfig {
        &self.pcsa
    }

    /// Synthesizes source `index` from its seed stream. `O(1)` in the
    /// universe size.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn source(&self, index: usize) -> StreamedSource {
        assert!(index < self.len(), "source index {index} out of range");
        let i = index;
        let domain_idx = i % self.domains.len();
        let bases = &self.bases_by_domain[domain_idx];
        let domain_cfg = SchemaGenConfig {
            domain: self.domains[domain_idx],
            ..self.config.schema.clone()
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ CONTENT_STREAM.wrapping_mul(i as u64 + 1));
        // Same conformant-prefix rule as generate_mixed: the first
        // |bases| × |domains| sources are unperturbed bases.
        let generated = if i < bases.len() * self.domains.len() {
            bases[i / self.domains.len()].clone()
        } else {
            let base = &bases[rng.random_range(0..bases.len())];
            perturb(base, &domain_cfg, &mut rng)
        };

        let cardinality = self.zipf.sample(&mut rng);
        let is_specialty = rng.random::<f64>() < self.config.specialty_source_fraction;
        let specialty_len = if is_specialty {
            ((cardinality as f64 * self.config.specialty_tuple_fraction) as u64).max(1)
        } else {
            0
        };
        let general_len = cardinality - specialty_len;
        let mut intervals = self.config.pool.window(
            Pool::General,
            rng.random_range(0..self.config.pool.pool_size()),
            general_len,
        );
        if specialty_len > 0 {
            intervals.extend(self.config.pool.window(
                Pool::Specialty,
                rng.random_range(0..self.config.pool.pool_size()),
                specialty_len,
            ));
        }
        let windows = TupleWindows::new(intervals);
        let realized = windows.cardinality();

        let mttf_days =
            Normal::new(self.config.mttf_mean, self.config.mttf_std).sample_at_least(&mut rng, 1.0);
        let mut fault_rng =
            StdRng::seed_from_u64(self.seed ^ FAULT_STREAM.wrapping_mul(i as u64 + 1));
        let latency_ms = Normal::new(self.config.latency_mean_ms, self.config.latency_std_ms)
            .sample_at_least(&mut fault_rng, 5.0);
        let downtime = Normal::new(self.config.downtime_mean, self.config.downtime_std)
            .sample_at_least(&mut fault_rng, 0.1);
        let availability = mttf_days / (mttf_days + downtime);

        StreamedSource {
            index: i,
            name: format!("site{i:04}"),
            schema: Schema::new(generated.names().map(str::to_string)),
            cardinality: realized,
            windows,
            perturbed: generated.perturbed,
            characteristics: vec![
                ("mttf", mttf_days),
                ("latency", latency_ms),
                ("availability", availability),
            ],
            pcsa: self.pcsa.clone(),
        }
    }

    /// Iterates over all sources in index order, synthesizing one at a time.
    pub fn iter(&self) -> impl Iterator<Item = StreamedSource> + '_ {
        (0..self.len()).map(move |i| self.source(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let s = generate(&SynthConfig::small(30), 1);
        assert_eq!(s.universe.len(), 30);
        assert_eq!(s.windows.len(), 30);
        assert_eq!(s.unperturbed.len(), 10); // small() uses 10 bases
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&SynthConfig::small(20), 9);
        let b = generate(&SynthConfig::small(20), 9);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.name(), sb.name());
            assert_eq!(sa.cardinality(), sb.cardinality());
            assert_eq!(sa.schema(), sb.schema());
            assert_eq!(sa.characteristic("mttf"), sb.characteristic("mttf"));
        }
        assert_ne!(
            generate(&SynthConfig::small(20), 10)
                .universe
                .source(SourceId(15))
                .cardinality(),
            0
        );
    }

    #[test]
    fn cardinalities_in_range_and_consistent() {
        let cfg = SynthConfig::small(40);
        let s = generate(&cfg, 2);
        for (i, src) in s.universe.sources().enumerate() {
            // Window merging can only shrink, never grow.
            assert!(src.cardinality() <= cfg.max_cardinality);
            assert!(src.cardinality() >= 1);
            assert_eq!(src.cardinality(), s.windows[i].cardinality());
        }
    }

    #[test]
    fn signatures_estimate_exact_counts() {
        let s = generate(&SynthConfig::small(25), 3);
        for (i, src) in s.universe.sources().enumerate() {
            let est = src.signature().unwrap().estimate();
            let truth = s.windows[i].cardinality() as f64;
            let err = (est - truth).abs() / truth;
            assert!(err < 0.5, "source {i}: est={est} truth={truth}");
        }
    }

    #[test]
    fn exact_distinct_unions() {
        let s = generate(&SynthConfig::small(10), 4);
        let all = s.exact_distinct_universe();
        let one = s.exact_distinct([SourceId(0)]);
        assert!(one <= all);
        assert!(all <= s.config.pool.total());
        assert_eq!(one, s.windows[0].cardinality());
    }

    #[test]
    fn fault_profile_characteristics_generated() {
        let s = generate(&SynthConfig::small(30), 8);
        for src in s.universe.sources() {
            let latency = src.characteristic("latency").expect("latency generated");
            assert!(latency >= 5.0, "latency={latency}");
            let availability = src
                .characteristic("availability")
                .expect("availability generated");
            assert!(
                (0.0..=1.0).contains(&availability),
                "availability={availability}"
            );
            // availability = mttf / (mttf + downtime) with downtime ≥ 0.1.
            let mttf = src.characteristic("mttf").unwrap();
            assert!(availability <= mttf / (mttf + 0.1) + 1e-12);
        }
        // Deterministic in the seed, like everything else.
        let t = generate(&SynthConfig::small(30), 8);
        for (a, b) in s.universe.sources().zip(t.universe.sources()) {
            assert_eq!(a.characteristic("latency"), b.characteristic("latency"));
            assert_eq!(
                a.characteristic("availability"),
                b.characteristic("availability")
            );
        }
    }

    #[test]
    fn ground_truth_labels_exist() {
        let s = generate(&SynthConfig::small(30), 5);
        assert!(!s.ground_truth.is_empty());
        // Unperturbed sources are fully labelled.
        for &sid in &s.unperturbed {
            for attr in s.universe.source(sid).attr_ids() {
                assert!(s.ground_truth.concept_of(attr).is_some());
            }
        }
    }

    #[test]
    fn specialty_fraction_roughly_respected() {
        let cfg = SynthConfig::small(200);
        let s = generate(&cfg, 6);
        // Sources with any tuple id ≥ pool half carry specialty tuples.
        let half = cfg.pool.pool_size();
        let specialty = s
            .windows
            .iter()
            .filter(|w| w.intervals().iter().any(|&(start, _)| start >= half))
            .count();
        assert!(
            (60..=140).contains(&specialty),
            "specialty sources = {specialty}"
        );
    }

    #[test]
    fn random_unperturbed_selects_from_bases() {
        let s = generate(&SynthConfig::small(30), 7);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.random_unperturbed(5, &mut rng);
        assert_eq!(picked.len(), 5);
        for p in picked {
            assert!(s.unperturbed.contains(&p));
        }
    }

    #[test]
    #[should_panic]
    fn oversized_cardinality_rejected() {
        let mut cfg = SynthConfig::small(5);
        cfg.max_cardinality = cfg.pool.pool_size() + 1;
        let _ = generate(&cfg, 0);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::domains::DomainKind;

    #[test]
    fn random_access_matches_iteration() {
        let s = StreamingUniverse::new(SynthConfig::small(30), 11);
        for (i, from_iter) in s.iter().enumerate() {
            let direct = s.source(i);
            assert_eq!(direct.name, from_iter.name);
            assert_eq!(direct.schema, from_iter.schema);
            assert_eq!(direct.cardinality, from_iter.cardinality);
            assert_eq!(direct.windows.intervals(), from_iter.windows.intervals());
            assert_eq!(direct.characteristics, from_iter.characteristics);
        }
    }

    #[test]
    fn deterministic_in_seed_and_index() {
        let a = StreamingUniverse::new(SynthConfig::small(25), 3);
        let b = StreamingUniverse::new(SynthConfig::small(25), 3);
        // Out-of-order access on `b` must reproduce in-order access on `a`.
        for i in [24usize, 0, 13, 7, 13] {
            let sa = a.source(i);
            let sb = b.source(i);
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.schema, sb.schema);
            assert_eq!(sa.cardinality, sb.cardinality);
            assert_eq!(sa.characteristics, sb.characteristics);
            assert_eq!(
                sa.signature().estimate().to_bits(),
                sb.signature().estimate().to_bits()
            );
        }
        let c = StreamingUniverse::new(SynthConfig::small(25), 4);
        assert_ne!(a.source(5).cardinality, 0);
        assert!(
            (0..25).any(|i| a.source(i).cardinality != c.source(i).cardinality),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn streamed_specs_build_a_valid_universe() {
        let s = StreamingUniverse::new(SynthConfig::small(12), 8);
        let mut b = Universe::builder();
        for src in s.iter() {
            b.add_source(src.into_spec());
        }
        let u = b.build().unwrap();
        assert_eq!(u.len(), 12);
        for src in u.sources() {
            assert!(src.cooperates());
            assert!(src.cardinality() >= 1);
            assert!(src.characteristic("mttf").is_some());
            assert!(src.characteristic("availability").is_some());
        }
    }

    #[test]
    fn signature_estimates_track_cardinality() {
        let s = StreamingUniverse::new(SynthConfig::small(20), 2);
        for src in s.iter() {
            let est = src.signature().estimate();
            let truth = src.cardinality as f64;
            let err = (est - truth).abs() / truth;
            assert!(err < 0.5, "source {}: est={est} truth={truth}", src.index);
        }
    }

    #[test]
    fn conformant_prefix_is_unperturbed() {
        let cfg = SynthConfig::small(30); // 10 bases
        let s = StreamingUniverse::new(cfg, 5);
        for i in 0..10 {
            assert!(!s.source(i).perturbed, "source {i} should be a base");
        }
        assert!(
            (10..30).any(|i| s.source(i).perturbed),
            "tail should contain perturbed copies"
        );
    }

    #[test]
    fn mixed_streaming_cycles_domains() {
        let cfg = SynthConfig::small(20);
        let s = StreamingUniverse::mixed(cfg, &[DomainKind::Books, DomainKind::Movies], 6);
        assert_eq!(s.len(), 20);
        // Base schemas of distinct domains have distinct attribute pools;
        // spot-check that consecutive sources draw from different domains.
        let names0: Vec<String> = s
            .source(0)
            .schema
            .iter()
            .map(|(_, a)| a.name().to_string())
            .collect();
        let names1: Vec<String> = s
            .source(1)
            .schema
            .iter()
            .map(|(_, a)| a.name().to_string())
            .collect();
        assert_ne!(names0, names1);
    }

    #[test]
    fn scale_config_is_streamable() {
        // A slice of the 100k-source scale config: constant-memory synthesis
        // with modest cardinalities.
        let cfg = SynthConfig::scale(100_000);
        let s = StreamingUniverse::new(cfg, 1);
        assert_eq!(s.len(), 100_000);
        for i in [0usize, 42_000, 99_999] {
            let src = s.source(i);
            assert!(src.cardinality <= 5_000);
            assert!(src.windows.intervals().len() <= 4);
        }
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use crate::domains::DomainKind;

    #[test]
    fn mixed_universe_cycles_domains() {
        let cfg = SynthConfig::small(40);
        let domains = [DomainKind::Books, DomainKind::Movies];
        let s = generate_mixed(&cfg, &domains, 1);
        assert_eq!(s.universe.len(), 40);
        // Even sources descend from Books, odd from Movies: check via the
        // ground-truth label ranges of their concept attributes.
        for (i, src) in s.universe.sources().enumerate() {
            let expected = domains[i % 2];
            for attr in src.attr_ids() {
                if let Some(cid) = s.ground_truth.concept_of(attr) {
                    let (kind, _) = DomainKind::of_global_id(cid).unwrap();
                    assert_eq!(kind, expected, "source {i}");
                }
            }
        }
    }

    #[test]
    fn mixed_universe_is_deterministic() {
        let cfg = SynthConfig::small(20);
        let domains = [DomainKind::Airfares, DomainKind::MusicRecords];
        let a = generate_mixed(&cfg, &domains, 5);
        let b = generate_mixed(&cfg, &domains, 5);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.schema(), sb.schema());
            assert_eq!(sa.cardinality(), sb.cardinality());
        }
    }

    #[test]
    fn single_domain_mixed_equals_generate() {
        let cfg = SynthConfig::small(15);
        let a = generate(&cfg, 3);
        let b = generate_mixed(&cfg, &[DomainKind::Books], 3);
        for (sa, sb) in a.universe.sources().zip(b.universe.sources()) {
            assert_eq!(sa.schema(), sb.schema());
        }
    }

    #[test]
    fn all_four_domains_mix() {
        let cfg = SynthConfig::small(40);
        let s = generate_mixed(&cfg, &DomainKind::all(), 7);
        let mut kinds_seen = std::collections::BTreeSet::new();
        for src in s.universe.sources() {
            for attr in src.attr_ids() {
                if let Some(cid) = s.ground_truth.concept_of(attr) {
                    kinds_seen.insert(DomainKind::of_global_id(cid).unwrap().0.name());
                }
            }
        }
        assert_eq!(kinds_seen.len(), 4);
    }
}

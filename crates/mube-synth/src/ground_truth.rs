//! Ground-truth concept labels and Table 1 scoring.
//!
//! The generator knows which concept every attribute expresses (or that it
//! is an unrelated perturbation word), so solutions can be scored the way
//! the paper scores Table 1: how many of the 14 *true GAs* (concepts) did
//! `µBE` identify, how many attributes do those GAs cover, and how many true
//! GAs present in the chosen sources were missed.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mube_core::ga::{GlobalAttribute, MediatedSchema};
use mube_core::ids::{AttrId, SourceId};
use mube_core::source::Universe;
use rand::seq::SliceRandom;
use rand::Rng;

/// Concept labels for every attribute of a generated universe.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    labels: HashMap<AttrId, usize>,
}

/// Classification of one GA against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaClass {
    /// ≥ 2 attributes, all labelled with the same concept.
    True(usize),
    /// Attributes from ≥ 2 different concepts, or concept attributes mixed
    /// with unrelated words — a real matching mistake.
    False,
    /// Only unlabelled (unrelated-word) attributes — typically identical
    /// perturbation words clustering together; not a domain concept but not
    /// a mismatch either.
    Noise,
    /// A single attribute (only arises from user GA constraints).
    Singleton,
}

/// The Table 1 row for one solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaQualityReport {
    /// Distinct concepts identified by at least one pure GA ("true GAs
    /// selected", ≤ 14).
    pub true_gas: usize,
    /// Total attributes covered by the pure GAs ("attributes in true GAs").
    pub attrs_in_true_gas: usize,
    /// Concepts with ≥ 2 attributes among the selected sources but no pure
    /// GA in the schema ("true GAs missed").
    pub true_gas_missed: usize,
    /// GAs mixing concepts — the paper's `µBE` "never produced false GAs".
    pub false_gas: usize,
    /// All-unlabelled GAs.
    pub noise_gas: usize,
    /// Concepts with ≥ 2 attributes among the selected sources (the
    /// denominator for recall).
    pub concepts_present: usize,
}

impl GroundTruth {
    /// Records a label.
    pub fn insert(&mut self, attr: AttrId, concept: usize) {
        self.labels.insert(attr, concept);
    }

    /// The concept of an attribute, if it is a concept attribute.
    pub fn concept_of(&self, attr: AttrId) -> Option<usize> {
        self.labels.get(&attr).copied()
    }

    /// Number of labelled attributes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no labels were recorded.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Classifies one GA.
    pub fn classify(&self, ga: &GlobalAttribute) -> GaClass {
        if ga.len() < 2 {
            return GaClass::Singleton;
        }
        let mut concepts: BTreeSet<Option<usize>> =
            ga.attrs().iter().map(|a| self.concept_of(*a)).collect();
        if concepts.len() == 1 {
            match concepts.pop_first().expect("non-empty") {
                Some(c) => GaClass::True(c),
                None => GaClass::Noise,
            }
        } else {
            GaClass::False
        }
    }

    /// Concepts that appear on at least `min_attrs` attributes across the
    /// given sources.
    pub fn concepts_present(
        &self,
        universe: &Universe,
        sources: &BTreeSet<SourceId>,
        min_attrs: usize,
    ) -> BTreeSet<usize> {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &sid in sources {
            for attr in universe.source(sid).attr_ids() {
                if let Some(c) = self.concept_of(attr) {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .filter(|&(_, n)| n >= min_attrs)
            .map(|(c, _)| c)
            .collect()
    }

    /// Scores a solution the way Table 1 does.
    pub fn evaluate(
        &self,
        universe: &Universe,
        sources: &BTreeSet<SourceId>,
        schema: &MediatedSchema,
    ) -> GaQualityReport {
        let mut found: BTreeSet<usize> = BTreeSet::new();
        let mut attrs_in_true_gas = 0usize;
        let mut false_gas = 0usize;
        let mut noise_gas = 0usize;
        for ga in schema.gas() {
            match self.classify(ga) {
                GaClass::True(c) => {
                    found.insert(c);
                    attrs_in_true_gas += ga.len();
                }
                GaClass::False => false_gas += 1,
                GaClass::Noise => noise_gas += 1,
                GaClass::Singleton => {}
            }
        }
        let present = self.concepts_present(universe, sources, 2);
        let missed = present.difference(&found).count();
        GaQualityReport {
            true_gas: found.len(),
            attrs_in_true_gas,
            true_gas_missed: missed,
            false_gas,
            noise_gas,
            concepts_present: present.len(),
        }
    }

    /// Builds an *accurate* GA constraint for a concept: up to `max_attrs`
    /// attributes of that concept, each from a different source among
    /// `sources`. Returns `None` if fewer than two sources carry the
    /// concept. This mirrors the paper's experimental GA constraints ("up
    /// to 5 attributes that represent accurate matchings").
    pub fn make_ga_constraint<R: Rng>(
        &self,
        universe: &Universe,
        sources: &[SourceId],
        concept: usize,
        max_attrs: usize,
        rng: &mut R,
    ) -> Option<GlobalAttribute> {
        let mut candidates: Vec<AttrId> = Vec::new();
        for &sid in sources {
            // One attribute per source: take the first with the concept.
            if let Some(attr) = universe
                .source(sid)
                .attr_ids()
                .find(|a| self.concept_of(*a) == Some(concept))
            {
                candidates.push(attr);
            }
        }
        if candidates.len() < 2 {
            return None;
        }
        candidates.shuffle(rng);
        candidates.truncate(max_attrs.max(2));
        GlobalAttribute::try_new(candidates).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_core::schema::Schema;
    use mube_core::source::SourceSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    /// Three sources: s0 {title(c0), author(c1)}, s1 {title(c0), junk},
    /// s2 {author(c1), junk}.
    fn setup() -> (Universe, GroundTruth) {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("s0", Schema::new(["title", "author"])));
        b.add_source(SourceSpec::new("s1", Schema::new(["title", "zeppelin"])));
        b.add_source(SourceSpec::new("s2", Schema::new(["author", "quartz"])));
        let u = b.build().unwrap();
        let mut gt = GroundTruth::default();
        gt.insert(a(0, 0), 0);
        gt.insert(a(0, 1), 1);
        gt.insert(a(1, 0), 0);
        gt.insert(a(2, 0), 1);
        (u, gt)
    }

    #[test]
    fn classify_all_cases() {
        let (_, gt) = setup();
        let pure = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        assert_eq!(gt.classify(&pure), GaClass::True(0));
        let mixed = GlobalAttribute::try_new([a(0, 0), a(2, 0)]).unwrap();
        assert_eq!(gt.classify(&mixed), GaClass::False);
        let noise = GlobalAttribute::try_new([a(1, 1), a(2, 1)]).unwrap();
        assert_eq!(gt.classify(&noise), GaClass::Noise);
        let single = GlobalAttribute::singleton(a(0, 0));
        assert_eq!(gt.classify(&single), GaClass::Singleton);
        let concept_plus_noise = GlobalAttribute::try_new([a(0, 0), a(1, 1)]).unwrap();
        assert_eq!(gt.classify(&concept_plus_noise), GaClass::False);
    }

    #[test]
    fn evaluate_counts_found_and_missed() {
        let (u, gt) = setup();
        let sources: BTreeSet<_> = u.source_ids().collect();
        // Schema only finds the title GA; author (present twice) is missed.
        let schema = MediatedSchema::new([GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap()]);
        let r = gt.evaluate(&u, &sources, &schema);
        assert_eq!(r.true_gas, 1);
        assert_eq!(r.attrs_in_true_gas, 2);
        assert_eq!(r.concepts_present, 2);
        assert_eq!(r.true_gas_missed, 1);
        assert_eq!(r.false_gas, 0);
        assert_eq!(r.noise_gas, 0);
    }

    #[test]
    fn evaluate_flags_false_gas() {
        let (u, gt) = setup();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let schema = MediatedSchema::new([GlobalAttribute::try_new([a(0, 0), a(2, 0)]).unwrap()]);
        let r = gt.evaluate(&u, &sources, &schema);
        assert_eq!(r.false_gas, 1);
        assert_eq!(r.true_gas, 0);
    }

    #[test]
    fn concepts_present_respects_min_attrs() {
        let (u, gt) = setup();
        let only_s0: BTreeSet<_> = [SourceId(0)].into();
        // Each concept appears once in s0 → not "present" at min 2.
        assert!(gt.concepts_present(&u, &only_s0, 2).is_empty());
        assert_eq!(gt.concepts_present(&u, &only_s0, 1).len(), 2);
    }

    #[test]
    fn make_ga_constraint_draws_distinct_sources() {
        let (u, gt) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let sources: Vec<_> = u.source_ids().collect();
        let ga = gt.make_ga_constraint(&u, &sources, 0, 5, &mut rng).unwrap();
        assert_eq!(ga.len(), 2); // title appears in s0 and s1
        assert_eq!(gt.classify(&ga), GaClass::True(0));
        // Concept 1 in only s0 and s2 → size 2; a concept in one source → None.
        let mut gt2 = GroundTruth::default();
        gt2.insert(a(0, 0), 3);
        assert!(gt2
            .make_ga_constraint(&u, &sources, 3, 5, &mut rng)
            .is_none());
    }
}

//! The four BAMM domains.
//!
//! The UIUC Web-integration repository the paper draws schemas from is
//! named after its domains: **B**ooks, **A**irfares, **M**ovies, and
//! **M**usic records. The paper's experiments use the 50 Books schemas;
//! the other three domains are provided here so the generator can build
//! workloads beyond the paper's (e.g. the mixed-domain dataspace example).
//!
//! Every domain is a fixed inventory of concepts with attribute-name
//! variant pools, mirroring how real query interfaces label the same
//! concept differently.

/// Which BAMM domain to generate schemas from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Book search interfaces — the paper's domain (14 concepts).
    Books,
    /// Flight search interfaces.
    Airfares,
    /// Movie search interfaces.
    Movies,
    /// Music record search interfaces.
    MusicRecords,
}

impl DomainKind {
    /// All four domains.
    pub fn all() -> [DomainKind; 4] {
        [
            DomainKind::Books,
            DomainKind::Airfares,
            DomainKind::Movies,
            DomainKind::MusicRecords,
        ]
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::Books => "books",
            DomainKind::Airfares => "airfares",
            DomainKind::Movies => "movies",
            DomainKind::MusicRecords => "music",
        }
    }

    /// The concept inventory: `(canonical name, attribute-name variants)`.
    pub fn concepts(self) -> &'static [(&'static str, &'static [&'static str])] {
        match self {
            DomainKind::Books => BOOKS,
            DomainKind::Airfares => AIRFARES,
            DomainKind::Movies => MOVIES,
            DomainKind::MusicRecords => MUSIC,
        }
    }

    /// Number of concepts in this domain.
    pub fn num_concepts(self) -> usize {
        self.concepts().len()
    }

    /// Which concept (if any) an attribute name belongs to, within this
    /// domain.
    pub fn concept_of_name(self, name: &str) -> Option<usize> {
        self.concepts()
            .iter()
            .position(|(_, variants)| variants.contains(&name))
    }
}

/// Books — 14 concepts, matching the paper's manual count in the BAMM
/// Books schemas.
pub const BOOKS: &[(&str, &[&str])] = &[
    (
        "title",
        &[
            "title",
            "book title",
            "title of book",
            "title keyword",
            "exact title",
        ],
    ),
    (
        "author",
        &[
            "author",
            "author name",
            "book author",
            "name of author",
            "first author",
        ],
    ),
    ("isbn", &["isbn", "isbn number", "isbn code", "isbn 13"]),
    (
        "keyword",
        &["keyword", "keywords", "keyword search", "any keyword"],
    ),
    (
        "publisher",
        &["publisher", "publisher name", "book publisher"],
    ),
    (
        "price",
        &[
            "price",
            "max price",
            "price limit",
            "list price",
            "price range",
        ],
    ),
    (
        "subject",
        &["subject", "subject area", "subject heading", "book subject"],
    ),
    (
        "format",
        &["format", "book format", "format type", "binding format"],
    ),
    ("edition", &["edition", "edition number", "book edition"]),
    ("language", &["language", "book language", "language code"]),
    (
        "year",
        &["year", "publication year", "year published", "pub year"],
    ),
    (
        "condition",
        &["condition", "book condition", "item condition"],
    ),
    (
        "seller",
        &["seller", "seller name", "bookseller", "seller location"],
    ),
    (
        "rating",
        &["rating", "customer rating", "average rating", "star rating"],
    ),
];

/// Airfares — 12 concepts typical of flight-search interfaces.
pub const AIRFARES: &[(&str, &[&str])] = &[
    (
        "origin",
        &[
            "from",
            "depart from",
            "departure city",
            "origin airport",
            "leaving from",
        ],
    ),
    (
        "destination",
        &[
            "to",
            "arrive at",
            "arrival city",
            "destination airport",
            "going to",
        ],
    ),
    (
        "depart date",
        &["depart date", "departure date", "outbound date", "leave on"],
    ),
    (
        "return date",
        &["return date", "inbound date", "come back on", "returning"],
    ),
    (
        "passengers",
        &["passengers", "number of passengers", "travellers", "adults"],
    ),
    (
        "cabin",
        &["cabin", "cabin class", "service class", "travel class"],
    ),
    (
        "airline",
        &["airline", "carrier", "preferred airline", "airline name"],
    ),
    (
        "stops",
        &["stops", "number of stops", "nonstop only", "max stops"],
    ),
    ("fare", &["fare", "max fare", "fare limit", "ticket price"]),
    (
        "trip type",
        &["trip type", "one way or round trip", "journey type"],
    ),
    (
        "flexible dates",
        &["flexible dates", "date flexibility", "plus minus days"],
    ),
    (
        "airports nearby",
        &[
            "airports nearby",
            "include nearby airports",
            "nearby airports",
        ],
    ),
];

/// Movies — 11 concepts typical of movie-search interfaces.
pub const MOVIES: &[(&str, &[&str])] = &[
    (
        "movie title",
        &["movie title", "film title", "movie name", "title of film"],
    ),
    (
        "director",
        &["director", "director name", "directed by", "film director"],
    ),
    (
        "actor",
        &[
            "actor",
            "actor name",
            "cast member",
            "starring",
            "lead actor",
        ],
    ),
    (
        "genre",
        &["genre", "film genre", "movie genre", "movie category"],
    ),
    (
        "release year",
        &[
            "release year",
            "year of release",
            "released in",
            "movie year",
        ],
    ),
    (
        "mpaa rating",
        &[
            "mpaa rating",
            "parental rating",
            "certificate",
            "age rating",
        ],
    ),
    (
        "studio",
        &[
            "studio",
            "production studio",
            "film studio",
            "production company",
        ],
    ),
    (
        "runtime",
        &["runtime", "running time", "length in minutes", "duration"],
    ),
    (
        "media format",
        &[
            "media format",
            "dvd or bluray",
            "disc format",
            "video format",
        ],
    ),
    (
        "review score",
        &[
            "review score",
            "critic score",
            "viewer score",
            "movie score",
        ],
    ),
    (
        "plot keyword",
        &["plot keyword", "plot contains", "storyline keyword"],
    ),
];

/// Music records — 11 concepts typical of record-store interfaces.
pub const MUSIC: &[(&str, &[&str])] = &[
    (
        "artist",
        &["artist", "artist name", "band", "band name", "performer"],
    ),
    (
        "album",
        &["album", "album title", "album name", "record title"],
    ),
    (
        "track",
        &["track", "track title", "song", "song title", "song name"],
    ),
    (
        "music genre",
        &[
            "music genre",
            "music style",
            "genre of music",
            "music category",
        ],
    ),
    ("label", &["label", "record label", "label name"]),
    (
        "release date",
        &[
            "release date",
            "album year",
            "recorded in",
            "date of release",
        ],
    ),
    (
        "media",
        &["media", "cd or vinyl", "record format", "audio format"],
    ),
    (
        "composer",
        &["composer", "composed by", "songwriter", "written by"],
    ),
    (
        "album price",
        &["album price", "record price", "max album price"],
    ),
    (
        "catalog number",
        &["catalog number", "catalogue no", "upc", "barcode"],
    ),
    (
        "album rating",
        &["album rating", "listener rating", "album stars"],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn books_matches_paper_count() {
        assert_eq!(DomainKind::Books.num_concepts(), 14);
    }

    #[test]
    fn every_domain_has_concepts_with_variants() {
        for kind in DomainKind::all() {
            assert!(kind.num_concepts() >= 10, "{}", kind.name());
            for (canonical, variants) in kind.concepts() {
                assert!(!variants.is_empty(), "{canonical}");
            }
        }
    }

    #[test]
    fn variants_unique_within_each_domain() {
        for kind in DomainKind::all() {
            let mut seen = BTreeSet::new();
            for (_, variants) in kind.concepts() {
                for v in *variants {
                    assert!(seen.insert(*v), "{} repeats `{v}`", kind.name());
                }
            }
        }
    }

    #[test]
    fn concept_of_name_roundtrips_per_domain() {
        for kind in DomainKind::all() {
            for (id, (_, variants)) in kind.concepts().iter().enumerate() {
                for v in *variants {
                    assert_eq!(kind.concept_of_name(v), Some(id));
                }
            }
            assert_eq!(kind.concept_of_name("definitely not an attribute"), None);
        }
    }

    #[test]
    fn domains_are_lexically_distinct_enough() {
        // Cross-domain identical variant names would let the matcher merge
        // concepts across domains in mixed universes; keep them disjoint.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for kind in DomainKind::all() {
            for (_, variants) in kind.concepts() {
                for v in *variants {
                    assert!(seen.insert(*v), "variant `{v}` appears in two domains");
                }
            }
        }
    }
}

impl DomainKind {
    /// Offset added to this domain's local concept ids to form *global*
    /// concept ids, so labels from different domains never collide in
    /// mixed-domain universes.
    pub fn concept_id_offset(self) -> usize {
        match self {
            DomainKind::Books => 0,
            DomainKind::Airfares => 100,
            DomainKind::Movies => 200,
            DomainKind::MusicRecords => 300,
        }
    }

    /// Resolves a global concept id back to its domain and local index.
    pub fn of_global_id(id: usize) -> Option<(DomainKind, usize)> {
        let kind = match id / 100 {
            0 => DomainKind::Books,
            1 => DomainKind::Airfares,
            2 => DomainKind::Movies,
            3 => DomainKind::MusicRecords,
            _ => return None,
        };
        let local = id % 100;
        (local < kind.num_concepts()).then_some((kind, local))
    }
}

/// The canonical name of a global concept id.
pub fn canonical_of_global(id: usize) -> Option<&'static str> {
    DomainKind::of_global_id(id).map(|(kind, local)| kind.concepts()[local].0)
}

/// The variant pool of a global concept id.
pub fn variants_of_global(id: usize) -> Option<&'static [&'static str]> {
    DomainKind::of_global_id(id).map(|(kind, local)| kind.concepts()[local].1)
}

#[cfg(test)]
mod global_id_tests {
    use super::*;

    #[test]
    fn global_ids_roundtrip() {
        for kind in DomainKind::all() {
            for local in 0..kind.num_concepts() {
                let global = kind.concept_id_offset() + local;
                assert_eq!(DomainKind::of_global_id(global), Some((kind, local)));
                assert_eq!(canonical_of_global(global), Some(kind.concepts()[local].0));
            }
        }
    }

    #[test]
    fn out_of_range_ids_rejected() {
        assert_eq!(DomainKind::of_global_id(14), None); // books has 14 (0..14)
        assert_eq!(DomainKind::of_global_id(450), None);
        assert!(variants_of_global(99).is_none());
    }
}

//! Base schemas and the perturbation model (§7.1).
//!
//! The paper's 700 schemas are 50 base Books schemas plus perturbed copies:
//! perturbation adds attributes, removes attributes, or replaces attributes
//! with words unrelated to the Books domain, "following a probability
//! distribution that retains some of the characteristics of the original
//! schemas while having variability".
//!
//! Schemas can be generated from any of the four BAMM domains
//! ([`DomainKind`]); the paper's experiments use Books. Ground-truth
//! concept labels are *global* ids (domain offset + local concept index) so
//! mixed-domain universes never confuse concepts across domains.

use rand::seq::IndexedRandom;
use rand::Rng;

use crate::concepts::UNRELATED_WORDS;
use crate::domains::{variants_of_global, DomainKind};

/// Knobs for schema generation.
#[derive(Debug, Clone)]
pub struct SchemaGenConfig {
    /// Which BAMM domain the schemas describe.
    pub domain: DomainKind,
    /// Number of base ("conformant") schemas; the paper uses 50.
    pub num_base_schemas: usize,
    /// Minimum concepts per base schema.
    pub min_concepts: usize,
    /// Maximum concepts per base schema.
    pub max_concepts: usize,
    /// Per-attribute probability of removal during perturbation.
    pub p_remove: f64,
    /// Per-attribute probability of replacement with an unrelated word.
    pub p_replace: f64,
    /// Probability of appending one unrelated attribute (applied twice, so
    /// 0, 1 or 2 attributes are added).
    pub p_add: f64,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            domain: DomainKind::Books,
            num_base_schemas: 50,
            min_concepts: 4,
            max_concepts: 9,
            p_remove: 0.12,
            p_replace: 0.10,
            p_add: 0.25,
        }
    }
}

/// A generated schema: attribute names with their ground-truth *global*
/// concept labels (`None` for unrelated words).
#[derive(Debug, Clone)]
pub struct GeneratedSchema {
    /// `(attribute name, global concept id)` in schema order.
    pub attrs: Vec<(String, Option<usize>)>,
    /// Which base schema this descends from.
    pub base_index: usize,
    /// False for the base schemas themselves, true for perturbed copies.
    pub perturbed: bool,
}

impl GeneratedSchema {
    /// The attribute names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|(n, _)| n.as_str())
    }
}

/// Generates the base schemas: each samples a subset of the domain's
/// concepts and one name variant per concept. Every concept is guaranteed
/// to appear in at least one base schema (cycling), so all the domain's
/// "true GAs" are discoverable.
pub fn base_schemas<R: Rng>(cfg: &SchemaGenConfig, rng: &mut R) -> Vec<GeneratedSchema> {
    let num_concepts = cfg.domain.num_concepts();
    let offset = cfg.domain.concept_id_offset();
    assert!(cfg.min_concepts >= 1 && cfg.max_concepts <= num_concepts);
    assert!(cfg.min_concepts <= cfg.max_concepts);
    let mut out = Vec::with_capacity(cfg.num_base_schemas);
    for base_index in 0..cfg.num_base_schemas {
        let k = rng.random_range(cfg.min_concepts..=cfg.max_concepts);
        // Sample k distinct concepts; force-include one rotating concept so
        // coverage of the whole inventory is guaranteed across the bases.
        let forced = base_index % num_concepts;
        let mut ids: Vec<usize> = (0..num_concepts).filter(|&c| c != forced).collect();
        let mut chosen = vec![forced];
        while chosen.len() < k {
            let pos = rng.random_range(0..ids.len());
            chosen.push(ids.swap_remove(pos));
        }
        chosen.sort_unstable();
        let attrs = chosen
            .into_iter()
            .map(|local| {
                let (_, variants) = cfg.domain.concepts()[local];
                let name = *variants.choose(rng).expect("concepts have variants");
                (name.to_string(), Some(offset + local))
            })
            .collect();
        out.push(GeneratedSchema {
            attrs,
            base_index,
            perturbed: false,
        });
    }
    out
}

/// Produces one perturbed copy of a base schema.
pub fn perturb<R: Rng>(
    base: &GeneratedSchema,
    cfg: &SchemaGenConfig,
    rng: &mut R,
) -> GeneratedSchema {
    let mut attrs: Vec<(String, Option<usize>)> = Vec::with_capacity(base.attrs.len() + 2);
    for (name, concept) in &base.attrs {
        let roll: f64 = rng.random();
        if roll < cfg.p_remove {
            continue;
        }
        if roll < cfg.p_remove + cfg.p_replace {
            let word = *UNRELATED_WORDS.choose(rng).expect("word pool is non-empty");
            attrs.push((word.to_string(), None));
            continue;
        }
        // Keep the concept but possibly re-draw its name variant, modelling
        // different sites labelling the same concept differently.
        let name = match concept {
            Some(cid) if rng.random::<f64>() < 0.5 => {
                let variants =
                    variants_of_global(*cid).expect("labels are valid global concept ids");
                (*variants.choose(rng).expect("concepts have variants")).to_string()
            }
            _ => name.clone(),
        };
        attrs.push((name, *concept));
    }
    for _ in 0..2 {
        if rng.random::<f64>() < cfg.p_add {
            let word = *UNRELATED_WORDS.choose(rng).expect("word pool is non-empty");
            attrs.push((word.to_string(), None));
        }
    }
    // A schema must keep at least one attribute; fall back to the base's
    // first attribute if perturbation emptied it.
    if attrs.is_empty() {
        attrs.push(base.attrs[0].clone());
    }
    // A real query interface never repeats a label; dedupe by name.
    let mut seen = std::collections::BTreeSet::new();
    attrs.retain(|(n, _)| seen.insert(n.clone()));
    GeneratedSchema {
        attrs,
        base_index: base.base_index,
        perturbed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn label_of(cfg: &SchemaGenConfig, name: &str) -> Option<usize> {
        cfg.domain
            .concept_of_name(name)
            .map(|l| l + cfg.domain.concept_id_offset())
    }

    #[test]
    fn base_schemas_cover_all_concepts() {
        let cfg = SchemaGenConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let schemas = base_schemas(&cfg, &mut rng);
        assert_eq!(schemas.len(), 50);
        let covered: BTreeSet<usize> = schemas
            .iter()
            .flat_map(|s| s.attrs.iter().filter_map(|(_, c)| *c))
            .collect();
        assert_eq!(covered.len(), cfg.domain.num_concepts());
    }

    #[test]
    fn base_schema_sizes_in_range() {
        let cfg = SchemaGenConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        for s in base_schemas(&cfg, &mut rng) {
            assert!((cfg.min_concepts..=cfg.max_concepts).contains(&s.attrs.len()));
            assert!(!s.perturbed);
            // Base schemas contain no unrelated words and no duplicate
            // concepts.
            let cids: Vec<usize> = s.attrs.iter().map(|(_, c)| c.unwrap()).collect();
            let distinct: BTreeSet<_> = cids.iter().collect();
            assert_eq!(cids.len(), distinct.len());
        }
    }

    #[test]
    fn labels_match_concept_pools() {
        let cfg = SchemaGenConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        for s in base_schemas(&cfg, &mut rng) {
            for (name, cid) in &s.attrs {
                assert_eq!(label_of(&cfg, name), *cid);
            }
        }
    }

    #[test]
    fn other_domains_generate_with_offsets() {
        for domain in DomainKind::all() {
            let cfg = SchemaGenConfig {
                domain,
                max_concepts: 8,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(4);
            let schemas = base_schemas(&cfg, &mut rng);
            for s in &schemas {
                for (name, cid) in &s.attrs {
                    let cid = cid.expect("base schemas are fully labelled");
                    assert_eq!(Some(cid), label_of(&cfg, name));
                    assert!(cid >= domain.concept_id_offset());
                    assert!(cid < domain.concept_id_offset() + domain.num_concepts());
                }
            }
        }
    }

    #[test]
    fn perturbation_preserves_some_and_changes_some() {
        let cfg = SchemaGenConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let bases = base_schemas(&cfg, &mut rng);
        let mut kept = 0usize;
        let mut changed = 0usize;
        for base in &bases {
            let p = perturb(base, &cfg, &mut rng);
            assert!(p.perturbed);
            assert!(!p.attrs.is_empty());
            let base_names: BTreeSet<&str> = base.names().collect();
            for name in p.names() {
                if base_names.contains(name) {
                    kept += 1;
                } else {
                    changed += 1;
                }
            }
            // Labels still truthful after perturbation.
            for (name, cid) in &p.attrs {
                assert_eq!(label_of(&cfg, name), *cid);
            }
        }
        assert!(kept > 0, "perturbation should retain characteristics");
        assert!(changed > 0, "perturbation should introduce variability");
    }

    #[test]
    fn perturbed_schema_has_unique_names() {
        let cfg = SchemaGenConfig {
            p_add: 1.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let bases = base_schemas(&cfg, &mut rng);
        for base in &bases {
            let p = perturb(base, &cfg, &mut rng);
            let names: Vec<&str> = p.names().collect();
            let distinct: BTreeSet<&str> = names.iter().copied().collect();
            assert_eq!(names.len(), distinct.len());
        }
    }

    #[test]
    fn aggressive_removal_still_yields_nonempty() {
        let cfg = SchemaGenConfig {
            p_remove: 1.0,
            p_add: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let bases = base_schemas(&cfg, &mut rng);
        for base in &bases {
            assert!(!perturb(base, &cfg, &mut rng).attrs.is_empty());
        }
    }
}

//! Books-domain concept accessors — the paper's experimental domain.
//!
//! This is a thin facade over [`crate::domains::DomainKind::Books`], kept
//! because the paper's experiments (Table 1, the GA-constraint variants)
//! are defined in terms of the 14 Books concepts. The full four-domain
//! BAMM inventory lives in [`crate::domains`].

use crate::domains::DomainKind;

/// One ground-truth concept and the attribute-name variants sources use for
/// it.
#[derive(Debug, Clone, Copy)]
pub struct Concept {
    /// Stable concept identifier, `0..NUM_CONCEPTS`.
    pub id: usize,
    /// Canonical name, for reports.
    pub canonical: &'static str,
    /// Name variants. The first variant is the "conformant" spelling used
    /// by unperturbed schemas.
    pub variants: &'static [&'static str],
}

/// Number of distinct Books concepts — 14, matching the paper's manual
/// count.
pub const NUM_CONCEPTS: usize = 14;

/// Words with no relation to any domain, used by the perturbation model
/// ("a list of words unrelated to the Books domain", §7.1).
pub const UNRELATED_WORDS: &[&str] = &[
    "zeppelin",
    "quartz",
    "mangrove",
    "turbine",
    "lichen",
    "obelisk",
    "parsec",
    "fjord",
    "tundra",
    "cobalt",
    "marzipan",
    "gazebo",
    "yurt",
    "sprocket",
    "ocelot",
    "brisket",
    "typhoon",
    "crampon",
    "haiku",
    "lagoon",
    "pylon",
    "sextant",
    "gossamer",
    "kelp",
    "ziggurat",
    "monsoon",
    "tarpaulin",
    "vortex",
    "quiver",
    "ballast",
    "catamaran",
    "drizzle",
    "ember",
    "flotsam",
    "gantry",
    "hammock",
    "isthmus",
    "jicama",
    "krill",
    "lantern",
    "meerkat",
    "nimbus",
    "oasis",
    "pergola",
    "quahog",
    "rivulet",
    "sycamore",
    "trellis",
    "umlaut",
    "verdigris",
    "wombat",
    "xylem",
    "yucca",
    "zephyr",
    "anchovy",
    "bobbin",
    "cairn",
    "dynamo",
    "eyelet",
    "ferret",
];

/// All Books concepts.
pub fn all() -> impl Iterator<Item = Concept> {
    DomainKind::Books
        .concepts()
        .iter()
        .enumerate()
        .map(|(id, &(canonical, variants))| Concept {
            id,
            canonical,
            variants,
        })
}

/// The Books concept with a given id.
///
/// # Panics
///
/// Panics if `id >= NUM_CONCEPTS`.
pub fn concept(id: usize) -> Concept {
    let (canonical, variants) = DomainKind::Books.concepts()[id];
    Concept {
        id,
        canonical,
        variants,
    }
}

/// Looks up which Books concept (if any) an attribute name belongs to.
pub fn concept_of_name(name: &str) -> Option<usize> {
    DomainKind::Books.concept_of_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fourteen_concepts() {
        assert_eq!(all().count(), NUM_CONCEPTS);
        assert_eq!(NUM_CONCEPTS, DomainKind::Books.num_concepts());
    }

    #[test]
    fn variant_names_are_globally_unique() {
        let mut seen = BTreeSet::new();
        for c in all() {
            assert!(!c.variants.is_empty());
            for v in c.variants {
                assert!(seen.insert(*v), "variant `{v}` appears in two concepts");
            }
        }
    }

    #[test]
    fn unrelated_words_do_not_collide_with_any_domain() {
        for w in UNRELATED_WORDS {
            for kind in DomainKind::all() {
                assert!(
                    kind.concept_of_name(w).is_none(),
                    "`{w}` is a {} variant",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn concept_of_name_roundtrips() {
        for c in all() {
            for v in c.variants {
                assert_eq!(concept_of_name(v), Some(c.id));
            }
        }
        assert_eq!(concept_of_name("not a real attribute"), None);
    }

    #[test]
    fn variants_within_concept_share_lexical_material() {
        // Sanity: each non-canonical variant shares a word or a long prefix
        // with the canonical one, so similarity measures have signal.
        for c in all() {
            let canon = c.variants[0];
            for v in &c.variants[1..] {
                let shares_word = v.split_whitespace().any(|t| canon.contains(t))
                    || canon.split_whitespace().any(|t| v.contains(t));
                assert!(shares_word, "{v} vs {canon}");
            }
        }
    }
}

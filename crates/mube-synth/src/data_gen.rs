//! Tuple data for synthetic sources.
//!
//! §7.1: tuples are "chosen randomly from a set of 4,000,000 distinct tuples
//! consisting of random words", half labelled *General* and half
//! *Specialty*; half the sources draw only from the General pool, the other
//! half mix in a small number of Specialty tuples (modelling items only a
//! few sites carry).
//!
//! A source's tuple set is represented as a union of *windows* — contiguous
//! id intervals at a random offset within a pool. Windows at random offsets
//! produce the same overlap statistics as random subsets for the purposes
//! of coverage/redundancy, while giving us two things real random subsets
//! would make expensive:
//!
//! * *exact* union cardinalities in `O(k log k)` interval arithmetic (the
//!   baseline for the PCSA-accuracy experiment), and
//! * compact storage — a source of a million tuples is two `u64`s.
//!
//! Tuple *identities* are irrelevant beyond distinctness (PCSA hashes them;
//! the paper's tuples are random words), so ids are just pool positions.

use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

/// Which pool a window draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// Tuples every source in the domain may carry.
    General,
    /// Tuples only specialty sources carry.
    Specialty,
}

/// The id layout of the tuple universe: General occupies `[0, half)`,
/// Specialty `[half, 2·half)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayout {
    half: u64,
}

impl PoolLayout {
    /// Creates a layout with `half` tuples per pool.
    ///
    /// # Panics
    ///
    /// Panics if `half` is zero.
    pub fn new(half: u64) -> Self {
        assert!(half > 0, "pools must be non-empty");
        PoolLayout { half }
    }

    /// The paper's layout: 4,000,000 tuples, 2,000,000 per pool.
    pub fn paper() -> Self {
        PoolLayout::new(2_000_000)
    }

    /// Tuples per pool.
    pub fn pool_size(&self) -> u64 {
        self.half
    }

    /// Total distinct tuples across both pools.
    pub fn total(&self) -> u64 {
        self.half * 2
    }

    fn base(&self, pool: Pool) -> u64 {
        match pool {
            Pool::General => 0,
            Pool::Specialty => self.half,
        }
    }

    /// A window of `len` tuples starting at `start` (position within the
    /// pool, wrapping around), expressed as absolute non-wrapping intervals.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the pool size.
    pub fn window(&self, pool: Pool, start: u64, len: u64) -> Vec<(u64, u64)> {
        assert!(len <= self.half, "window larger than pool");
        if len == 0 {
            return Vec::new();
        }
        let base = self.base(pool);
        let start = start % self.half;
        if start + len <= self.half {
            vec![(base + start, len)]
        } else {
            let first = self.half - start;
            vec![(base + start, first), (base, len - first)]
        }
    }
}

/// A source's tuple set: disjoint absolute id intervals `(start, len)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TupleWindows {
    intervals: Vec<(u64, u64)>,
}

impl TupleWindows {
    /// Builds from intervals (normalizing: sorted, merged, `len > 0`).
    pub fn new(mut intervals: Vec<(u64, u64)>) -> Self {
        intervals.retain(|&(_, len)| len > 0);
        intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
        for (start, len) in intervals {
            match merged.last_mut() {
                Some((s, l)) if start <= *s + *l => {
                    let end = (*s + *l).max(start + len);
                    *l = end - *s;
                }
                _ => merged.push((start, len)),
            }
        }
        TupleWindows { intervals: merged }
    }

    /// The normalized intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.intervals
    }

    /// Number of distinct tuples.
    pub fn cardinality(&self) -> u64 {
        self.intervals.iter().map(|&(_, len)| len).sum()
    }

    /// Iterates over the tuple ids.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.intervals
            .iter()
            .flat_map(|&(start, len)| start..start + len)
    }

    /// Computes the PCSA signature of this tuple set.
    pub fn signature(&self, config: PcsaConfig) -> PcsaSignature {
        let mut sig = PcsaSignature::new(config);
        for id in self.ids() {
            sig.insert(id);
        }
        sig
    }
}

/// Exact distinct-tuple count of the union of several sources' windows.
pub fn exact_union(windows: &[&TupleWindows]) -> u64 {
    let mut all: Vec<(u64, u64)> = windows
        .iter()
        .flat_map(|w| w.intervals.iter().copied())
        .collect();
    TupleWindows::new(std::mem::take(&mut all)).cardinality()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_windows_wrap() {
        let layout = PoolLayout::new(100);
        assert_eq!(layout.window(Pool::General, 10, 20), vec![(10, 20)]);
        assert_eq!(
            layout.window(Pool::General, 90, 20),
            vec![(90, 10), (0, 10)]
        );
        assert_eq!(
            layout.window(Pool::Specialty, 90, 20),
            vec![(190, 10), (100, 10)]
        );
        assert_eq!(layout.window(Pool::General, 0, 0), vec![]);
    }

    #[test]
    #[should_panic]
    fn oversized_window_panics() {
        let layout = PoolLayout::new(100);
        let _ = layout.window(Pool::General, 0, 101);
    }

    #[test]
    fn windows_normalize_and_merge() {
        let w = TupleWindows::new(vec![(10, 5), (12, 10), (30, 0), (40, 2)]);
        assert_eq!(w.intervals(), &[(10, 12), (40, 2)]);
        assert_eq!(w.cardinality(), 14);
    }

    #[test]
    fn adjacent_intervals_merge() {
        let w = TupleWindows::new(vec![(0, 5), (5, 5)]);
        assert_eq!(w.intervals(), &[(0, 10)]);
    }

    #[test]
    fn ids_enumerate_every_tuple() {
        let w = TupleWindows::new(vec![(3, 2), (10, 3)]);
        let ids: Vec<u64> = w.ids().collect();
        assert_eq!(ids, vec![3, 4, 10, 11, 12]);
    }

    #[test]
    fn exact_union_counts_overlaps_once() {
        let a = TupleWindows::new(vec![(0, 100)]);
        let b = TupleWindows::new(vec![(50, 100)]);
        let c = TupleWindows::new(vec![(500, 10)]);
        assert_eq!(exact_union(&[&a, &b]), 150);
        assert_eq!(exact_union(&[&a, &b, &c]), 160);
        assert_eq!(exact_union(&[&a, &a]), 100);
        assert_eq!(exact_union(&[]), 0);
    }

    #[test]
    fn signature_matches_pcsa_of_ids() {
        let w = TupleWindows::new(vec![(100, 1000), (5000, 500)]);
        let cfg = PcsaConfig::new(64, 32, 5);
        let sig = w.signature(cfg.clone());
        let mut manual = PcsaSignature::new(cfg);
        for id in w.ids() {
            manual.insert(id);
        }
        assert_eq!(sig, manual);
        let est = sig.estimate();
        let truth = w.cardinality() as f64;
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est={est} truth={truth}"
        );
    }

    #[test]
    fn pcsa_union_tracks_exact_union() {
        let layout = PoolLayout::new(100_000);
        let a = TupleWindows::new(layout.window(Pool::General, 0, 50_000));
        let b = TupleWindows::new(layout.window(Pool::General, 25_000, 50_000));
        let cfg = PcsaConfig::new(256, 32, 1);
        let sig = a.signature(cfg.clone()).union(&b.signature(cfg)).unwrap();
        let exact = exact_union(&[&a, &b]) as f64;
        assert_eq!(exact, 75_000.0);
        let err = (sig.estimate() - exact).abs() / exact;
        assert!(err < 0.1, "err = {err}");
    }
}

//! # mube-audit — pre-solve feasibility analysis for `µBE` problems
//!
//! The solvers in `mube-opt` happily burn their whole evaluation budget on a
//! problem whose constraints are contradictory, then report "no feasible
//! solution found within the budget" — indistinguishable from a budget that
//! was merely too small. This crate analyzes `(Universe, Constraints, QEF
//! weights)` *statically*, before any solver runs, and reports what is
//! provably wrong (errors) or degenerate (warnings) as structured
//! [`Diagnostic`]s with stable `MUBE0xx` codes (see [`mube_core::diag`]).
//!
//! The analysis is deliberately conservative: an **error** means no solver
//! can succeed (or the constraints cannot even construct a
//! [`mube_core::Problem`]); a **warning** means the run can proceed but the
//! user probably wants to know (a `θ` no attribute pair reaches, a source
//! that can never join a GA, a catalog smell). A clean report is *not* a
//! feasibility proof — matching still depends on which sources end up
//! selected together — but every diagnostic is a true positive.
//!
//! ```
//! use mube_audit::Analyzer;
//! use mube_core::constraints::Constraints;
//! use mube_core::schema::Schema;
//! use mube_core::source::{SourceSpec, Universe};
//! use mube_core::SourceId;
//! use mube_match::JaccardNGram;
//!
//! let mut b = Universe::builder();
//! b.add_source(SourceSpec::new("a", Schema::new(["title"])).cardinality(10));
//! b.add_source(SourceSpec::new("b", Schema::new(["book title"])).cardinality(20));
//! let universe = b.build().unwrap();
//!
//! // Pinning two sources under m = 1 is statically infeasible: MUBE001.
//! let constraints = Constraints::with_max_sources(1)
//!     .require_source(SourceId(0))
//!     .require_source(SourceId(1));
//! let measure = JaccardNGram::trigram();
//! let report = Analyzer::new(&universe)
//!     .constraints(&constraints)
//!     .similarity(&measure)
//!     .run();
//! assert!(report.has_errors());
//! assert!(report.codes().any(|c| c.code() == "MUBE001"));
//! ```

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use mube_core::constraints::Constraints;
use mube_core::diag::{DiagCode, Diagnostic, Severity};
use mube_core::ids::{AttrId, SourceId};
use mube_core::qef::WeightedQefs;
use mube_core::source::{canonical_name_key, Universe};
use mube_match::similarity::Similarity;
use mube_match::SimilarityCache;

/// Tolerance for the QEF weights-sum-to-one check, matching
/// [`mube_core::qef::WeightedQefs::new`].
const WEIGHT_SUM_TOLERANCE: f64 = 1e-6;

/// The static analyzer. Configure with what you have — a bare universe
/// already gets the catalog lints; adding constraints, weights, and a
/// similarity measure unlocks the feasibility checks — then call
/// [`Analyzer::run`].
pub struct Analyzer<'a> {
    universe: &'a Universe,
    constraints: Option<&'a Constraints>,
    qefs: Option<&'a WeightedQefs>,
    raw_weights: Option<&'a [(String, f64)]>,
    similarity: Option<&'a dyn Similarity>,
    scale_threshold: Option<usize>,
    pruning_enabled: bool,
}

impl<'a> Analyzer<'a> {
    /// Starts an analysis over a universe.
    pub fn new(universe: &'a Universe) -> Self {
        Analyzer {
            universe,
            constraints: None,
            qefs: None,
            raw_weights: None,
            similarity: None,
            scale_threshold: None,
            pruning_enabled: false,
        }
    }

    /// Sets the source-count threshold above which an unpruned catalog is
    /// flagged (MUBE017). Flat solvers score every source per move, so past
    /// a few thousand sources a solve without the `mube-scale` pruning front
    /// end burns its budget going nowhere. Disabled when unset.
    pub fn scale_threshold(mut self, threshold: usize) -> Self {
        self.scale_threshold = Some(threshold);
        self
    }

    /// Declares that a pruning front end (e.g. `mube scale-solve` or the
    /// `prune` block on `POST /sessions`) is active for this run, which
    /// suppresses MUBE017 regardless of catalog size.
    pub fn pruning_enabled(mut self, enabled: bool) -> Self {
        self.pruning_enabled = enabled;
        self
    }

    /// Adds the constraint set to audit (builder style).
    pub fn constraints(mut self, constraints: &'a Constraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Adds an already-constructed QEF weighting to audit (builder style).
    /// Construction already validates the weights, so this is
    /// defense-in-depth for weightings mutated after the fact.
    pub fn qefs(mut self, qefs: &'a WeightedQefs) -> Self {
        self.qefs = Some(qefs);
        self
    }

    /// Adds *raw* `(qef name, weight)` pairs to audit — the form user input
    /// arrives in (CLI flags, config files) before
    /// [`WeightedQefs`] construction gets a chance to reject it.
    pub fn raw_weights(mut self, weights: &'a [(String, f64)]) -> Self {
        self.raw_weights = Some(weights);
        self
    }

    /// Adds the attribute-similarity measure the matcher will use,
    /// unlocking the `θ`-satisfiability (MUBE004) and isolated-source
    /// (MUBE014) checks.
    pub fn similarity(mut self, measure: &'a dyn Similarity) -> Self {
        self.similarity = Some(measure);
        self
    }

    /// Runs every check the configuration allows and returns the report.
    pub fn run(&self) -> AuditReport {
        let mut out = Vec::new();
        self.lint_catalog(&mut out);
        let cross_sims = self
            .similarity
            .map(|m| SimilarityCache::build(self.universe, m).per_source_best_cross_sim());
        if let Some(c) = self.constraints {
            self.check_constraints(c, cross_sims.as_deref(), &mut out);
        }
        if let Some(sims) = &cross_sims {
            let theta = self.constraints.map_or(0.75, |c| c.theta);
            self.check_isolated_sources(sims, theta, &mut out);
        }
        if let Some(weights) = self.raw_weights {
            check_weights(weights, &mut out);
        }
        if let Some(qefs) = self.qefs {
            let entries: Vec<(String, f64)> = qefs
                .iter()
                .map(|(q, w)| (q.name().to_string(), w))
                .collect();
            check_weights(&entries, &mut out);
        }
        AuditReport { diagnostics: out }
    }

    /// Universe-only lints: MUBE011–MUBE013, MUBE016, MUBE017.
    fn lint_catalog(&self, out: &mut Vec<Diagnostic>) {
        if let Some(threshold) = self.scale_threshold {
            if self.universe.len() > threshold && !self.pruning_enabled {
                out.push(Diagnostic::new(
                    DiagCode::UnprunedLargeCatalog,
                    format!(
                        "catalog has {} sources, above the scale threshold of \
                         {threshold}, and no pruning front end is enabled; a \
                         flat solve will be slow — consider `mube scale-solve`",
                        self.universe.len()
                    ),
                ));
            }
        }
        let mut by_name: BTreeMap<&str, Vec<SourceId>> = BTreeMap::new();
        for source in self.universe.sources() {
            by_name.entry(source.name()).or_default().push(source.id());

            let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
            for (j, attr) in source.schema().iter() {
                match seen.entry(attr.name()) {
                    Entry::Vacant(slot) => {
                        slot.insert(j as u32);
                    }
                    Entry::Occupied(first) => {
                        out.push(
                            Diagnostic::new(
                                DiagCode::DuplicateAttributeNames,
                                format!(
                                    "source `{}` has two attributes named `{}`",
                                    source.name(),
                                    attr.name()
                                ),
                            )
                            .with_sources([source.id()])
                            .with_attrs([
                                AttrId::new(source.id(), *first.get()),
                                AttrId::new(source.id(), j as u32),
                            ]),
                        );
                    }
                }
            }

            if source.cardinality() == 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::ZeroCardinalitySource,
                        format!("source `{}` reports zero tuples", source.name()),
                    )
                    .with_sources([source.id()]),
                );
            }
        }
        for (name, ids) in by_name {
            if ids.len() > 1 {
                out.push(
                    Diagnostic::new(
                        DiagCode::DuplicateSourceNames,
                        format!("{} sources are named `{name}`", ids.len()),
                    )
                    .with_sources(ids),
                );
            }
        }

        // MUBE016: names that collapse to the same key once case and
        // punctuation are dropped — `Movie DB` vs `movie_db`. Exact
        // duplicates are already MUBE013; this fires only when the raw
        // spellings differ, so `site0001`/`site0002` catalogs stay clean.
        let mut by_norm: BTreeMap<String, (BTreeSet<&str>, Vec<SourceId>)> = BTreeMap::new();
        for source in self.universe.sources() {
            let key = canonical_name_key(source.name());
            if key.is_empty() {
                continue;
            }
            let slot = by_norm.entry(key).or_default();
            slot.0.insert(source.name());
            slot.1.push(source.id());
        }
        for (key, (raw_names, ids)) in by_norm {
            if raw_names.len() > 1 {
                let listed: Vec<String> = raw_names.iter().map(|n| format!("`{n}`")).collect();
                out.push(
                    Diagnostic::new(
                        DiagCode::NearDuplicateSourceNames,
                        format!(
                            "source names {} all normalize to `{key}`",
                            listed.join(", ")
                        ),
                    )
                    .with_sources(ids),
                );
            }
        }
    }

    /// Constraint feasibility: MUBE001–MUBE006, MUBE008–MUBE010.
    fn check_constraints(
        &self,
        c: &Constraints,
        cross_sims: Option<&[f64]>,
        out: &mut Vec<Diagnostic>,
    ) {
        if !c.theta.is_finite() || !(0.0..=1.0).contains(&c.theta) {
            out.push(Diagnostic::new(
                DiagCode::ThetaOutOfRange,
                format!("theta is {}, outside [0, 1]", c.theta),
            ));
        }
        if c.max_sources == 0 {
            out.push(Diagnostic::new(
                DiagCode::ZeroMaxSources,
                "max_sources is 0; every selection is infeasible".to_string(),
            ));
        }

        let unknown_sources: Vec<SourceId> = c
            .required_sources
            .iter()
            .copied()
            .filter(|&s| self.universe.get(s).is_none())
            .collect();
        if !unknown_sources.is_empty() {
            let listed: Vec<String> = unknown_sources.iter().map(ToString::to_string).collect();
            out.push(
                Diagnostic::new(
                    DiagCode::UnknownRequiredSource,
                    format!(
                        "required sources not in the universe: {}",
                        listed.join(", ")
                    ),
                )
                .with_sources(unknown_sources),
            );
        }

        for (i, ga) in c.required_gas.iter().enumerate() {
            let unknown: Vec<AttrId> = ga
                .attrs()
                .iter()
                .copied()
                .filter(|&a| !self.universe.contains_attr(a))
                .collect();
            if !unknown.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::GaUnknownAttribute,
                        format!("GA constraint #{i} references unknown attributes"),
                    )
                    .with_attrs(unknown),
                );
            }
        }

        let required = c.effective_required_sources();
        if required.len() > c.max_sources {
            out.push(
                Diagnostic::new(
                    DiagCode::RequiredSourcesExceedMax,
                    format!(
                        "{} sources are required (pins plus GA-constraint sources) \
                         but max_sources is {}",
                        required.len(),
                        c.max_sources
                    ),
                )
                .with_sources(required.iter().copied()),
            );
        }

        // Pairwise GA-constraint overlaps: mergeable ones are the MUBE006
        // redundancy warning, unmergeable ones the MUBE003 error.
        for (i, g1) in c.required_gas.iter().enumerate() {
            for (j, g2) in c.required_gas.iter().enumerate().skip(i + 1) {
                if !g1.intersects(g2) {
                    continue;
                }
                let shared: Vec<AttrId> = g1.attrs().intersection(g2.attrs()).copied().collect();
                if g1.merge(g2).is_none() {
                    out.push(
                        Diagnostic::new(
                            DiagCode::GaConstraintsUnmergeable,
                            format!(
                                "GA constraints #{i} and #{j} overlap but their union \
                                 would take two attributes from one source"
                            ),
                        )
                        .with_attrs(shared),
                    );
                } else {
                    out.push(
                        Diagnostic::new(
                            DiagCode::AttrInMultipleRequiredGas,
                            format!(
                                "GA constraints #{i} and #{j} share attributes and will \
                                 be merged into one seed"
                            ),
                        )
                        .with_attrs(shared),
                    );
                }
            }
        }

        if let Some(sims) = cross_sims {
            let upper = sims.iter().copied().fold(0.0, f64::max);
            if (0.0..=1.0).contains(&c.theta) && c.theta > upper {
                out.push(Diagnostic::new(
                    DiagCode::ThetaUnsatisfiable,
                    format!(
                        "theta = {} but the best cross-source attribute similarity \
                         is {upper:.4}; no GA can form outside the seed GAs",
                        c.theta
                    ),
                ));
            }
        }

        let max_ga = c.max_sources.min(self.universe.len());
        if c.beta > max_ga && max_ga > 0 {
            out.push(Diagnostic::new(
                DiagCode::BetaExceedsFeasibleGa,
                format!(
                    "beta = {} but a GA spans at most {max_ga} attributes \
                     (one per selected source); every non-seed GA will be filtered",
                    c.beta
                ),
            ));
        }
    }

    /// MUBE014: sources that cannot reach `θ` against any other source.
    fn check_isolated_sources(&self, sims: &[f64], theta: f64, out: &mut Vec<Diagnostic>) {
        if !(0.0..=1.0).contains(&theta) || self.universe.len() < 2 {
            return;
        }
        for source in self.universe.sources() {
            let best = sims.get(source.id().index()).copied().unwrap_or(0.0);
            if best < theta {
                out.push(
                    Diagnostic::new(
                        DiagCode::IsolatedSource,
                        format!(
                            "source `{}` peaks at similarity {best:.4} against other \
                             sources, below theta = {theta}; it can never join a GA",
                            source.name()
                        ),
                    )
                    .with_sources([source.id()]),
                );
            }
        }
    }
}

/// MUBE007 over raw `(name, weight)` pairs.
fn check_weights(weights: &[(String, f64)], out: &mut Vec<Diagnostic>) {
    let mut seen = BTreeSet::new();
    let mut sum = 0.0;
    let mut broken = false;
    for (name, w) in weights {
        if !w.is_finite() || !(0.0..=1.0).contains(w) {
            broken = true;
            out.push(Diagnostic::new(
                DiagCode::InvalidQefWeight,
                format!("weight for QEF `{name}` is {w}, outside [0, 1]"),
            ));
        }
        if !seen.insert(name.as_str()) {
            broken = true;
            out.push(Diagnostic::new(
                DiagCode::InvalidQefWeight,
                format!("QEF `{name}` is weighted more than once"),
            ));
        }
        sum += w;
    }
    // Only report the sum when the individual weights were sane — a NaN or
    // runaway weight already poisons the sum and would double-report.
    if !broken && !weights.is_empty() && (sum - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
        out.push(Diagnostic::new(
            DiagCode::InvalidQefWeight,
            format!("QEF weights sum to {sum}, expected 1"),
        ));
    }
}

/// The outcome of one [`Analyzer::run`]: every diagnostic found, in
/// detection order.
#[derive(Debug, Clone)]
pub struct AuditReport {
    diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// All diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Appends an externally-detected diagnostic — e.g. a CLI-level name
    /// that failed to resolve and so never became an id the analyzer
    /// could see.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True if anything error-severity was found — the problem is provably
    /// broken and solving cannot succeed.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct codes present, ascending.
    pub fn codes(&self) -> impl Iterator<Item = DiagCode> {
        let set: BTreeSet<DiagCode> = self.diagnostics.iter().map(|d| d.code).collect();
        set.into_iter()
    }

    /// Renders the human-readable report (see
    /// [`mube_core::explain::lint_report`]).
    pub fn display(&self, universe: &Universe) -> String {
        mube_core::explain::lint_report(&self.diagnostics, universe)
    }

    /// Renders the report as a JSON array of findings, for tooling:
    ///
    /// ```json
    /// [{"code":"MUBE001","severity":"error","title":"...","message":"...",
    ///   "sources":["siteA"],"attrs":["a0.1"]}]
    /// ```
    pub fn to_json(&self, universe: &Universe) -> String {
        let mut j = mube_core::jsonw::JsonBuf::new();
        j.begin_arr();
        for d in &self.diagnostics {
            j.begin_obj();
            j.key("code").str_value(d.code.code());
            j.key("severity").str_value(&d.severity().to_string());
            j.key("title").str_value(d.code.title());
            j.key("message").str_value(&d.message);
            j.key("sources").begin_arr();
            for &s in &d.sources {
                let name = universe
                    .get(s)
                    .map_or_else(|| s.to_string(), |src| src.name().to_string());
                j.str_value(&name);
            }
            j.end_arr();
            j.key("attrs").begin_arr();
            for &a in &d.attrs {
                j.str_value(&a.to_string());
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_core::ga::GlobalAttribute;
    use mube_core::schema::Schema;
    use mube_core::source::SourceSpec;
    use mube_match::JaccardNGram;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    /// Three book-ish sources whose titles cross-match under trigram
    /// Jaccard at θ ≈ 0.36 but not at the paper default 0.75.
    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("alpha", Schema::new(["title", "author"])).cardinality(100));
        b.add_source(
            SourceSpec::new("beta", Schema::new(["book title", "writer"])).cardinality(200),
        );
        b.add_source(SourceSpec::new("gamma", Schema::new(["title", "isbn"])).cardinality(300));
        b.build().unwrap()
    }

    fn codes(report: &AuditReport) -> Vec<&'static str> {
        report.codes().map(DiagCode::code).collect()
    }

    #[test]
    fn clean_problem_is_clean() {
        let u = universe();
        // θ = 0.3 sits below every source's best cross-source similarity.
        let c = Constraints::with_max_sources(3).theta(0.3);
        let measure = JaccardNGram::trigram();
        let report = Analyzer::new(&u).constraints(&c).similarity(&measure).run();
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn mube001_required_exceed_max() {
        let u = universe();
        let c = Constraints::with_max_sources(1)
            .require_source(SourceId(0))
            .require_source(SourceId(1));
        let report = Analyzer::new(&u).constraints(&c).run();
        // m = 1 also makes the default β = 2 unreachable (MUBE005 warning);
        // the error is the over-pinning.
        assert!(
            codes(&report).contains(&"MUBE001"),
            "{:?}",
            report.diagnostics()
        );
        assert!(report.has_errors());
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::RequiredSourcesExceedMax)
            .unwrap();
        assert_eq!(d.sources, vec![SourceId(0), SourceId(1)]);
    }

    #[test]
    fn mube001_counts_ga_implied_sources() {
        let u = universe();
        let ga = GlobalAttribute::try_new([a(1, 0), a(2, 0)]).unwrap();
        let c = Constraints::with_max_sources(2)
            .require_source(SourceId(0))
            .require_ga(ga);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(
            codes(&report).contains(&"MUBE001"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn mube002_unknown_ga_attribute() {
        let u = universe();
        // Source 0 has 2 attributes; index 7 does not exist. Source 9 at all.
        let ga = GlobalAttribute::try_new([a(0, 7), a(9, 0)]).unwrap();
        let c = Constraints::with_max_sources(3).require_ga(ga);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(codes(&report).contains(&"MUBE002"));
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::GaUnknownAttribute)
            .unwrap();
        assert_eq!(d.attrs, vec![a(0, 7), a(9, 0)]);
    }

    #[test]
    fn mube003_unmergeable_required_gas() {
        let u = universe();
        // Both GAs contain a0.0; their union would take both attributes of
        // source 1, violating Definition 1.
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 0), a(1, 1)]).unwrap();
        let c = Constraints::with_max_sources(3)
            .require_ga(g1)
            .require_ga(g2);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(
            codes(&report).contains(&"MUBE003"),
            "{:?}",
            report.diagnostics()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn mube004_theta_above_similarity_ceiling() {
        // No shared names: ceiling is "title" vs "book title" ≈ 0.36.
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("x", Schema::new(["title"])).cardinality(1));
        b.add_source(SourceSpec::new("y", Schema::new(["book title"])).cardinality(1));
        let u = b.build().unwrap();
        let c = Constraints::with_max_sources(2); // θ = 0.75 default
        let measure = JaccardNGram::trigram();
        let report = Analyzer::new(&u).constraints(&c).similarity(&measure).run();
        assert!(
            codes(&report).contains(&"MUBE004"),
            "{:?}",
            report.diagnostics()
        );
        // Lowering θ below the ceiling clears it.
        let relaxed = c.theta(0.3);
        let report = Analyzer::new(&u)
            .constraints(&relaxed)
            .similarity(&measure)
            .run();
        assert!(
            !codes(&report).contains(&"MUBE004"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn mube005_beta_beyond_any_ga() {
        let u = universe();
        // A GA takes one attribute per source: with m = 2 no GA can have 3.
        let c = Constraints::with_max_sources(2).beta(3);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert_eq!(codes(&report), vec!["MUBE005"]);
        assert!(!report.has_errors(), "degenerate but not infeasible");
    }

    #[test]
    fn mube006_shared_attribute_across_required_gas() {
        let u = universe();
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 0), a(2, 0)]).unwrap();
        let c = Constraints::with_max_sources(3)
            .require_ga(g1)
            .require_ga(g2);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(
            codes(&report).contains(&"MUBE006"),
            "{:?}",
            report.diagnostics()
        );
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::AttrInMultipleRequiredGas)
            .unwrap();
        assert_eq!(d.attrs, vec![a(0, 0)]);
    }

    #[test]
    fn mube007_weight_lints() {
        let u = universe();
        let bad: Vec<(String, f64)> = vec![
            ("matching".into(), f64::NAN),
            ("cardinality".into(), -0.2),
            ("cardinality".into(), 0.5),
        ];
        let report = Analyzer::new(&u).raw_weights(&bad).run();
        let found: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::InvalidQefWeight)
            .collect();
        assert_eq!(found.len(), 3, "{found:?}");

        let unnormalized: Vec<(String, f64)> =
            vec![("matching".into(), 0.5), ("coverage".into(), 0.2)];
        let report = Analyzer::new(&u).raw_weights(&unnormalized).run();
        assert!(codes(&report).contains(&"MUBE007"));
        assert!(report.diagnostics()[0].message.contains("sum to"));

        let fine: Vec<(String, f64)> = vec![("matching".into(), 0.5), ("coverage".into(), 0.5)];
        assert!(Analyzer::new(&u).raw_weights(&fine).run().is_clean());
    }

    #[test]
    fn mube008_unknown_required_source() {
        let u = universe();
        let c = Constraints::with_max_sources(3).require_source(SourceId(42));
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(codes(&report).contains(&"MUBE008"));
        assert!(report.has_errors());
    }

    #[test]
    fn mube009_and_mube010_parameter_range() {
        let u = universe();
        let c = Constraints {
            theta: 1.5,
            max_sources: 0,
            ..Constraints::with_max_sources(1)
        };
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(codes(&report).contains(&"MUBE009"));
        assert!(codes(&report).contains(&"MUBE010"));
    }

    #[test]
    fn mube011_duplicate_attribute_names() {
        let mut b = Universe::builder();
        // Normalization collapses whitespace/case: these collide.
        b.add_source(SourceSpec::new("s", Schema::new(["Title", "  title "])).cardinality(5));
        let u = b.build().unwrap();
        let report = Analyzer::new(&u).run();
        assert_eq!(codes(&report), vec!["MUBE011"]);
        assert_eq!(report.diagnostics()[0].attrs, vec![a(0, 0), a(0, 1)]);
    }

    #[test]
    fn mube012_zero_cardinality() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("empty", Schema::new(["x"])));
        b.add_source(SourceSpec::new("full", Schema::new(["x"])).cardinality(10));
        let u = b.build().unwrap();
        let report = Analyzer::new(&u).run();
        assert_eq!(codes(&report), vec!["MUBE012"]);
        assert_eq!(report.diagnostics()[0].sources, vec![SourceId(0)]);
    }

    #[test]
    fn mube013_duplicate_source_names() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("twin", Schema::new(["x"])).cardinality(1));
        b.add_source(SourceSpec::new("twin", Schema::new(["y"])).cardinality(1));
        let u = b.build().unwrap();
        let report = Analyzer::new(&u).run();
        assert_eq!(codes(&report), vec!["MUBE013"]);
        assert_eq!(
            report.diagnostics()[0].sources,
            vec![SourceId(0), SourceId(1)]
        );
    }

    #[test]
    fn mube016_near_duplicate_source_names() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("Movie DB", Schema::new(["title"])).cardinality(1));
        b.add_source(SourceSpec::new("movie_db", Schema::new(["name"])).cardinality(1));
        let u = b.build().unwrap();
        let report = Analyzer::new(&u).run();
        assert_eq!(
            codes(&report),
            vec!["MUBE016"],
            "{:?}",
            report.diagnostics()
        );
        let d = &report.diagnostics()[0];
        assert_eq!(d.sources, vec![SourceId(0), SourceId(1)]);
        assert!(d.message.contains("moviedb"), "{}", d.message);
        assert!(!report.has_errors(), "suspicious but not infeasible");
    }

    #[test]
    fn mube016_ignores_distinct_numbered_sites() {
        // Synthetic catalogs name sources site0001, site0002, ... — those
        // normalize to distinct keys and must not warn.
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("site0001", Schema::new(["x"])).cardinality(1));
        b.add_source(SourceSpec::new("site0002", Schema::new(["x"])).cardinality(1));
        let u = b.build().unwrap();
        assert!(Analyzer::new(&u).run().is_clean());
    }

    #[test]
    fn mube016_exact_duplicates_stay_mube013() {
        // Identical raw spellings are the MUBE013 exact-duplicate case;
        // MUBE016 reports only genuinely different spellings.
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("twin", Schema::new(["x"])).cardinality(1));
        b.add_source(SourceSpec::new("twin", Schema::new(["y"])).cardinality(1));
        let u = b.build().unwrap();
        assert_eq!(codes(&Analyzer::new(&u).run()), vec!["MUBE013"]);
    }

    #[test]
    fn mube017_unpruned_large_catalog() {
        let u = universe(); // 3 sources
        let report = Analyzer::new(&u).scale_threshold(2).run();
        assert_eq!(
            codes(&report),
            vec!["MUBE017"],
            "{:?}",
            report.diagnostics()
        );
        assert!(!report.has_errors(), "slow but not infeasible");
        let d = &report.diagnostics()[0];
        assert!(d.message.contains("3 sources"), "{}", d.message);
        assert!(d.message.contains("threshold of 2"), "{}", d.message);
    }

    #[test]
    fn mube017_suppressed_by_pruning_or_threshold() {
        let u = universe();
        // Pruning front end active: the size is fine.
        let report = Analyzer::new(&u)
            .scale_threshold(2)
            .pruning_enabled(true)
            .run();
        assert!(report.is_clean(), "{:?}", report.diagnostics());
        // Catalog at or below the threshold: fine.
        let report = Analyzer::new(&u).scale_threshold(3).run();
        assert!(report.is_clean(), "{:?}", report.diagnostics());
        // No threshold configured: never fires.
        let report = Analyzer::new(&u).run();
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn mube016_matches_shared_canonical_key() {
        // Regression: MUBE016 and the mube-scale LSH blocking front end both
        // key on mube_core::canonical_name_key. If MUBE016 groups two names,
        // the shared helper must map them to one key, and vice versa.
        let names = ["Movie DB", "movie_db", "MOVIE-DB", "film.db", "site0001"];
        let mut b = Universe::builder();
        for n in names {
            b.add_source(SourceSpec::new(n, Schema::new(["x"])).cardinality(1));
        }
        let u = b.build().unwrap();
        let report = Analyzer::new(&u).run();
        let grouped: Vec<SourceId> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::NearDuplicateSourceNames)
            .flat_map(|d| d.sources.iter().copied())
            .collect();
        let expected: Vec<SourceId> = u
            .sources()
            .filter(|s| {
                let key = mube_core::canonical_name_key(s.name());
                u.sources()
                    .filter(|t| mube_core::canonical_name_key(t.name()) == key)
                    .count()
                    > 1
            })
            .map(mube_core::Source::id)
            .collect();
        assert_eq!(grouped, expected);
        assert_eq!(grouped, vec![SourceId(0), SourceId(1), SourceId(2)]);
    }

    #[test]
    fn mube014_isolated_source() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("x", Schema::new(["title"])).cardinality(1));
        b.add_source(SourceSpec::new("y", Schema::new(["title"])).cardinality(1));
        b.add_source(SourceSpec::new("z", Schema::new(["zzzzzz"])).cardinality(1));
        let u = b.build().unwrap();
        let c = Constraints::with_max_sources(3);
        let measure = JaccardNGram::trigram();
        let report = Analyzer::new(&u).constraints(&c).similarity(&measure).run();
        let isolated: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::IsolatedSource)
            .collect();
        assert_eq!(isolated.len(), 1, "{:?}", report.diagnostics());
        assert_eq!(isolated[0].sources, vec![SourceId(2)]);
    }

    #[test]
    fn error_free_report_admits_a_solution() {
        // The promise behind severities: a clean (error-free) audit of a
        // constraint set that validates means the problem constructs and a
        // solver can find a feasible solution.
        use mube_core::matchop::IdentityMatcher;
        use mube_core::problem::Problem;
        use mube_core::qefs::data_only_qefs;
        use mube_core::validate::SolutionValidator;
        use std::sync::Arc;

        let u = Arc::new(universe());
        let c = Constraints::with_max_sources(2).beta(1);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert!(!report.has_errors());
        let p = Problem::new(
            Arc::clone(&u),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            c,
        )
        .unwrap();
        let sol = p.solve(&mube_opt::TabuSearch::default(), 11).unwrap();
        assert!(SolutionValidator::for_problem(&p).check(&sol).is_empty());
    }

    #[test]
    fn every_error_code_fails_problem_construction() {
        // Error severity claims Problem::new (or solving) must fail; check
        // the constraint-shaped ones actually do.
        use mube_core::matchop::IdentityMatcher;
        use mube_core::problem::Problem;
        use mube_core::qefs::data_only_qefs;
        use std::sync::Arc;

        let u = Arc::new(universe());
        let broken = [
            Constraints::with_max_sources(1)
                .require_source(SourceId(0))
                .require_source(SourceId(1)),
            Constraints::with_max_sources(3).require_source(SourceId(42)),
            Constraints {
                theta: 1.5,
                ..Constraints::with_max_sources(3)
            },
            Constraints {
                max_sources: 0,
                ..Constraints::with_max_sources(1)
            },
        ];
        for c in broken {
            let report = Analyzer::new(&u).constraints(&c).run();
            assert!(report.has_errors(), "{c:?}");
            assert!(
                Problem::new(
                    Arc::clone(&u),
                    Arc::new(IdentityMatcher),
                    data_only_qefs(),
                    c.clone(),
                )
                .is_err(),
                "{c:?}"
            );
        }
    }

    #[test]
    fn report_accessors_and_display() {
        let u = universe();
        let c = Constraints::with_max_sources(1)
            .require_source(SourceId(0))
            .require_source(SourceId(1))
            .beta(9);
        let report = Analyzer::new(&u).constraints(&c).run();
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
        let text = report.display(&u);
        assert!(text.contains("error[MUBE001]"), "{text}");
        assert!(text.contains("warning[MUBE005]"), "{text}");
        assert!(text.contains("1 error, 1 warning"), "{text}");
    }

    #[test]
    fn json_output_is_well_formed() {
        let u = universe();
        let c = Constraints::with_max_sources(1)
            .require_source(SourceId(0))
            .require_source(SourceId(1));
        let report = Analyzer::new(&u).constraints(&c).run();
        let json = report.to_json(&u);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"code\":\"MUBE001\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"alpha\""), "{json}");
        assert_eq!(Analyzer::new(&u).run().to_json(&u), "[]");
    }

    #[test]
    fn json_escapes_special_characters() {
        // Escaping lives in the shared writer now; the report must keep
        // using it for messages with embedded quotes/newlines.
        let mut u = Universe::builder();
        u.add_source(SourceSpec::new("alpha", Schema::new(["x"])));
        let u = u.build().unwrap();
        let mut report = Analyzer::new(&u).run();
        report.push(Diagnostic::new(
            DiagCode::UnknownRequiredSource,
            "quote \" backslash \\ newline \n done".to_string(),
        ));
        let json = report.to_json(&u);
        assert!(
            json.contains("quote \\\" backslash \\\\ newline \\n done"),
            "{json}"
        );
    }
}

//! Property tests: every solver, on arbitrary random objectives, returns
//! structurally feasible solutions and respects its budget.

use mube_opt::{
    ParticleSwarm, SimulatedAnnealing, StochasticLocalSearch, SubsetObjective, SubsetSolver,
    TabuSearch,
};
use proptest::prelude::*;

/// A random linear objective with interactions: value per element plus a
/// pairwise bonus/penalty between consecutive elements.
#[derive(Debug)]
struct RandomObjective {
    values: Vec<f64>,
    pair_bonus: Vec<f64>,
    max: usize,
    required: Vec<usize>,
}

impl SubsetObjective for RandomObjective {
    fn universe_size(&self) -> usize {
        self.values.len()
    }
    fn max_selected(&self) -> usize {
        self.max
    }
    fn required(&self) -> Vec<usize> {
        self.required.clone()
    }
    fn score(&self, selected: &[usize]) -> f64 {
        let base: f64 = selected.iter().map(|&i| self.values[i]).sum();
        let bonus: f64 = selected
            .windows(2)
            .filter(|w| w[1] == w[0] + 1)
            .map(|w| self.pair_bonus[w[0]])
            .sum();
        base + bonus
    }
}

fn objective_strategy() -> impl Strategy<Value = RandomObjective> {
    (4usize..24, 1usize..6).prop_flat_map(|(n, max)| {
        (
            prop::collection::vec(-1.0f64..1.0, n),
            prop::collection::vec(-0.5f64..0.5, n),
            prop::collection::vec(0usize..n, 0..max.min(n)),
        )
            .prop_map(move |(values, pair_bonus, mut required)| {
                required.sort_unstable();
                required.dedup();
                RandomObjective {
                    values,
                    pair_bonus,
                    max: max.max(required.len()),
                    required,
                }
            })
    })
}

fn solvers() -> Vec<Box<dyn SubsetSolver>> {
    vec![
        Box::new(TabuSearch {
            max_evaluations: 400,
            ..TabuSearch::default()
        }),
        Box::new(StochasticLocalSearch {
            max_evaluations: 400,
            ..Default::default()
        }),
        Box::new(SimulatedAnnealing {
            max_evaluations: 400,
            ..Default::default()
        }),
        Box::new(ParticleSwarm {
            max_evaluations: 400,
            ..Default::default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_solvers_return_feasible_solutions(obj in objective_strategy(), seed in any::<u64>()) {
        for solver in solvers() {
            let r = solver.solve(&obj, seed);
            prop_assert!(!r.selected.is_empty(), "{} returned empty", solver.name());
            prop_assert!(
                r.selected.len() <= obj.max_selected(),
                "{} overflowed max_selected", solver.name()
            );
            prop_assert!(
                r.selected.windows(2).all(|w| w[0] < w[1]),
                "{} result not sorted/deduped", solver.name()
            );
            prop_assert!(
                r.selected.iter().all(|&i| i < obj.universe_size()),
                "{} selected out-of-range element", solver.name()
            );
            for req in obj.required() {
                prop_assert!(
                    r.selected.contains(&req),
                    "{} dropped required element {req}", solver.name()
                );
            }
            prop_assert!(r.evaluations <= 400 + 64, "{} blew its budget", solver.name());
            // The reported score matches re-evaluating the reported subset.
            prop_assert!((r.score - obj.score(&r.selected)).abs() < 1e-12);
        }
    }

    #[test]
    fn solvers_are_deterministic(obj in objective_strategy(), seed in any::<u64>()) {
        for solver in solvers() {
            let a = solver.solve(&obj, seed);
            let b = solver.solve(&obj, seed);
            prop_assert_eq!(a, b, "{} is nondeterministic", solver.name());
        }
    }

    /// The greedy-flavoured solvers (tabu's best-of-candidates step, SLS's
    /// hill climbing) must find a solution at least as good as the required
    /// set alone — an easily reachable state for them. Annealing and PSO
    /// give no such guarantee at tiny budgets (they may never visit the
    /// required-only state), so they are excluded here; their feasibility
    /// is covered by `all_solvers_return_feasible_solutions`.
    #[test]
    fn hill_climbers_beat_trivial_baseline(obj in objective_strategy(), seed in any::<u64>()) {
        let mut required = obj.required();
        required.sort_unstable();
        required.dedup();
        let baseline = obj.score(required.to_vec().as_slice());
        let climbers: Vec<Box<dyn SubsetSolver>> = vec![
            Box::new(TabuSearch { max_evaluations: 400, ..TabuSearch::default() }),
            Box::new(StochasticLocalSearch { max_evaluations: 400, ..Default::default() }),
        ];
        for solver in climbers {
            let r = solver.solve(&obj, seed);
            // Only comparable when the required set alone is feasible.
            if !required.is_empty() {
                prop_assert!(
                    r.score >= baseline - 1e-9,
                    "{}: {} < baseline {}", solver.name(), r.score, baseline
                );
            }
        }
    }
}

//! Constrained subset-selection metaheuristics for `µBE`.
//!
//! `µBE`'s source-selection problem is a non-linear constrained combinatorial
//! optimization: pick a subset of at most `m` elements from a universe of
//! `N`, always keeping a required core, to maximize an arbitrary black-box
//! objective. The paper (§6) evaluated stochastic local search, particle
//! swarm optimization, constrained simulated annealing, and tabu search, and
//! found tabu search the most robust — this crate implements all four behind
//! one [`SubsetSolver`] interface so the comparison can be reproduced.
//!
//! The crate is deliberately independent of the `µBE` data model: anything
//! implementing [`SubsetObjective`] can be solved, which is also how the
//! algorithms are unit-tested on transparent toy objectives.
//!
//! # Example
//!
//! ```
//! use mube_opt::{SubsetObjective, SubsetSolver, TabuSearch};
//!
//! /// Maximize the sum of chosen values, at most 3 of 10 items.
//! struct TopK(Vec<f64>);
//! impl SubsetObjective for TopK {
//!     fn universe_size(&self) -> usize { self.0.len() }
//!     fn max_selected(&self) -> usize { 3 }
//!     fn required(&self) -> Vec<usize> { vec![] }
//!     fn score(&self, selected: &[usize]) -> f64 {
//!         selected.iter().map(|&i| self.0[i]).sum()
//!     }
//! }
//!
//! let obj = TopK(vec![1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0, 5.0, 0.0]);
//! let result = TabuSearch::default().solve(&obj, 42);
//! assert_eq!(result.selected, vec![1, 3, 5]); // the three largest values
//! ```

pub mod anneal;
pub mod cancel;
pub mod hierarchy;
pub mod portfolio;
pub mod problem;
pub mod pso;
pub mod sls;
pub mod tabu;

pub use anneal::SimulatedAnnealing;
pub use cancel::{CancelClock, CancelToken, ManualClock, MonotonicClock};
pub use hierarchy::{solve_two_level, RestrictedObjective, TwoLevelResult};
pub use portfolio::{
    budgeted_member, default_member, member_panics_total, parse_portfolio_spec, MemberRun,
    Portfolio, PortfolioRun,
};
pub use problem::{SolveResult, SubsetObjective, SubsetSolver};
pub use pso::ParticleSwarm;
pub use sls::StochasticLocalSearch;
pub use tabu::{InitStrategy, TabuSearch};

//! The subset-selection problem interface and shared solver utilities.

use crate::cancel::CancelToken;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;

/// A black-box objective over subsets of `0..universe_size()`.
///
/// Implementations may return any finite `f64`; higher is better. Infeasible
/// regions should be expressed as low (e.g. negative) scores so solvers can
/// traverse them; the required-elements and size constraints are enforced
/// structurally by the solvers and never violated in returned solutions.
pub trait SubsetObjective: Sync {
    /// Number of selectable elements; candidates are indices `0..n`.
    fn universe_size(&self) -> usize;

    /// Maximum number of elements a solution may contain (`m`).
    fn max_selected(&self) -> usize;

    /// Elements that must be present in every solution. These are
    /// *permanently tabu for removal*, in the paper's terms.
    fn required(&self) -> Vec<usize>;

    /// Scores a candidate subset. `selected` is sorted and duplicate-free.
    fn score(&self, selected: &[usize]) -> f64;

    /// Returns a worker-local view of this objective, if one exists.
    ///
    /// A portfolio runs several solvers concurrently against one objective;
    /// an implementation that keeps incremental per-candidate state (e.g.
    /// `mube_core`'s delta evaluator) can hand each worker its own view so
    /// that state is never contended across threads. Views must score
    /// *identically* to the parent objective — callers treat them as pure
    /// performance artifacts. The default has no such state and returns
    /// `None`, which makes workers share `self` directly.
    fn worker_view(&self) -> Option<Box<dyn SubsetObjective + '_>> {
        None
    }
}

/// Outcome of one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The best subset found (sorted).
    pub selected: Vec<usize>,
    /// Its score.
    pub score: f64,
    /// How many times the objective was evaluated.
    pub evaluations: u64,
    /// How many algorithm iterations ran.
    pub iterations: u64,
    /// True if the run was cut short by a [`CancelToken`] (deadline or
    /// explicit cancel) rather than finishing its budget; `selected` is then
    /// the best incumbent found up to that point (anytime semantics).
    pub timed_out: bool,
}

/// A subset-selection solver.
///
/// `Send + Sync` is a supertrait so a boxed solver (and therefore a whole
/// `mube_core::Session`) can move between threads — the `mube-serve` worker
/// pool solves many sessions concurrently. Every solver in this crate is a
/// plain configuration struct, so the bound costs implementors nothing.
pub trait SubsetSolver: Send + Sync {
    /// Human-readable algorithm name, e.g. `"tabu"`.
    fn name(&self) -> &str;

    /// Runs the solver with a deterministic RNG seed.
    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult;

    /// Runs the solver warm-started from a previous solution, for solvers
    /// that support it (tabu search); the default ignores the hint and
    /// solves cold.
    fn solve_from(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        _warm: &[usize],
    ) -> SolveResult {
        self.solve(objective, seed)
    }

    /// Like [`SubsetSolver::solve_from`], but additionally *bounds the
    /// drift*: solvers that support a trust region (tabu search) return a
    /// solution whose Hamming distance from the (repaired) warm start is at
    /// most `radius`. The default ignores the radius and warm-starts plainly.
    fn solve_within(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        _radius: usize,
    ) -> SolveResult {
        self.solve_from(objective, seed, warm)
    }

    /// Like [`SubsetSolver::solve`], but polls `cancel` between evaluations
    /// and returns the best-so-far incumbent (flagged
    /// [`SolveResult::timed_out`]) when it fires. The default ignores the
    /// token so third-party solvers keep working unmodified; every solver in
    /// this crate overrides it.
    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        let _ = cancel;
        self.solve(objective, seed)
    }

    /// Cancellable form of [`SubsetSolver::solve_from`].
    fn solve_from_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        cancel: &CancelToken,
    ) -> SolveResult {
        let _ = cancel;
        self.solve_from(objective, seed, warm)
    }

    /// Cancellable form of [`SubsetSolver::solve_within`].
    fn solve_within_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
        cancel: &CancelToken,
    ) -> SolveResult {
        let _ = cancel;
        self.solve_within(objective, seed, warm, radius)
    }
}

/// Tracks the incumbent (best feasible solution seen) and evaluation counts
/// for a solver run. All four algorithms funnel their objective calls
/// through this so budgets and statistics are handled uniformly.
pub(crate) struct Incumbent<'a> {
    objective: &'a dyn SubsetObjective,
    pub best: Vec<usize>,
    pub best_score: f64,
    pub evaluations: u64,
    pub max_evaluations: u64,
    /// Capacity of the elite archive (0 = disabled).
    elite_capacity: usize,
    /// Best distinct candidates seen, sorted best-first.
    elites: Vec<(f64, Vec<usize>)>,
    /// Cooperative cancellation handle, polled by `exhausted`.
    cancel: CancelToken,
    /// Set once `cancel` fires; copied into the final [`SolveResult`].
    pub timed_out: bool,
}

impl<'a> Incumbent<'a> {
    pub fn new(objective: &'a dyn SubsetObjective, max_evaluations: u64) -> Self {
        Incumbent {
            objective,
            best: Vec::new(),
            best_score: f64::NEG_INFINITY,
            evaluations: 0,
            max_evaluations,
            elite_capacity: 0,
            elites: Vec::new(),
            cancel: CancelToken::none(),
            timed_out: false,
        }
    }

    /// Attaches a cancellation token, polled on every `exhausted` check.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables the elite archive: the `capacity` best *distinct* candidates
    /// seen during the run are retained.
    pub fn with_elites(mut self, capacity: usize) -> Self {
        self.elite_capacity = capacity;
        self
    }

    /// Mutable access to the elite archive (best first).
    pub fn elites_mut(&mut self) -> &mut Vec<(f64, Vec<usize>)> {
        &mut self.elites
    }

    /// True once the evaluation budget is spent or the cancel token fired.
    ///
    /// Cancellation only takes effect after at least one evaluation: every
    /// solver scores an initial candidate before its first `exhausted`
    /// check, so even a zero-budget deadline yields a non-empty, feasible
    /// incumbent (anytime guarantee).
    pub fn exhausted(&mut self) -> bool {
        if self.evaluations >= self.max_evaluations {
            return true;
        }
        if self.evaluations > 0 && self.cancel.is_cancelled() {
            self.timed_out = true;
            return true;
        }
        false
    }

    /// Scores a candidate, updating the incumbent (and the elite archive,
    /// when enabled) if it improves.
    pub fn score(&mut self, candidate: &[usize]) -> f64 {
        self.evaluations += 1;
        let s = self.objective.score(candidate);
        if s > self.best_score {
            self.best_score = s;
            self.best = candidate.to_vec();
        }
        if self.elite_capacity > 0
            && self
                .elites
                .last()
                .is_none_or(|(worst, _)| s > *worst || self.elites.len() < self.elite_capacity)
            && !self.elites.iter().any(|(_, sel)| sel == candidate)
        {
            let pos = self.elites.partition_point(|(score, _)| *score >= s);
            self.elites.insert(pos, (s, candidate.to_vec()));
            self.elites.truncate(self.elite_capacity);
        }
        s
    }

    pub fn into_result(self, iterations: u64) -> SolveResult {
        SolveResult {
            selected: self.best,
            score: self.best_score,
            evaluations: self.evaluations,
            iterations,
            timed_out: self.timed_out,
        }
    }
}

/// Debug-build audit of a finished [`SolveResult`] against the structural
/// constraints every solver must uphold: the selection is sorted and
/// duplicate-free, within the universe, within the size bound, and contains
/// every required element. All four solvers call this just before
/// returning; release builds compile it away.
pub(crate) fn debug_validate_result(objective: &dyn SubsetObjective, result: &SolveResult) {
    if !cfg!(debug_assertions) {
        return;
    }
    let sel = &result.selected;
    debug_assert!(
        sel.windows(2).all(|w| w[0] < w[1]),
        "solver returned an unsorted or duplicated selection: {sel:?}"
    );
    debug_assert!(
        sel.iter().all(|&i| i < objective.universe_size()),
        "solver selected outside the universe (size {}): {sel:?}",
        objective.universe_size()
    );
    debug_assert!(
        sel.len() <= objective.max_selected(),
        "solver selected {} elements, above the bound {}",
        sel.len(),
        objective.max_selected()
    );
    for required in objective.required() {
        debug_assert!(
            sel.binary_search(&required).is_ok(),
            "solver dropped required element {required}: {sel:?}"
        );
    }
}

/// Builds a random feasible starting subset: the required elements plus a
/// random fill up to `max_selected`.
pub(crate) fn random_feasible<R: Rng>(objective: &dyn SubsetObjective, rng: &mut R) -> Vec<usize> {
    let n = objective.universe_size();
    let mut selected = objective.required();
    selected.sort_unstable();
    selected.dedup();
    let mut pool: Vec<usize> = (0..n).filter(|i| !selected.contains(i)).collect();
    pool.shuffle(rng);
    let want = objective.max_selected().min(n);
    for i in pool {
        if selected.len() >= want {
            break;
        }
        selected.push(i);
    }
    selected.sort_unstable();
    selected
}

/// Inserts `x` into a sorted vec if absent; returns true if inserted.
pub(crate) fn sorted_insert(v: &mut Vec<usize>, x: usize) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(pos) => {
            v.insert(pos, x);
            true
        }
    }
}

/// Removes `x` from a sorted vec if present; returns true if removed.
pub(crate) fn sorted_remove(v: &mut Vec<usize>, x: usize) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

/// A single-element move in the subset space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Move {
    /// Add an unselected element.
    Add(usize),
    /// Drop a selected, non-required element.
    Remove(usize),
    /// Swap a selected, non-required element for an unselected one.
    Swap { out: usize, r#in: usize },
}

impl Move {
    /// Applies the move to a sorted selection, returning the new selection.
    pub fn apply(self, selection: &[usize]) -> Vec<usize> {
        let mut out = selection.to_vec();
        match self {
            Move::Add(i) => {
                sorted_insert(&mut out, i);
            }
            Move::Remove(i) => {
                sorted_remove(&mut out, i);
            }
            Move::Swap { out: o, r#in: i } => {
                sorted_remove(&mut out, o);
                sorted_insert(&mut out, i);
            }
        }
        out
    }

    /// The elements whose membership this move flips.
    pub fn touched(self) -> (usize, Option<usize>) {
        match self {
            Move::Add(i) | Move::Remove(i) => (i, None),
            Move::Swap { out, r#in } => (out, Some(r#in)),
        }
    }
}

/// Samples a random legal move for the current selection, or `None` if no
/// move exists (e.g. everything is required and the universe is exhausted).
pub(crate) fn random_move<R: Rng>(
    objective: &dyn SubsetObjective,
    selection: &[usize],
    required: &[usize],
    rng: &mut R,
) -> Option<Move> {
    let n = objective.universe_size();
    let removable: Vec<usize> = selection
        .iter()
        .copied()
        .filter(|i| !required.contains(i))
        .collect();
    let addable: Vec<usize> = (0..n)
        .filter(|i| selection.binary_search(i).is_err())
        .collect();
    let can_add = !addable.is_empty() && selection.len() < objective.max_selected();
    // Keep at least one element selected so the objective always sees a
    // non-trivial candidate.
    let can_remove = removable.len() > 1 || (removable.len() == 1 && selection.len() > 1);
    let can_swap = !removable.is_empty() && !addable.is_empty();

    let mut kinds = Vec::with_capacity(3);
    if can_add {
        kinds.push(0);
    }
    if can_remove {
        kinds.push(1);
    }
    if can_swap {
        kinds.push(2);
    }
    let kind = *kinds.as_slice().choose(rng)?;
    Some(match kind {
        0 => Move::Add(*addable.as_slice().choose(rng).expect("non-empty")),
        1 => Move::Remove(*removable.as_slice().choose(rng).expect("non-empty")),
        _ => Move::Swap {
            out: *removable.as_slice().choose(rng).expect("non-empty"),
            r#in: *addable.as_slice().choose(rng).expect("non-empty"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) struct Toy {
        pub values: Vec<f64>,
        pub max: usize,
        pub required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn random_feasible_respects_constraints() {
        let toy = Toy {
            values: vec![1.0; 10],
            max: 4,
            required: vec![7, 2],
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = random_feasible(&toy, &mut rng);
            assert!(s.len() <= 4);
            assert!(s.contains(&7) && s.contains(&2));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    #[test]
    fn moves_apply_correctly() {
        let sel = vec![1, 3, 5];
        assert_eq!(Move::Add(4).apply(&sel), vec![1, 3, 4, 5]);
        assert_eq!(Move::Remove(3).apply(&sel), vec![1, 5]);
        assert_eq!(Move::Swap { out: 5, r#in: 0 }.apply(&sel), vec![0, 1, 3]);
    }

    #[test]
    fn random_move_never_removes_required() {
        let toy = Toy {
            values: vec![1.0; 6],
            max: 3,
            required: vec![0],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let sel = vec![0, 1, 2];
        for _ in 0..200 {
            let mv = random_move(&toy, &sel, &[0], &mut rng).unwrap();
            let next = mv.apply(&sel);
            assert!(next.contains(&0), "move {mv:?} removed a required element");
        }
    }

    #[test]
    fn random_move_respects_max() {
        let toy = Toy {
            values: vec![1.0; 6],
            max: 3,
            required: vec![],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let sel = vec![0, 1, 2]; // already at max
        for _ in 0..200 {
            let mv = random_move(&toy, &sel, &[], &mut rng).unwrap();
            assert!(mv.apply(&sel).len() <= 3);
        }
    }

    #[test]
    fn incumbent_tracks_best() {
        let toy = Toy {
            values: vec![1.0, 2.0, 3.0],
            max: 2,
            required: vec![],
        };
        let mut inc = Incumbent::new(&toy, 100);
        assert_eq!(inc.score(&[0]), 1.0);
        assert_eq!(inc.score(&[1, 2]), 5.0);
        assert_eq!(inc.score(&[0, 1]), 3.0);
        assert_eq!(inc.best, vec![1, 2]);
        assert_eq!(inc.best_score, 5.0);
        assert_eq!(inc.evaluations, 3);
    }

    #[test]
    fn incumbent_budget() {
        let toy = Toy {
            values: vec![1.0],
            max: 1,
            required: vec![],
        };
        let mut inc = Incumbent::new(&toy, 2);
        assert!(!inc.exhausted());
        inc.score(&[0]);
        inc.score(&[0]);
        assert!(inc.exhausted());
        assert!(!inc.timed_out, "budget exhaustion is not a timeout");
    }

    #[test]
    fn incumbent_cancellation_waits_for_first_evaluation() {
        let toy = Toy {
            values: vec![1.0, 2.0],
            max: 1,
            required: vec![],
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut inc = Incumbent::new(&toy, 100).with_cancel(cancel);
        // Pre-cancelled token: the first exhausted check must still let one
        // evaluation through so the incumbent is never empty.
        assert!(!inc.exhausted());
        inc.score(&[1]);
        assert!(inc.exhausted());
        assert!(inc.timed_out);
        let result = inc.into_result(1);
        assert_eq!(result.selected, vec![1]);
        assert!(result.timed_out);
    }
}

//! Stochastic local search — the simplest baseline the paper compared
//! against.
//!
//! Repeated restarts of a noisy hill-climber: from a random feasible start,
//! sample a random single-element move; accept it if it improves the current
//! score, or with probability `noise` even if it does not (the standard
//! WalkSAT-style escape from local optima). The best solution across all
//! restarts is returned.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::problem::{
    random_feasible, random_move, Incumbent, SolveResult, SubsetObjective, SubsetSolver,
};

/// Stochastic local search configuration.
#[derive(Debug, Clone)]
pub struct StochasticLocalSearch {
    /// Number of independent restarts.
    pub restarts: u32,
    /// Steps per restart.
    pub steps_per_restart: u64,
    /// Probability of accepting a non-improving move.
    pub noise: f64,
    /// Hard cap on objective evaluations (shared across restarts).
    pub max_evaluations: u64,
}

impl Default for StochasticLocalSearch {
    fn default() -> Self {
        StochasticLocalSearch {
            restarts: 8,
            steps_per_restart: 2_500,
            noise: 0.1,
            max_evaluations: 20_000,
        }
    }
}

impl SubsetSolver for StochasticLocalSearch {
    fn name(&self) -> &str {
        "sls"
    }

    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult {
        self.solve_cancel(objective, seed, &CancelToken::none())
    }

    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let required = {
            let mut r = objective.required();
            r.sort_unstable();
            r.dedup();
            r
        };
        let mut incumbent =
            Incumbent::new(objective, self.max_evaluations).with_cancel(cancel.clone());
        let mut iterations = 0u64;

        'restarts: for _ in 0..self.restarts {
            if incumbent.exhausted() {
                break;
            }
            let mut current = random_feasible(objective, &mut rng);
            let mut current_score = incumbent.score(&current);
            for _ in 0..self.steps_per_restart {
                if incumbent.exhausted() {
                    break 'restarts;
                }
                iterations += 1;
                let Some(mv) = random_move(objective, &current, &required, &mut rng) else {
                    break;
                };
                let candidate = mv.apply(&current);
                let s = incumbent.score(&candidate);
                if s > current_score || rng.random_bool(self.noise) {
                    current = candidate;
                    current_score = s;
                }
            }
        }
        let result = incumbent.into_result(iterations);
        crate::problem::debug_validate_result(objective, &result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn finds_good_solutions_on_linear_objective() {
        let values: Vec<f64> = (0..30).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 4,
            required: vec![],
        };
        let r = StochasticLocalSearch::default().solve(&toy, 5);
        // Optimum is 26+27+28+29 = 110; SLS should get close.
        assert!(r.score >= 100.0, "score = {}", r.score);
    }

    #[test]
    fn keeps_required() {
        let toy = Toy {
            values: vec![0.0, 1.0, 2.0, 3.0],
            max: 2,
            required: vec![0],
        };
        let r = StochasticLocalSearch::default().solve(&toy, 2);
        assert!(r.selected.contains(&0));
        assert!(r.selected.len() <= 2);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let toy = Toy {
            values: vec![1.0; 20],
            max: 5,
            required: vec![],
        };
        let cfg = StochasticLocalSearch {
            max_evaluations: 50,
            ..Default::default()
        };
        let a = cfg.solve(&toy, 9);
        let b = cfg.solve(&toy, 9);
        assert_eq!(a, b);
        assert!(a.evaluations <= 50);
    }
}

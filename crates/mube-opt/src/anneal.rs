//! Constrained simulated annealing baseline.
//!
//! Classic Metropolis acceptance over the same add/remove/swap move space
//! the other solvers use: a worsening move of magnitude `Δ` is accepted with
//! probability `exp(Δ / T)`, and the temperature `T` decays geometrically.
//! Constraints are handled structurally ("constrained" SA): moves that would
//! drop a required element or exceed the size bound are never generated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::problem::{
    random_feasible, random_move, Incumbent, SolveResult, SubsetObjective, SubsetSolver,
};

/// Simulated annealing configuration.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Starting temperature, in objective units.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step (just below 1).
    pub cooling: f64,
    /// Temperature at which the run stops.
    pub min_temperature: f64,
    /// Hard cap on objective evaluations.
    pub max_evaluations: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temperature: 0.05,
            cooling: 0.999,
            min_temperature: 1e-5,
            max_evaluations: 20_000,
        }
    }
}

impl SubsetSolver for SimulatedAnnealing {
    fn name(&self) -> &str {
        "annealing"
    }

    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult {
        self.solve_cancel(objective, seed, &CancelToken::none())
    }

    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let required = {
            let mut r = objective.required();
            r.sort_unstable();
            r.dedup();
            r
        };
        let mut incumbent =
            Incumbent::new(objective, self.max_evaluations).with_cancel(cancel.clone());
        let mut current = random_feasible(objective, &mut rng);
        let mut current_score = incumbent.score(&current);
        let mut temperature = self.initial_temperature;
        let mut iterations = 0u64;

        while temperature > self.min_temperature && !incumbent.exhausted() {
            iterations += 1;
            if let Some(mv) = random_move(objective, &current, &required, &mut rng) {
                let candidate = mv.apply(&current);
                let s = incumbent.score(&candidate);
                let delta = s - current_score;
                if delta >= 0.0 || rng.random::<f64>() < (delta / temperature).exp() {
                    current = candidate;
                    current_score = s;
                }
            }
            temperature *= self.cooling;
        }
        let result = incumbent.into_result(iterations);
        crate::problem::debug_validate_result(objective, &result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            // Normalize into the usual [0,1]-ish range µBE produces.
            selected.iter().map(|&i| self.values[i]).sum::<f64>() / 100.0
        }
    }

    #[test]
    fn converges_on_linear_objective() {
        let values: Vec<f64> = (0..30).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 4,
            required: vec![],
        };
        let r = SimulatedAnnealing::default().solve(&toy, 3);
        // Optimum is 1.10.
        assert!(r.score >= 0.95, "score = {}", r.score);
    }

    #[test]
    fn keeps_required_and_size_bound() {
        let toy = Toy {
            values: vec![0.0, 5.0, 9.0, 1.0, 7.0],
            max: 3,
            required: vec![0, 3],
        };
        let r = SimulatedAnnealing::default().solve(&toy, 4);
        assert!(r.selected.contains(&0) && r.selected.contains(&3));
        assert!(r.selected.len() <= 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let toy = Toy {
            values: vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0],
            max: 2,
            required: vec![],
        };
        let a = SimulatedAnnealing::default().solve(&toy, 8);
        let b = SimulatedAnnealing::default().solve(&toy, 8);
        assert_eq!(a, b);
    }
}

//! Cooperative cancellation with optional deadlines for solver runs.
//!
//! A [`CancelToken`] is threaded through every solver and the portfolio so a
//! caller can bound a solve by wall-clock time (or cancel it explicitly) and
//! still receive the best incumbent found so far — *anytime* semantics. The
//! token is checked once per objective evaluation via
//! `Incumbent::exhausted`, so cancellation latency is one evaluation.
//!
//! Deadlines are expressed against an injectable [`CancelClock`] so tests can
//! drive time manually ([`ManualClock`]) while production uses the monotonic
//! [`MonotonicClock`]. A default token ([`CancelToken::none`]) carries no
//! state and costs one branch per check.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for deadline checks.
///
/// Implementations report nanoseconds elapsed since an arbitrary fixed
/// origin; only differences are meaningful. The trait exists so deadline
/// behaviour is testable without sleeping.
pub trait CancelClock: Send + Sync {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Production clock backed by [`std::time::Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            // lint-src: allow(MUBE101) — this *is* the injectable clock's
            // production implementation; everything else routes through it.
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelClock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturates after ~584 years of process uptime, which is fine.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Manually advanced clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock frozen at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let d = delta.as_nanos().min(u128::from(u64::MAX)) as u64;
        // ordering: single monotone counter; deadline checks tolerate a
        // stale read (they just cancel one poll later).
        self.nanos.fetch_add(d, Ordering::Relaxed);
    }
}

impl CancelClock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed) // ordering: see `advance`
    }
}

struct Inner {
    flag: AtomicBool,
    /// `(clock, deadline_nanos)`: cancelled once `clock.now_nanos()` reaches
    /// the threshold.
    deadline: Option<(Arc<dyn CancelClock>, u64)>,
}

/// A cloneable cancellation handle shared between a solve and its caller.
///
/// Cancellation is *cooperative*: solvers poll [`CancelToken::is_cancelled`]
/// between evaluations and unwind normally, returning their best-so-far
/// incumbent flagged `timed_out`. Cloning is cheap (an `Arc` bump); all
/// clones observe the same flag and deadline. The default token never
/// cancels and allocates nothing.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken::none"),
            Some(i) => f
                .debug_struct("CancelToken")
                // ordering: advisory snapshot for Debug output only.
                .field("cancelled", &i.flag.load(Ordering::Relaxed))
                .field("has_deadline", &i.deadline.is_some())
                .finish(),
        }
    }
}

impl CancelToken {
    /// A token that never cancels; zero-cost to check.
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A token with no deadline that cancels only when
    /// [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that auto-cancels `budget` from now on the monotonic
    /// wall clock (and can still be cancelled earlier by hand).
    pub fn after(budget: Duration) -> Self {
        Self::with_deadline(Arc::new(MonotonicClock::new()), budget)
    }

    /// A token that auto-cancels once `clock` has advanced `budget` past its
    /// current reading. The injectable clock makes deadline behaviour
    /// testable without sleeping.
    pub fn with_deadline(clock: Arc<dyn CancelClock>, budget: Duration) -> Self {
        let b = budget.as_nanos().min(u128::from(u64::MAX)) as u64;
        let deadline = clock.now_nanos().saturating_add(b);
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some((clock, deadline)),
            })),
        }
    }

    /// Requests cancellation. Idempotent; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            // ordering: one-way latch carrying no payload; solvers poll it
            // and only need the `true` to become visible eventually.
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has been cancelled or its deadline has passed.
    /// A passed deadline latches the flag so later checks skip the clock.
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        // ordering: polling the latch; see `cancel`.
        if inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some((clock, deadline)) = &inner.deadline {
            if clock.now_nanos() >= *deadline {
                // ordering: latching the already-passed deadline; see `cancel`.
                inner.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// True if this token can ever cancel (i.e. is not
    /// [`CancelToken::none`]).
    pub fn can_cancel(&self) -> bool {
        self.inner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.can_cancel());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_fires_on_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let t = CancelToken::with_deadline(clock.clone(), Duration::from_millis(10));
        assert!(!t.is_cancelled());
        clock.advance(Duration::from_millis(9));
        assert!(!t.is_cancelled());
        clock.advance(Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latches: rewinding is impossible, and the flag stays set.
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_budget_cancels_immediately() {
        let clock = Arc::new(ManualClock::new());
        let t = CancelToken::with_deadline(clock, Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}

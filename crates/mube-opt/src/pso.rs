//! Binary particle-swarm optimization baseline.
//!
//! The discrete PSO of Kennedy & Eberhart: each particle is a bit vector
//! over the universe with a real-valued velocity per bit. Velocities are
//! pulled toward the particle's personal best and the swarm's global best;
//! a bit is set with probability `sigmoid(velocity)`. After each position
//! update the particle is *repaired* into the feasible region: required
//! elements are forced in, and if more than `max_selected` bits are set, the
//! lowest-velocity extras are dropped.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::problem::{Incumbent, SolveResult, SubsetObjective, SubsetSolver};

/// Binary PSO configuration.
#[derive(Debug, Clone)]
pub struct ParticleSwarm {
    /// Number of particles.
    pub particles: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive coefficient `c1` (pull toward personal best).
    pub cognitive: f64,
    /// Social coefficient `c2` (pull toward global best).
    pub social: f64,
    /// Velocity clamp (|v| ≤ `v_max` keeps sigmoid out of saturation).
    pub v_max: f64,
    /// Maximum swarm generations.
    pub max_generations: u64,
    /// Hard cap on objective evaluations.
    pub max_evaluations: u64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            particles: 24,
            inertia: 0.72,
            cognitive: 1.5,
            social: 1.5,
            v_max: 4.0,
            max_generations: 200,
            max_evaluations: 20_000,
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

struct Particle {
    position: Vec<bool>,
    velocity: Vec<f64>,
    best_position: Vec<bool>,
    best_score: f64,
}

impl SubsetSolver for ParticleSwarm {
    fn name(&self) -> &str {
        "pso"
    }

    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult {
        self.solve_cancel(objective, seed, &CancelToken::none())
    }

    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = objective.universe_size();
        let m = objective.max_selected().min(n).max(1);
        let required = {
            let mut r = objective.required();
            r.sort_unstable();
            r.dedup();
            r
        };
        let mut incumbent =
            Incumbent::new(objective, self.max_evaluations).with_cancel(cancel.clone());

        // Initialize the swarm with random feasible positions.
        let mut swarm: Vec<Particle> = (0..self.particles)
            .map(|_| {
                let mut position = vec![false; n];
                for &r in &required {
                    position[r] = true;
                }
                let density = m as f64 / n as f64;
                for bit in position.iter_mut() {
                    if !*bit && rng.random::<f64>() < density {
                        *bit = true;
                    }
                }
                let velocity: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
                let mut p = Particle {
                    position,
                    velocity,
                    best_position: Vec::new(),
                    best_score: f64::NEG_INFINITY,
                };
                repair(&mut p, &required, m, &mut rng);
                p
            })
            .collect();

        let mut global_best: Vec<bool> = vec![false; n];
        let mut global_best_score = f64::NEG_INFINITY;
        let mut generations = 0u64;

        'outer: for _ in 0..self.max_generations {
            generations += 1;
            for p in &mut swarm {
                if incumbent.exhausted() {
                    break 'outer;
                }
                let selected = to_indices(&p.position);
                let s = incumbent.score(&selected);
                if s > p.best_score {
                    p.best_score = s;
                    p.best_position = p.position.clone();
                }
                if s > global_best_score {
                    global_best_score = s;
                    global_best = p.position.clone();
                }
            }
            for p in &mut swarm {
                for (i, &gb_bit) in global_best.iter().enumerate() {
                    let x = if p.position[i] { 1.0 } else { 0.0 };
                    let pb = if p.best_position.get(i).copied().unwrap_or(false) {
                        1.0
                    } else {
                        0.0
                    };
                    let gb = if gb_bit { 1.0 } else { 0.0 };
                    let r1: f64 = rng.random();
                    let r2: f64 = rng.random();
                    let v = self.inertia * p.velocity[i]
                        + self.cognitive * r1 * (pb - x)
                        + self.social * r2 * (gb - x);
                    p.velocity[i] = v.clamp(-self.v_max, self.v_max);
                    p.position[i] = rng.random::<f64>() < sigmoid(p.velocity[i]);
                }
                repair(p, &required, m, &mut rng);
            }
        }
        let result = incumbent.into_result(generations);
        crate::problem::debug_validate_result(objective, &result);
        result
    }
}

/// Forces a particle into the feasible region: required bits on, at least
/// one bit on, and at most `m` bits on (dropping the lowest-velocity
/// non-required extras first).
fn repair(p: &mut Particle, required: &[usize], m: usize, rng: &mut StdRng) {
    for &r in required {
        p.position[r] = true;
    }
    let mut on: Vec<usize> = (0..p.position.len()).filter(|&i| p.position[i]).collect();
    if on.is_empty() {
        let i = rng.random_range(0..p.position.len());
        p.position[i] = true;
        return;
    }
    if on.len() > m {
        // Drop non-required bits with the least enthusiasm (velocity).
        on.retain(|i| required.binary_search(i).is_err());
        on.sort_by(|&a, &b| p.velocity[a].total_cmp(&p.velocity[b]));
        let excess = (required.len() + on.len()).saturating_sub(m);
        for &i in on.iter().take(excess) {
            p.position[i] = false;
        }
    }
}

fn to_indices(position: &[bool]) -> Vec<usize> {
    (0..position.len()).filter(|&i| position[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum::<f64>() / 100.0
        }
    }

    #[test]
    fn converges_on_linear_objective() {
        let values: Vec<f64> = (0..30).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 4,
            required: vec![],
        };
        let r = ParticleSwarm::default().solve(&toy, 6);
        // Optimum is 1.10; PSO should land close.
        assert!(r.score >= 0.95, "score = {}", r.score);
    }

    #[test]
    fn solutions_are_feasible() {
        let toy = Toy {
            values: vec![1.0; 25],
            max: 5,
            required: vec![3, 11],
        };
        let r = ParticleSwarm::default().solve(&toy, 2);
        assert!(r.selected.contains(&3) && r.selected.contains(&11));
        assert!(r.selected.len() <= 5);
        assert!(!r.selected.is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let toy = Toy {
            values: vec![2.0, 7.0, 1.0, 8.0],
            max: 2,
            required: vec![],
        };
        let a = ParticleSwarm::default().solve(&toy, 13);
        let b = ParticleSwarm::default().solve(&toy, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn sigmoid_behaves() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }
}

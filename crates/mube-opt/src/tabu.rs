//! Tabu search — `µBE`'s default optimizer.
//!
//! Tabu search (Glover & Laguna) is a local search that "partially remembers
//! its path through the search space and uses this memory to declare parts
//! of the search space as tabu for some time" (§6 of the paper). Our
//! implementation:
//!
//! * neighborhood of single-element **add / remove / swap** moves,
//! * a *candidate list*: a random sample of the (possibly huge) neighborhood
//!   is evaluated each iteration, keeping the cost per iteration bounded,
//! * a recency-based **tabu list**: an element that just changed membership
//!   may not change back for `tenure` iterations,
//! * the classic **aspiration criterion**: a tabu move is allowed anyway if
//!   it would beat the best solution ever seen,
//! * **permanently tabu** regions: required elements can never be removed
//!   and the selection can never exceed `max_selected` — the constraint
//!   handling the paper describes.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::problem::{
    random_feasible, Incumbent, Move, SolveResult, SubsetObjective, SubsetSolver,
};

/// How the starting solution is constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitStrategy {
    /// The required elements plus a random fill up to `max_selected`.
    Random,
    /// Greedy construction: repeatedly sample `sample` addable elements,
    /// evaluate each extension, and keep the best as long as it improves.
    /// Costs part of the evaluation budget but starts the search near a
    /// good region.
    Greedy {
        /// Candidates sampled per greedy step.
        sample: usize,
    },
    /// Start from a caller-provided solution — the *warm start* used when
    /// re-solving after a small change (new weights, one more constraint),
    /// which keeps consecutive `µBE` iterations stable. Elements violating
    /// the constraints are repaired: required elements are forced in and
    /// the selection is truncated to `max_selected`.
    Provided(Vec<usize>),
}

/// Tabu search configuration.
#[derive(Debug, Clone)]
pub struct TabuSearch {
    /// How many iterations an element stays tabu after moving.
    pub tenure: u64,
    /// Moves sampled and evaluated per iteration.
    pub candidates_per_iter: usize,
    /// Stop after this many consecutive iterations in which the best
    /// solution ever seen did not improve — the convergence criterion.
    pub stall_limit: u64,
    /// Hard cap on iterations.
    pub max_iterations: u64,
    /// Hard cap on objective evaluations.
    pub max_evaluations: u64,
    /// Starting-solution construction.
    pub init: InitStrategy,
    /// Trust region: when set, the search never visits candidates whose
    /// Hamming distance (elements added + elements removed) from the
    /// *starting* solution exceeds this bound. This is what makes a warm
    /// start a *continuity* guarantee rather than a hint: the returned
    /// solution can drift at most this far from the incumbent it grew from.
    pub trust_region: Option<usize>,
}

impl Default for TabuSearch {
    fn default() -> Self {
        TabuSearch {
            tenure: 7,
            candidates_per_iter: 32,
            stall_limit: 40,
            max_iterations: 400,
            max_evaluations: 20_000,
            init: InitStrategy::Random,
            trust_region: None,
        }
    }
}

impl SubsetSolver for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn solve_from(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
    ) -> SolveResult {
        self.solve_from_cancel(objective, seed, warm, &CancelToken::none())
    }

    fn solve_within(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
    ) -> SolveResult {
        self.solve_within_cancel(objective, seed, warm, radius, &CancelToken::none())
    }

    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult {
        self.search(objective, seed, 0, &CancelToken::none()).0
    }

    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        self.search(objective, seed, 0, cancel).0
    }

    fn solve_from_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        cancel: &CancelToken,
    ) -> SolveResult {
        let warmed = TabuSearch {
            init: InitStrategy::Provided(warm.to_vec()),
            ..self.clone()
        };
        warmed.search(objective, seed, 0, cancel).0
    }

    fn solve_within_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
        cancel: &CancelToken,
    ) -> SolveResult {
        let warmed = TabuSearch {
            init: InitStrategy::Provided(warm.to_vec()),
            trust_region: Some(radius),
            ..self.clone()
        };
        warmed.search(objective, seed, 0, cancel).0
    }
}

impl TabuSearch {
    /// Like [`SubsetSolver::solve`], but also returns up to `k` of the best
    /// *distinct* candidates encountered during the search (best first,
    /// starting with the returned solution itself). This supports `µBE`'s
    /// exploratory use: alongside the winner, the user can inspect
    /// runner-up source selections the search found credible.
    pub fn solve_topk(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        k: usize,
    ) -> (SolveResult, Vec<(f64, Vec<usize>)>) {
        self.search(objective, seed, k, &CancelToken::none())
    }

    fn search(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        elite_capacity: usize,
        cancel: &CancelToken,
    ) -> (SolveResult, Vec<(f64, Vec<usize>)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let required = {
            let mut r = objective.required();
            r.sort_unstable();
            r.dedup();
            r
        };
        let mut incumbent = Incumbent::new(objective, self.max_evaluations)
            .with_elites(elite_capacity)
            .with_cancel(cancel.clone());
        let mut current = match &self.init {
            InitStrategy::Random => random_feasible(objective, &mut rng),
            InitStrategy::Greedy { sample } => {
                greedy_construct(objective, &required, *sample, &mut incumbent, &mut rng)
            }
            InitStrategy::Provided(warm) => repair(objective, &required, warm),
        };
        // The trust region is anchored at the (repaired) starting solution,
        // so forced repairs (new pins, a tightened size bound) never eat
        // into the drift budget.
        let anchor = self.trust_region.map(|radius| (current.clone(), radius));
        incumbent.score(&current);

        // tabu_until[i] = first iteration at which element i may move again.
        let mut tabu_until = vec![0u64; objective.universe_size()];
        let mut stall = 0u64;
        let mut iterations = 0u64;

        while iterations < self.max_iterations && !incumbent.exhausted() {
            if stall >= self.stall_limit {
                // Before giving up, exhaustively check the incumbent's
                // single-move neighborhood (random sampling can miss the one
                // marginal improving swap). If the sweep improves the best,
                // resume the tabu phase from it; otherwise the incumbent is
                // locally optimal and the search is done.
                if polish(objective, &required, &anchor, &mut incumbent) {
                    current = incumbent.best.clone();
                    stall = 0;
                    continue;
                }
                break;
            }
            iterations += 1;
            let best_at_iteration_start = incumbent.best_score;
            let moves = self.sample_moves(objective, &current, &required, &mut rng);
            let mut best_move: Option<(Move, Vec<usize>, f64)> = None;
            for mv in moves {
                if incumbent.exhausted() {
                    break;
                }
                let candidate = mv.apply(&current);
                if let Some((anchor, radius)) = &anchor {
                    if hamming_distance(&candidate, anchor) > *radius {
                        continue;
                    }
                }
                let tabu = self.is_tabu(mv, iterations, &tabu_until);
                // Score first; aspiration needs the value. The incumbent is
                // only updated through `score`, so a tabu candidate that
                // aspirates is handled consistently.
                let prev_best = incumbent.best_score;
                let s = incumbent.score(&candidate);
                let aspirated = s > prev_best;
                if tabu && !aspirated {
                    continue;
                }
                if best_move.as_ref().is_none_or(|(_, _, bs)| s > *bs) {
                    best_move = Some((mv, candidate, s));
                }
            }
            // Convergence is measured against the incumbent: an iteration
            // "stalls" when nothing evaluated beat the best ever seen.
            if incumbent.best_score > best_at_iteration_start {
                stall = 0;
            } else {
                stall += 1;
                // Intensification: while stalling, periodically pull the
                // search back to the best solution seen (elite recovery), so
                // the endgame keeps probing the incumbent's neighborhood
                // instead of drifting ever further from it.
                if stall.is_multiple_of(self.tenure + 1) && current != incumbent.best {
                    current = incumbent.best.clone();
                    continue;
                }
            }
            let Some((mv, next, _)) = best_move else {
                // Whole candidate list was tabu; wait for tenures to expire.
                continue;
            };
            // Mark the touched elements tabu so the move is not immediately
            // undone.
            let (a, b) = mv.touched();
            tabu_until[a] = iterations + self.tenure;
            if let Some(b) = b {
                tabu_until[b] = iterations + self.tenure;
            }
            current = next;
        }
        // Destructure: the elite archive and the headline result.
        let mut elites_out = Vec::new();
        std::mem::swap(&mut elites_out, incumbent.elites_mut());
        let result = incumbent.into_result(iterations);
        crate::problem::debug_validate_result(objective, &result);
        (result, elites_out)
    }
}

/// Exhaustive first-improvement sweep over the single-move neighborhood of
/// the incumbent's best solution, bounded by the remaining evaluation budget
/// (and the trust region, when one is active). Returns whether the incumbent
/// improved. When it returns `false` with budget to spare, the best solution
/// is locally optimal under add/remove/swap moves.
fn polish(
    objective: &dyn SubsetObjective,
    required: &[usize],
    anchor: &Option<(Vec<usize>, usize)>,
    incumbent: &mut Incumbent<'_>,
) -> bool {
    let base = incumbent.best.clone();
    if base.is_empty() {
        return false;
    }
    let n = objective.universe_size();
    let start_score = incumbent.best_score;
    let removable: Vec<usize> = base
        .iter()
        .copied()
        .filter(|i| required.binary_search(i).is_err())
        .collect();
    let addable: Vec<usize> = (0..n).filter(|i| base.binary_search(i).is_err()).collect();

    let mut moves: Vec<Move> = Vec::new();
    if base.len() > 1 {
        moves.extend(removable.iter().map(|&i| Move::Remove(i)));
    }
    if base.len() < objective.max_selected() {
        moves.extend(addable.iter().map(|&i| Move::Add(i)));
    }
    for &out in &removable {
        moves.extend(addable.iter().map(|&r#in| Move::Swap { out, r#in }));
    }
    for mv in moves {
        if incumbent.exhausted() {
            break;
        }
        let candidate = mv.apply(&base);
        if let Some((anchor, radius)) = anchor {
            if hamming_distance(&candidate, anchor) > *radius {
                continue;
            }
        }
        incumbent.score(&candidate);
        if incumbent.best_score > start_score {
            return true;
        }
    }
    incumbent.best_score > start_score
}

/// Hamming distance between two sorted, duplicate-free selections: the
/// number of elements present in exactly one of them.
fn hamming_distance(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut d) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                i += 1;
                d += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                d += 1;
            }
        }
    }
    d + (a.len() - i) + (b.len() - j)
}

/// Repairs a warm-start solution into the feasible region: dedupe and
/// sort, force required elements in, and drop non-required extras (from
/// the end) until the size bound holds.
fn repair(objective: &dyn SubsetObjective, required: &[usize], warm: &[usize]) -> Vec<usize> {
    let n = objective.universe_size();
    let mut current: Vec<usize> = warm.iter().copied().filter(|&i| i < n).collect();
    current.sort_unstable();
    current.dedup();
    for &r in required {
        crate::problem::sorted_insert(&mut current, r);
    }
    let max = objective.max_selected().min(n).max(1);
    while current.len() > max {
        let victim = current
            .iter()
            .rposition(|i| required.binary_search(i).is_err())
            .unwrap_or(current.len() - 1);
        current.remove(victim);
    }
    if current.is_empty() {
        current.push(0);
    }
    current
}

/// Greedy starting-solution construction: grow from the required core,
/// each step adding the best of `sample` randomly drawn candidates, while
/// additions keep improving (spending no more than half the evaluation
/// budget so the tabu phase always gets its share).
fn greedy_construct(
    objective: &dyn SubsetObjective,
    required: &[usize],
    sample: usize,
    incumbent: &mut Incumbent<'_>,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = objective.universe_size();
    let mut current: Vec<usize> = required.to_vec();
    if current.is_empty() {
        current.push(rng.random_range(0..n));
    }
    let budget_share = incumbent.max_evaluations / 2;
    let mut current_score = incumbent.score(&current);
    while current.len() < objective.max_selected().min(n) {
        if incumbent.evaluations >= budget_share || incumbent.exhausted() {
            break;
        }
        let addable: Vec<usize> = (0..n)
            .filter(|i| current.binary_search(i).is_err())
            .collect();
        if addable.is_empty() {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for _ in 0..sample.min(addable.len()) {
            let candidate = *addable.as_slice().choose(rng).expect("non-empty");
            let extended = Move::Add(candidate).apply(&current);
            let s = incumbent.score(&extended);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((candidate, s));
            }
        }
        match best {
            Some((candidate, s)) if s > current_score => {
                current = Move::Add(candidate).apply(&current);
                current_score = s;
            }
            _ => break,
        }
    }
    current
}

impl TabuSearch {
    fn is_tabu(&self, mv: Move, iteration: u64, tabu_until: &[u64]) -> bool {
        let (a, b) = mv.touched();
        tabu_until[a] > iteration || b.is_some_and(|b| tabu_until[b] > iteration)
    }

    /// Samples up to `candidates_per_iter` distinct legal moves: every
    /// remove is always considered (there are at most `m` of them), adds and
    /// swaps are sampled.
    fn sample_moves(
        &self,
        objective: &dyn SubsetObjective,
        current: &[usize],
        required: &[usize],
        rng: &mut StdRng,
    ) -> Vec<Move> {
        let n = objective.universe_size();
        let removable: Vec<usize> = current
            .iter()
            .copied()
            .filter(|i| required.binary_search(i).is_err())
            .collect();
        let addable: Vec<usize> = (0..n)
            .filter(|i| current.binary_search(i).is_err())
            .collect();

        let mut moves = Vec::with_capacity(self.candidates_per_iter);
        // Removals: cheap to enumerate fully (keep at least one element).
        if current.len() > 1 {
            for &i in &removable {
                moves.push(Move::Remove(i));
            }
        }
        let room = self.candidates_per_iter.saturating_sub(moves.len());
        let can_add = current.len() < objective.max_selected() && !addable.is_empty();
        let can_swap = !removable.is_empty() && !addable.is_empty();
        for _ in 0..room {
            match (can_add, can_swap) {
                (true, true) => {
                    if rng.random_bool(0.5) {
                        moves.push(Move::Add(
                            *addable.as_slice().choose(rng).expect("non-empty"),
                        ));
                    } else {
                        moves.push(Move::Swap {
                            out: *removable.as_slice().choose(rng).expect("non-empty"),
                            r#in: *addable.as_slice().choose(rng).expect("non-empty"),
                        });
                    }
                }
                (true, false) => {
                    moves.push(Move::Add(
                        *addable.as_slice().choose(rng).expect("non-empty"),
                    ));
                }
                (false, true) => moves.push(Move::Swap {
                    out: *removable.as_slice().choose(rng).expect("non-empty"),
                    r#in: *addable.as_slice().choose(rng).expect("non-empty"),
                }),
                (false, false) => break,
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn finds_top_k_on_linear_objective() {
        let values: Vec<f64> = (0..40).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 5,
            required: vec![],
        };
        let r = TabuSearch::default().solve(&toy, 7);
        assert_eq!(r.selected, vec![35, 36, 37, 38, 39]);
        assert_eq!(r.score, 35.0 + 36.0 + 37.0 + 38.0 + 39.0);
    }

    #[test]
    fn keeps_required_even_when_bad() {
        // Element 0 is worthless but required.
        let mut values = vec![0.0];
        values.extend((1..20).map(f64::from));
        let toy = Toy {
            values,
            max: 3,
            required: vec![0],
        };
        let r = TabuSearch::default().solve(&toy, 1);
        assert!(r.selected.contains(&0));
        assert!(r.selected.len() <= 3);
        // The other two slots should hold the two largest values.
        assert!(
            r.selected.contains(&19) && r.selected.contains(&18),
            "got {:?}",
            r.selected
        );
    }

    #[test]
    fn handles_nonlinear_objective_with_interaction() {
        // Pairs (2i, 2i+1) only score together: a deceptive landscape for
        // pure greedy addition.
        struct Pairs;
        impl SubsetObjective for Pairs {
            fn universe_size(&self) -> usize {
                20
            }
            fn max_selected(&self) -> usize {
                4
            }
            fn required(&self) -> Vec<usize> {
                vec![]
            }
            fn score(&self, selected: &[usize]) -> f64 {
                (0..10)
                    .filter(|&p| {
                        selected.binary_search(&(2 * p)).is_ok()
                            && selected.binary_search(&(2 * p + 1)).is_ok()
                    })
                    .map(|p| f64::from(p as u32) + 1.0)
                    .sum()
            }
        }
        let r = TabuSearch::default().solve(&Pairs, 11);
        // Best: pairs 8 and 9 → 9 + 10 = 19.
        assert!(r.score >= 17.0, "score = {}", r.score);
    }

    #[test]
    fn respects_evaluation_budget() {
        let toy = Toy {
            values: vec![1.0; 50],
            max: 10,
            required: vec![],
        };
        let cfg = TabuSearch {
            max_evaluations: 100,
            ..TabuSearch::default()
        };
        let r = cfg.solve(&toy, 3);
        assert!(r.evaluations <= 100 + cfg.candidates_per_iter as u64 + 50);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let values: Vec<f64> = (0..30).map(|i| f64::from((i * 7) % 13)).collect();
        let toy = Toy {
            values,
            max: 6,
            required: vec![2],
        };
        let a = TabuSearch::default().solve(&toy, 99);
        let b = TabuSearch::default().solve(&toy, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn universe_smaller_than_max() {
        let toy = Toy {
            values: vec![1.0, 2.0],
            max: 10,
            required: vec![],
        };
        let r = TabuSearch::default().solve(&toy, 5);
        assert_eq!(r.selected, vec![0, 1]);
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    fn greedy() -> TabuSearch {
        TabuSearch {
            init: InitStrategy::Greedy { sample: 16 },
            ..TabuSearch::default()
        }
    }

    #[test]
    fn greedy_init_finds_top_k() {
        let values: Vec<f64> = (0..40).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 5,
            required: vec![],
        };
        let r = greedy().solve(&toy, 7);
        assert_eq!(r.selected, vec![35, 36, 37, 38, 39]);
    }

    #[test]
    fn greedy_init_keeps_required() {
        let toy = Toy {
            values: vec![0.0, 9.0, 1.0, 8.0, 2.0],
            max: 3,
            required: vec![0],
        };
        let r = greedy().solve(&toy, 3);
        assert!(r.selected.contains(&0));
        assert!(r.selected.len() <= 3);
    }

    #[test]
    fn greedy_init_is_deterministic() {
        let values: Vec<f64> = (0..25).map(|i| f64::from((i * 11) % 17)).collect();
        let toy = Toy {
            values,
            max: 6,
            required: vec![1],
        };
        assert_eq!(greedy().solve(&toy, 5), greedy().solve(&toy, 5));
    }

    #[test]
    fn greedy_respects_budget() {
        let toy = Toy {
            values: vec![1.0; 100],
            max: 50,
            required: vec![],
        };
        let cfg = TabuSearch {
            init: InitStrategy::Greedy { sample: 8 },
            max_evaluations: 60,
            ..TabuSearch::default()
        };
        let r = cfg.solve(&toy, 1);
        assert!(r.evaluations <= 60 + 40, "evals = {}", r.evaluations);
    }
}

#[cfg(test)]
mod warm_tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn warm_start_improves_from_seed() {
        let values: Vec<f64> = (0..30).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 4,
            required: vec![],
        };
        let cfg = TabuSearch {
            init: InitStrategy::Provided(vec![0, 1, 2, 3]), // worst possible
            ..TabuSearch::default()
        };
        let r = cfg.solve(&toy, 1);
        assert_eq!(r.selected, vec![26, 27, 28, 29]);
    }

    #[test]
    fn warm_start_repairs_infeasible_seeds() {
        let toy = Toy {
            values: vec![1.0; 10],
            max: 3,
            required: vec![9],
        };
        let cfg = TabuSearch {
            init: InitStrategy::Provided(vec![0, 1, 2, 3, 4, 99]), // too big + foreign
            max_evaluations: 1,                                    // only the initial evaluation
            max_iterations: 0,
            ..TabuSearch::default()
        };
        let r = cfg.solve(&toy, 1);
        assert!(r.selected.contains(&9));
        assert!(r.selected.len() <= 3);
        assert!(r.selected.iter().all(|&i| i < 10));
    }

    #[test]
    fn trust_region_bounds_drift() {
        // Optimum is {26..29}, far from the warm start {0..3}; with a trust
        // region of 2 the search may change at most two memberships.
        let values: Vec<f64> = (0..30).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 4,
            required: vec![],
        };
        let warm = vec![0, 1, 2, 3];
        let r = TabuSearch::default().solve_within(&toy, 1, &warm, 2);
        let moved = r.selected.iter().filter(|i| !warm.contains(i)).count()
            + warm.iter().filter(|i| !r.selected.contains(i)).count();
        assert!(moved <= 2, "drifted {moved} > 2: {:?}", r.selected);
        // Within the region the search still optimizes: one swap to 29.
        assert!(r.selected.contains(&29), "got {:?}", r.selected);
    }

    #[test]
    fn trust_region_never_scores_worse_than_warm_start() {
        let values: Vec<f64> = (0..30).map(|i| f64::from((i * 17) % 23)).collect();
        let toy = Toy {
            values: values.clone(),
            max: 5,
            required: vec![],
        };
        let warm = vec![3, 8, 12, 20, 25];
        let warm_score: f64 = warm.iter().map(|&i| values[i]).sum();
        for radius in [0, 1, 3, 6] {
            let r = TabuSearch::default().solve_within(&toy, 9, &warm, radius);
            assert!(
                r.score >= warm_score,
                "radius {radius}: {} < {warm_score}",
                r.score
            );
        }
    }

    #[test]
    fn trust_region_zero_pins_the_warm_start() {
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 3,
            required: vec![],
        };
        let r = TabuSearch::default().solve_within(&toy, 4, &[2, 5, 7], 0);
        assert_eq!(r.selected, vec![2, 5, 7]);
    }

    #[test]
    fn warm_start_near_optimum_stays_put() {
        // Seeding with the optimum must return the optimum.
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let toy = Toy {
            values,
            max: 3,
            required: vec![],
        };
        let cfg = TabuSearch {
            init: InitStrategy::Provided(vec![17, 18, 19]),
            ..TabuSearch::default()
        };
        let r = cfg.solve(&toy, 2);
        assert_eq!(r.selected, vec![17, 18, 19]);
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;

    struct Toy {
        values: Vec<f64>,
        max: usize,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            vec![]
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn topk_returns_distinct_descending_alternatives() {
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let toy = Toy { values, max: 3 };
        let (best, elites) = TabuSearch::default().solve_topk(&toy, 4, 5);
        assert_eq!(elites.len(), 5);
        // Best first, and the first elite is the returned solution.
        assert_eq!(elites[0].1, best.selected);
        assert!((elites[0].0 - best.score).abs() < 1e-12);
        assert!(elites.windows(2).all(|w| w[0].0 >= w[1].0), "descending");
        // All distinct.
        for i in 0..elites.len() {
            for j in (i + 1)..elites.len() {
                assert_ne!(elites[i].1, elites[j].1);
            }
        }
        // Scores are consistent with the objective.
        for (score, sel) in &elites {
            assert!((score - toy.score(sel)).abs() < 1e-12);
        }
    }

    #[test]
    fn topk_zero_disables_archive() {
        let toy = Toy {
            values: vec![1.0, 2.0, 3.0],
            max: 2,
        };
        let (_, elites) = TabuSearch::default().solve_topk(&toy, 1, 0);
        assert!(elites.is_empty());
    }

    #[test]
    fn topk_matches_plain_solve() {
        let values: Vec<f64> = (0..15).map(|i| f64::from((i * 13) % 7)).collect();
        let toy = Toy { values, max: 4 };
        let plain = TabuSearch::default().solve(&toy, 9);
        let (topk, _) = TabuSearch::default().solve_topk(&toy, 9, 3);
        assert_eq!(plain, topk, "elite tracking must not change the search");
    }
}

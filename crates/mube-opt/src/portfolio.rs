//! A parallel multi-start solver portfolio.
//!
//! Runs N independently-seeded member solvers (any mix of tabu, SLS,
//! annealing, PSO) against one objective, spread across OS threads, and
//! returns the best result. The portfolio is the repo's answer to two
//! facts about metaheuristics on the `µBE` problem: restarts with different
//! seeds escape different local optima, and the member runs are
//! embarrassingly parallel.
//!
//! ## Determinism contract
//!
//! For a fixed `(seed, member list)` the outcome is **byte-identical no
//! matter how many threads run it**:
//!
//! * every member `w` gets its own seed stream derived from `(seed, w)` by
//!   a SplitMix64-style mix — thread scheduling never touches RNG state;
//! * the shared champion (atomic epoch + mutex-guarded best) is
//!   *observational only*: members never read it to steer their search, so
//!   racing updates cannot leak timing into results;
//! * the winner is chosen after all members finish, by highest score with
//!   ties broken toward the lowest worker id — a total order independent
//!   of completion order.
//!
//! Threads only decide *when* each member runs, never *what* it computes.
//!
//! Workers ask the objective for a [`SubsetObjective::worker_view`] — a
//! worker-local incremental evaluator when the objective provides one
//! (`mube_core::Problem` does) — and fall back to sharing the objective
//! directly otherwise.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::anneal::SimulatedAnnealing;
use crate::cancel::CancelToken;
use crate::problem::{debug_validate_result, SolveResult, SubsetObjective, SubsetSolver};
use crate::pso::ParticleSwarm;
use crate::sls::StochasticLocalSearch;
use crate::tabu::TabuSearch;

/// Process-wide count of portfolio member panics contained by
/// [`Portfolio`] runs (see [`member_panics_total`]).
static MEMBER_PANICS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Cumulative number of member panics contained across every portfolio run
/// in this process. A member that panics is dropped from its run (the
/// champion among the survivors still wins); this counter surfaces the
/// failures for monitoring, e.g. the `member_panics` field in
/// `mube-serve`'s `/metrics`.
pub fn member_panics_total() -> u64 {
    // ordering: monotone event counter read for metrics; no other memory
    // depends on its value, so a stale read is harmless.
    MEMBER_PANICS_TOTAL.load(Ordering::Relaxed)
}

/// One member's completed run.
#[derive(Debug, Clone)]
pub struct MemberRun {
    /// The member's index in the portfolio (its worker id).
    pub worker: usize,
    /// The member solver's name.
    pub solver: String,
    /// The member's own best result.
    pub result: SolveResult,
}

/// The full outcome of a portfolio run: the aggregate result plus every
/// member's incumbent and the champion-improvement trace.
#[derive(Debug, Clone)]
pub struct PortfolioRun {
    /// Worker id of the winning member.
    pub winner: usize,
    /// The winner's selection and score; `evaluations`/`iterations` are
    /// summed across all members (the work the portfolio actually did), and
    /// `timed_out` is set if *any* member was cut short by the cancel token.
    pub result: SolveResult,
    /// Every surviving member's run, in worker order. Members whose solver
    /// panicked are absent (their panic is contained and counted in
    /// [`PortfolioRun::member_panics`]).
    pub members: Vec<MemberRun>,
    /// `(worker, score)` at each champion improvement, in update order.
    /// Scores are monotone non-decreasing. The *order* entries arrived in
    /// depends on thread scheduling (the trace observes the race; it never
    /// influences results).
    pub champion_trace: Vec<(usize, f64)>,
    /// Number of members whose solver panicked during this run.
    pub member_panics: u64,
}

/// Shared best-so-far incumbent. Updated under the mutex; the epoch counter
/// lets observers detect improvements without taking the lock.
struct Champion {
    score: f64,
    worker: usize,
    trace: Vec<(usize, f64)>,
}

/// What kind of start each member performs.
enum Mode<'a> {
    Cold,
    Warm(&'a [usize]),
    Within(&'a [usize], usize),
}

/// A parallel multi-start portfolio of subset solvers.
pub struct Portfolio {
    members: Vec<Box<dyn SubsetSolver>>,
    threads: usize,
    label: String,
}

/// Canonicalizes a `tabu,sls,anneal` spec into member solver names.
/// Accepted tokens: `tabu`, `sls`, `anneal`/`annealing`, `pso`.
pub fn parse_portfolio_spec(spec: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for raw in spec.split(',') {
        let tok = raw.trim();
        if tok.is_empty() {
            continue;
        }
        let canon = match tok {
            "tabu" => "tabu",
            "sls" => "sls",
            "anneal" | "annealing" => "annealing",
            "pso" => "pso",
            other => {
                return Err(format!(
                    "unknown portfolio member `{other}` (expected tabu, sls, anneal, or pso)"
                ))
            }
        };
        names.push(canon.to_string());
    }
    if names.is_empty() {
        return Err("empty portfolio spec".into());
    }
    Ok(names)
}

/// A default-configured solver by canonical name (as produced by
/// [`parse_portfolio_spec`]).
pub fn default_member(name: &str) -> Option<Box<dyn SubsetSolver>> {
    match name {
        "tabu" => Some(Box::new(TabuSearch::default())),
        "sls" => Some(Box::new(StochasticLocalSearch::default())),
        "annealing" => Some(Box::new(SimulatedAnnealing::default())),
        "pso" => Some(Box::new(ParticleSwarm::default())),
        _ => None,
    }
}

/// Like [`default_member`], with the member's evaluation budget capped at
/// `max_evaluations` — for callers (like the session server) that bound
/// per-solve latency.
pub fn budgeted_member(name: &str, max_evaluations: u64) -> Option<Box<dyn SubsetSolver>> {
    match name {
        "tabu" => Some(Box::new(TabuSearch {
            max_evaluations,
            ..TabuSearch::default()
        })),
        "sls" => Some(Box::new(StochasticLocalSearch {
            max_evaluations,
            ..Default::default()
        })),
        "annealing" => Some(Box::new(SimulatedAnnealing {
            max_evaluations,
            ..Default::default()
        })),
        "pso" => Some(Box::new(ParticleSwarm {
            max_evaluations,
            ..Default::default()
        })),
        _ => None,
    }
}

impl Portfolio {
    /// Builds a portfolio over explicit members. The member list (order
    /// included) is part of the determinism contract.
    ///
    /// # Panics
    /// If `members` is empty.
    pub fn new(members: Vec<Box<dyn SubsetSolver>>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        let names: Vec<&str> = members.iter().map(|m| m.name()).collect();
        let label = format!("portfolio({})", names.join(","));
        Portfolio {
            members,
            threads: 1,
            label,
        }
    }

    /// Builds a portfolio from a comma-separated spec, with each listed
    /// member repeated `restarts` times (different seed streams per copy).
    /// `restarts` is clamped to at least 1.
    pub fn from_spec(spec: &str, restarts: usize) -> Result<Self, String> {
        let names = parse_portfolio_spec(spec)?;
        let mut members: Vec<Box<dyn SubsetSolver>> = Vec::new();
        for _ in 0..restarts.max(1) {
            for name in &names {
                members.push(default_member(name).expect("spec names are canonical"));
            }
        }
        Ok(Portfolio::new(members))
    }

    /// Sets the number of OS threads the members are spread over (clamped
    /// to at least 1). Affects wall-clock only, never results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The seed stream for member `worker`: a `SplitMix64` finalizer over the
    /// run seed and the worker id, so streams are decorrelated and depend
    /// only on `(seed, worker)`.
    pub fn worker_seed(seed: u64, worker: u64) -> u64 {
        let mut z = seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs every member and returns the full outcome.
    pub fn run(&self, objective: &dyn SubsetObjective, seed: u64) -> PortfolioRun {
        self.run_mode(objective, seed, &Mode::Cold, &CancelToken::none())
    }

    /// Like [`Portfolio::run`], warm-starting every member from `warm`.
    pub fn run_from(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
    ) -> PortfolioRun {
        self.run_mode(objective, seed, &Mode::Warm(warm), &CancelToken::none())
    }

    /// Like [`Portfolio::run_from`], bounding each member's drift from the
    /// warm start to `radius` (for members that support trust regions).
    pub fn run_within(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
    ) -> PortfolioRun {
        self.run_mode(
            objective,
            seed,
            &Mode::Within(warm, radius),
            &CancelToken::none(),
        )
    }

    /// Like [`Portfolio::run`], with a shared [`CancelToken`] every member
    /// polls between evaluations — one deadline bounds the whole portfolio.
    pub fn run_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> PortfolioRun {
        self.run_mode(objective, seed, &Mode::Cold, cancel)
    }

    /// Cancellable form of [`Portfolio::run_from`].
    pub fn run_from_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        cancel: &CancelToken,
    ) -> PortfolioRun {
        self.run_mode(objective, seed, &Mode::Warm(warm), cancel)
    }

    /// Cancellable form of [`Portfolio::run_within`].
    pub fn run_within_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
        cancel: &CancelToken,
    ) -> PortfolioRun {
        self.run_mode(objective, seed, &Mode::Within(warm, radius), cancel)
    }

    fn run_mode(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        mode: &Mode<'_>,
        cancel: &CancelToken,
    ) -> PortfolioRun {
        let n = self.members.len();
        let next_job = AtomicUsize::new(0);
        let epoch = AtomicU64::new(0);
        let champion = Mutex::new(Champion {
            score: f64::NEG_INFINITY,
            worker: usize::MAX,
            trace: Vec::new(),
        });
        let slots: Vec<OnceLock<SolveResult>> = (0..n).map(|_| OnceLock::new()).collect();
        let panics = AtomicU64::new(0);

        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One incremental view per OS thread; members running on
                    // the same thread reuse it (repositioning is cheap).
                    let mut view = objective.worker_view();
                    loop {
                        // ordering: job-ticket counter; fetch_add's
                        // atomicity alone guarantees each index is handed
                        // out once, and results flow back through the
                        // channel (whose lock orders them).
                        let w = next_job.fetch_add(1, Ordering::Relaxed);
                        if w >= n {
                            break;
                        }
                        let wseed = Portfolio::worker_seed(seed, w as u64);
                        let obj: &dyn SubsetObjective = view.as_deref().unwrap_or(objective);
                        // Contain member panics: a panicking member forfeits
                        // its slot, the survivors' champion still wins, and
                        // the failure is counted instead of poisoning the
                        // whole portfolio (and the server worker above it).
                        let outcome = catch_unwind(AssertUnwindSafe(|| match *mode {
                            Mode::Cold => self.members[w].solve_cancel(obj, wseed, cancel),
                            Mode::Warm(warm) => {
                                self.members[w].solve_from_cancel(obj, wseed, warm, cancel)
                            }
                            Mode::Within(warm, radius) => self.members[w]
                                .solve_within_cancel(obj, wseed, warm, radius, cancel),
                        }));
                        let result = match outcome {
                            Ok(result) => result,
                            Err(_) => {
                                // ordering: pure event counters; readers
                                // only need eventual totals, never a
                                // happens-before edge.
                                panics.fetch_add(1, Ordering::Relaxed);
                                MEMBER_PANICS_TOTAL.fetch_add(1, Ordering::Relaxed); // ordering: ditto
                                                                                     // The incremental view was unwound through;
                                                                                     // its internal state is suspect. Replace it
                                                                                     // before the next job.
                                view = objective.worker_view();
                                continue;
                            }
                        };
                        // Publish to the shared champion. Strictly-better
                        // (score, then lowest worker) replacement makes the
                        // final champion independent of arrival order.
                        {
                            let mut ch = champion.lock().expect("champion lock poisoned");
                            let better = result.score > ch.score
                                || (result.score == ch.score && w < ch.worker);
                            if better {
                                ch.score = result.score;
                                ch.worker = w;
                                ch.trace.push((w, result.score));
                                epoch.fetch_add(1, Ordering::Release);
                            }
                        }
                        slots[w].set(result).expect("each job index runs once");
                    }
                });
            }
        });

        let members: Vec<MemberRun> = slots
            .into_iter()
            .enumerate()
            .filter_map(|(w, slot)| {
                slot.into_inner().map(|result| MemberRun {
                    worker: w,
                    solver: self.members[w].name().to_string(),
                    result,
                })
            })
            .collect();
        assert!(
            !members.is_empty(),
            "every portfolio member panicked; no result to return"
        );

        // Deterministic winner: highest score, first (lowest) worker on
        // ties. Scanning in worker order keeps the tie-break implicit.
        let mut best = 0;
        for (i, m) in members.iter().enumerate().skip(1) {
            if m.result
                .score
                .total_cmp(&members[best].result.score)
                .is_gt()
            {
                best = i;
            }
        }
        let winner = members[best].worker;
        let mut result = members[best].result.clone();
        result.evaluations = members.iter().map(|m| m.result.evaluations).sum();
        result.iterations = members.iter().map(|m| m.result.iterations).sum();
        result.timed_out = members.iter().any(|m| m.result.timed_out);
        debug_validate_result(objective, &result);

        let champion = champion.into_inner().expect("champion lock poisoned");
        debug_assert_eq!(
            champion.worker, winner,
            "racing champion folds to the same winner as the ordered scan"
        );
        PortfolioRun {
            winner,
            result,
            members,
            champion_trace: champion.trace,
            member_panics: panics.into_inner(),
        }
    }
}

impl SubsetSolver for Portfolio {
    fn name(&self) -> &str {
        &self.label
    }

    fn solve(&self, objective: &dyn SubsetObjective, seed: u64) -> SolveResult {
        self.run(objective, seed).result
    }

    fn solve_from(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
    ) -> SolveResult {
        self.run_from(objective, seed, warm).result
    }

    fn solve_within(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
    ) -> SolveResult {
        self.run_within(objective, seed, warm, radius).result
    }

    fn solve_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        cancel: &CancelToken,
    ) -> SolveResult {
        self.run_cancel(objective, seed, cancel).result
    }

    fn solve_from_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        cancel: &CancelToken,
    ) -> SolveResult {
        self.run_from_cancel(objective, seed, warm, cancel).result
    }

    fn solve_within_cancel(
        &self,
        objective: &dyn SubsetObjective,
        seed: u64,
        warm: &[usize],
        radius: usize,
        cancel: &CancelToken,
    ) -> SolveResult {
        self.run_within_cancel(objective, seed, warm, radius, cancel)
            .result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum-of-values toy objective with a rugged twist: a parity bonus so
    /// different members plausibly land in different optima.
    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            let base: f64 = selected.iter().map(|&i| self.values[i]).sum();
            let parity_bonus = if selected.len().is_multiple_of(2) {
                0.5
            } else {
                0.0
            };
            base + parity_bonus
        }
    }

    fn toy() -> Toy {
        Toy {
            values: (0..20).map(|i| (i as f64 * 7.3) % 5.0).collect(),
            max: 6,
            required: vec![3],
        }
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            parse_portfolio_spec("tabu,sls,anneal").unwrap(),
            vec!["tabu", "sls", "annealing"]
        );
        assert_eq!(
            parse_portfolio_spec(" pso , tabu ").unwrap(),
            vec!["pso", "tabu"]
        );
        assert!(parse_portfolio_spec("").is_err());
        assert!(parse_portfolio_spec("tabu,genetic").is_err());
    }

    #[test]
    fn from_spec_repeats_members() {
        let p = Portfolio::from_spec("tabu,sls", 3).unwrap();
        assert_eq!(p.member_count(), 6);
        assert_eq!(p.name(), "portfolio(tabu,sls,tabu,sls,tabu,sls)");
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let obj = toy();
        let runs: Vec<PortfolioRun> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| {
                Portfolio::from_spec("tabu,sls,anneal,pso", 2)
                    .unwrap()
                    .threads(t)
                    .run(&obj, 7)
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.result, runs[0].result);
            assert_eq!(r.winner, runs[0].winner);
            for (a, b) in r.members.iter().zip(&runs[0].members) {
                assert_eq!(a.result, b.result, "member {} diverged", a.worker);
            }
        }
    }

    #[test]
    fn winner_is_best_member_lowest_worker_on_ties() {
        let obj = toy();
        let p = Portfolio::from_spec("tabu", 4).unwrap().threads(2);
        let run = p.run(&obj, 11);
        let best = run
            .members
            .iter()
            .map(|m| m.result.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(run.result.score, best);
        let first_best = run
            .members
            .iter()
            .position(|m| m.result.score == best)
            .unwrap();
        assert_eq!(run.winner, first_best);
    }

    #[test]
    fn champion_trace_is_monotone() {
        let obj = toy();
        let run = Portfolio::from_spec("tabu,sls,anneal,pso", 4)
            .unwrap()
            .threads(8)
            .run(&obj, 3);
        assert!(!run.champion_trace.is_empty());
        for w in run.champion_trace.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "trace regressed: {:?}",
                run.champion_trace
            );
        }
        let (_, last) = *run.champion_trace.last().unwrap();
        assert_eq!(last, run.result.score);
    }

    #[test]
    fn evaluations_aggregate_across_members() {
        let obj = toy();
        let run = Portfolio::from_spec("tabu,sls", 1)
            .unwrap()
            .threads(2)
            .run(&obj, 5);
        let sum: u64 = run.members.iter().map(|m| m.result.evaluations).sum();
        assert_eq!(run.result.evaluations, sum);
        assert!(sum > 0);
    }

    #[test]
    fn warm_start_passthrough_is_deterministic() {
        let obj = toy();
        let p = Portfolio::from_spec("tabu,sls,anneal", 1)
            .unwrap()
            .threads(3);
        let warm = vec![3, 5, 9];
        let a = p.run_from(&obj, 13, &warm);
        let b = Portfolio::from_spec("tabu,sls,anneal", 1)
            .unwrap()
            .threads(1)
            .run_from(&obj, 13, &warm);
        assert_eq!(a.result, b.result);
        let c = p.run_within(&obj, 13, &warm, 2);
        let d = Portfolio::from_spec("tabu,sls,anneal", 1)
            .unwrap()
            .threads(1)
            .run_within(&obj, 13, &warm, 2);
        assert_eq!(c.result, d.result);
    }

    #[test]
    fn worker_seeds_are_decorrelated() {
        let mut seen = std::collections::BTreeSet::new();
        for w in 0..64 {
            assert!(seen.insert(Portfolio::worker_seed(42, w)));
        }
        assert_ne!(Portfolio::worker_seed(42, 0), 42, "seed 0 is mixed too");
    }

    /// An objective whose worker views log their creation, proving the
    /// portfolio requests one per OS thread.
    struct Counting {
        inner: Toy,
        views: AtomicUsize,
    }

    impl SubsetObjective for Counting {
        fn universe_size(&self) -> usize {
            self.inner.universe_size()
        }
        fn max_selected(&self) -> usize {
            self.inner.max_selected()
        }
        fn required(&self) -> Vec<usize> {
            self.inner.required()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            self.inner.score(selected)
        }
        fn worker_view(&self) -> Option<Box<dyn SubsetObjective + '_>> {
            self.views.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    #[test]
    fn one_worker_view_per_thread() {
        let obj = Counting {
            inner: toy(),
            views: AtomicUsize::new(0),
        };
        Portfolio::from_spec("tabu,sls,anneal,pso", 1)
            .unwrap()
            .threads(3)
            .run(&obj, 1);
        assert_eq!(obj.views.load(Ordering::Relaxed), 3);
    }

    /// A member that always panics, for containment tests.
    struct PanickingSolver;

    impl SubsetSolver for PanickingSolver {
        fn name(&self) -> &str {
            "boom"
        }
        fn solve(&self, _objective: &dyn SubsetObjective, _seed: u64) -> SolveResult {
            panic!("deliberate member panic (containment test)");
        }
    }

    #[test]
    fn member_panic_is_contained_and_champion_survives() {
        let obj = toy();
        let members: Vec<Box<dyn SubsetSolver>> = vec![
            Box::new(PanickingSolver),
            Box::new(TabuSearch::default()),
            Box::new(PanickingSolver),
            Box::new(StochasticLocalSearch::default()),
        ];
        let run = Portfolio::new(members).threads(2).run(&obj, 21);
        assert_eq!(run.member_panics, 2);
        assert_eq!(run.members.len(), 2, "panicked members forfeit their slot");
        let workers: Vec<usize> = run.members.iter().map(|m| m.worker).collect();
        assert_eq!(workers, vec![1, 3]);
        assert!(run.winner == 1 || run.winner == 3);
        assert!(run.result.score.is_finite());
        assert!(member_panics_total() >= 2);
    }

    #[test]
    fn surviving_members_match_a_panic_free_run() {
        // Containment must not perturb the survivors' determinism.
        let obj = toy();
        let mixed: Vec<Box<dyn SubsetSolver>> = vec![
            Box::new(TabuSearch::default()),
            Box::new(PanickingSolver),
            Box::new(StochasticLocalSearch::default()),
        ];
        let run = Portfolio::new(mixed).threads(3).run(&obj, 9);
        let tabu_alone = TabuSearch::default().solve(&obj, Portfolio::worker_seed(9, 0));
        let sls_alone = StochasticLocalSearch::default().solve(&obj, Portfolio::worker_seed(9, 2));
        assert_eq!(run.members[0].result, tabu_alone);
        assert_eq!(run.members[1].result, sls_alone);
    }

    #[test]
    #[should_panic(expected = "every portfolio member panicked")]
    fn all_members_panicking_is_fatal() {
        let obj = toy();
        let members: Vec<Box<dyn SubsetSolver>> = vec![Box::new(PanickingSolver)];
        Portfolio::new(members).run(&obj, 1);
    }

    #[test]
    fn cancelled_portfolio_returns_best_so_far_flagged() {
        use crate::cancel::{CancelToken, ManualClock};
        use std::sync::Arc;
        use std::time::Duration;

        let obj = toy();
        let clock = Arc::new(ManualClock::new());
        // Deadline already passed: every member gets exactly its guaranteed
        // first evaluation and must still produce a feasible incumbent.
        let token = CancelToken::with_deadline(clock, Duration::ZERO);
        let p = Portfolio::from_spec("tabu,sls,anneal,pso", 1)
            .unwrap()
            .threads(2);
        let run = p.run_cancel(&obj, 17, &token);
        assert!(run.result.timed_out);
        assert_eq!(run.members.len(), 4);
        for m in &run.members {
            assert!(m.result.timed_out, "member {} not flagged", m.worker);
            assert!(
                m.result.evaluations >= 1,
                "anytime guarantee needs one eval"
            );
            assert!(m.result.selected.contains(&3), "required element kept");
            assert!(m.result.selected.len() <= obj.max_selected());
        }
        // Without a token the same run is not flagged.
        let clean = p.run(&obj, 17);
        assert!(!clean.result.timed_out);
    }

    #[test]
    fn uncancelled_token_matches_token_free_run() {
        let obj = toy();
        let p = Portfolio::from_spec("tabu,sls", 2).unwrap().threads(2);
        let with_token = p.run_cancel(&obj, 31, &CancelToken::new());
        let without = p.run(&obj, 31);
        assert_eq!(with_token.result, without.result);
        assert_eq!(with_token.winner, without.winner);
    }
}

//! Hierarchical two-level subset solving.
//!
//! At internet scale (10^5–10^6 candidates) a flat solve is infeasible: every
//! solver move touches the whole candidate vector, and the objective's
//! supporting state (similarity caches, signatures) grows at least linearly
//! in the universe. The scale pipeline instead solves **twice**: first a
//! *coarse* problem whose elements are clusters of near-duplicate sources
//! (scored through per-cluster representative sketches), then a *fine*
//! problem restricted to the members of the winning clusters. This module
//! contributes the two ingredients that are independent of where the
//! clusters come from:
//!
//! * [`RestrictedObjective`] — presents a subset of a larger objective's
//!   universe as a dense `0..k` universe of its own, so any
//!   [`SubsetSolver`] can solve inside the restriction unmodified, and
//!   solutions lift back to the original index space;
//! * [`solve_two_level`] — the coarse-solve → expand → fine-solve driver,
//!   generic over how the expansion constructs the fine objective (the
//!   `mube-scale` pipeline builds a fresh sub-problem; tests restrict an
//!   existing flat objective).
//!
//! Both levels run under one [`CancelToken`], preserving the anytime
//! guarantee end to end: if the deadline fires mid-coarse, the expansion
//! still sees the best coarse incumbent and the fine solve still returns a
//! feasible (if unimproved) solution.

use crate::cancel::CancelToken;
use crate::problem::{SolveResult, SubsetObjective, SubsetSolver};

/// Seed-stream separator between the coarse and fine solves, so the two
/// levels never replay the same random walk. Odd constant, same derivation
/// idiom as the portfolio's per-worker streams.
const FINE_STREAM: u64 = 0x517C_C1B7_2722_0A95;

/// A dense re-indexing of a larger objective onto a candidate subset.
///
/// Element `i` of this objective is `candidates[i]` of the inner one;
/// scoring lifts the dense selection back and delegates, so the restricted
/// objective is *exactly* the inner objective confined to the candidate
/// set. The inner objective's required elements must all be candidates —
/// a restriction that dropped a required element could never produce a
/// feasible lifted solution.
pub struct RestrictedObjective<'a> {
    inner: &'a dyn SubsetObjective,
    /// Sorted, distinct indices into the inner universe.
    candidates: Vec<usize>,
    /// Inner required elements, re-expressed as dense indices.
    required: Vec<usize>,
}

impl<'a> RestrictedObjective<'a> {
    /// Restricts `inner` to `candidates` (any order, duplicates ignored).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, contains an index outside the inner
    /// universe, or misses one of the inner objective's required elements.
    pub fn new(inner: &'a dyn SubsetObjective, mut candidates: Vec<usize>) -> Self {
        candidates.sort_unstable();
        candidates.dedup();
        assert!(!candidates.is_empty(), "restriction needs candidates");
        assert!(
            candidates.last().is_none_or(|&c| c < inner.universe_size()),
            "candidate outside the inner universe"
        );
        let required = inner
            .required()
            .iter()
            .map(|r| {
                candidates
                    .binary_search(r)
                    .unwrap_or_else(|_| panic!("required element {r} not in the restriction"))
            })
            .collect();
        RestrictedObjective {
            inner,
            candidates,
            required,
        }
    }

    /// The candidate set, sorted ascending in the inner index space.
    pub fn candidates(&self) -> &[usize] {
        &self.candidates
    }

    /// Lifts a dense selection back to the inner index space. Preserves
    /// sortedness (the candidate list is sorted).
    pub fn lift(&self, dense: &[usize]) -> Vec<usize> {
        dense.iter().map(|&i| self.candidates[i]).collect()
    }
}

impl SubsetObjective for RestrictedObjective<'_> {
    fn universe_size(&self) -> usize {
        self.candidates.len()
    }

    fn max_selected(&self) -> usize {
        self.inner.max_selected().min(self.candidates.len())
    }

    fn required(&self) -> Vec<usize> {
        self.required.clone()
    }

    fn score(&self, selected: &[usize]) -> f64 {
        self.inner.score(&self.lift(selected))
    }
}

/// Outcome of a [`solve_two_level`] run.
pub struct TwoLevelResult<O> {
    /// The coarse (cluster-level) solver run, in coarse index space.
    pub coarse: SolveResult,
    /// The fine solver run, in the fine objective's index space.
    pub fine: SolveResult,
    /// The fine objective the expansion built, so callers can lift the
    /// selection, validate it, or keep solving from the incumbent.
    pub objective: O,
}

/// Coarse-solve → expand → fine-solve.
///
/// Solves `coarse` with `solver`, hands the winning coarse selection to
/// `expand` — which constructs the fine objective however it likes (restrict
/// a flat objective, build a sub-problem over the clusters' members, ...) —
/// then solves that on a derived seed stream. The same `cancel` token bounds
/// both levels; split budgets by arming a deadline that covers the sum.
pub fn solve_two_level<O, E>(
    coarse: &dyn SubsetObjective,
    solver: &dyn SubsetSolver,
    seed: u64,
    cancel: &CancelToken,
    expand: E,
) -> TwoLevelResult<O>
where
    O: SubsetObjective,
    E: FnOnce(&[usize]) -> O,
{
    let coarse_result = solver.solve_cancel(coarse, seed, cancel);
    let objective = expand(&coarse_result.selected);
    let fine = solver.solve_cancel(&objective, seed ^ FINE_STREAM, cancel);
    TwoLevelResult {
        coarse: coarse_result,
        fine,
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu::TabuSearch;

    /// Additive toy objective: score = Σ values[i], capped at `max` picks.
    struct Toy {
        values: Vec<f64>,
        max: usize,
        required: Vec<usize>,
    }

    impl SubsetObjective for Toy {
        fn universe_size(&self) -> usize {
            self.values.len()
        }
        fn max_selected(&self) -> usize {
            self.max
        }
        fn required(&self) -> Vec<usize> {
            self.required.clone()
        }
        fn score(&self, selected: &[usize]) -> f64 {
            selected.iter().map(|&i| self.values[i]).sum()
        }
    }

    #[test]
    fn restriction_scores_through_the_inner_objective() {
        let toy = Toy {
            values: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            max: 2,
            required: vec![],
        };
        let r = RestrictedObjective::new(&toy, vec![4, 0, 2, 4]);
        assert_eq!(r.universe_size(), 3);
        assert_eq!(r.candidates(), &[0, 2, 4]);
        // Dense {1, 2} lifts to inner {2, 4}: 3 + 5.
        assert_eq!(r.score(&[1, 2]), 8.0);
        assert_eq!(r.lift(&[0, 2]), vec![0, 4]);
    }

    #[test]
    fn restriction_remaps_required_elements() {
        let toy = Toy {
            values: vec![1.0; 6],
            max: 3,
            required: vec![4],
        };
        let r = RestrictedObjective::new(&toy, vec![1, 4, 5]);
        assert_eq!(r.required(), vec![1]); // dense index of inner 4
        let solved = TabuSearch::default().solve(&r, 7);
        assert!(r.lift(&solved.selected).contains(&4));
    }

    #[test]
    #[should_panic(expected = "required element")]
    fn restriction_missing_required_panics() {
        let toy = Toy {
            values: vec![1.0; 4],
            max: 2,
            required: vec![3],
        };
        let _ = RestrictedObjective::new(&toy, vec![0, 1]);
    }

    #[test]
    fn restriction_caps_max_selected() {
        let toy = Toy {
            values: vec![1.0; 10],
            max: 5,
            required: vec![],
        };
        let r = RestrictedObjective::new(&toy, vec![0, 1]);
        assert_eq!(r.max_selected(), 2);
    }

    #[test]
    fn two_level_finds_the_flat_optimum_on_separable_clusters() {
        // 12 elements in 4 clusters of 3; cluster value = best member.
        // Coarse picks the 2 best clusters; fine (restricted to their 6
        // members) must recover the flat optimum — the two largest values,
        // which both live in cluster 3.
        let flat = Toy {
            values: vec![
                1.0, 2.0, 3.0, // cluster 0
                4.0, 5.0, 6.0, // cluster 1
                7.0, 8.0, 9.0, // cluster 2
                10.0, 11.0, 12.0, // cluster 3
            ],
            max: 2,
            required: vec![],
        };
        let members: Vec<Vec<usize>> = (0..4).map(|c| (3 * c..3 * c + 3).collect()).collect();
        let coarse = Toy {
            values: members
                .iter()
                .map(|m| m.iter().map(|&i| flat.values[i]).fold(0.0, f64::max))
                .collect(),
            max: 2,
            required: vec![],
        };
        let solver = TabuSearch::default();
        let result = solve_two_level(&coarse, &solver, 3, &CancelToken::none(), |winners| {
            let expanded: Vec<usize> = winners
                .iter()
                .flat_map(|&c| members[c].iter().copied())
                .collect();
            RestrictedObjective::new(&flat, expanded)
        });
        assert_eq!(result.coarse.selected, vec![2, 3]);
        let lifted = result.objective.lift(&result.fine.selected);
        assert_eq!(lifted, vec![10, 11]);
        let flat_direct = solver.solve(&flat, 3);
        assert_eq!(result.fine.score, flat_direct.score);
    }

    #[test]
    fn two_level_is_deterministic_and_uses_distinct_streams() {
        let flat = Toy {
            values: (0..20).map(|i| f64::from(i % 7)).collect(),
            max: 4,
            required: vec![],
        };
        let members: Vec<Vec<usize>> = (0..5).map(|c| (4 * c..4 * c + 4).collect()).collect();
        let coarse = Toy {
            values: members
                .iter()
                .map(|m| m.iter().map(|&i| flat.values[i]).sum())
                .collect(),
            max: 3,
            required: vec![],
        };
        let solver = TabuSearch::default();
        let run = |seed| {
            let r = solve_two_level(&coarse, &solver, seed, &CancelToken::none(), |winners| {
                let expanded: Vec<usize> = winners
                    .iter()
                    .flat_map(|&c| members[c].iter().copied())
                    .collect();
                RestrictedObjective::new(&flat, expanded)
            });
            (
                r.coarse.selected.clone(),
                r.objective.lift(&r.fine.selected),
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn two_level_respects_cancellation_anytime() {
        let flat = Toy {
            values: vec![1.0; 30],
            max: 5,
            required: vec![],
        };
        let coarse = Toy {
            values: vec![1.0; 10],
            max: 3,
            required: vec![],
        };
        let cancel = CancelToken::new();
        cancel.cancel(); // already fired: both levels cut to first evaluation
        let solver = TabuSearch::default();
        let result = solve_two_level(&coarse, &solver, 1, &cancel, |winners| {
            let expanded: Vec<usize> = winners.iter().flat_map(|&c| 3 * c..3 * c + 3).collect();
            RestrictedObjective::new(&flat, expanded)
        });
        assert!(result.coarse.timed_out);
        assert!(result.fine.timed_out);
        assert!(!result.coarse.selected.is_empty(), "anytime guarantee");
        assert!(!result.fine.selected.is_empty(), "anytime guarantee");
    }
}

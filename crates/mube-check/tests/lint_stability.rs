//! Property test: `lint_file` findings are stable under token-preserving
//! reformatting. The linter is a token-level scanner, so stretching
//! whitespace between tokens, appending trailing spaces, or inserting
//! blank lines (where that cannot break comment adjacency) must leave the
//! multiset of finding codes unchanged — only line numbers may move.

use mube_check::lint::lint_file;
use proptest::prelude::*;

/// Corpus of sources that together exercise every `MUBE1xx` rule, the
/// inline waivers, and the justification comments. None contain
/// multi-line string literals, so line-level reformatting is
/// token-preserving by construction.
const CORPUS: &[&str] = &[
    // MUBE101 (wall-clock in a clock-scoped crate) + MUBE102.
    "pub fn slow() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos().try_into().unwrap()\n}\n",
    // Waived MUBE101, plus a justified Relaxed.
    "pub fn f(c: &AtomicU64) -> u64 {\n    // lint-src: allow(MUBE101) — production clock impl\n    let _t = Instant::now();\n    // ordering: monotone counter\n    c.load(Ordering::Relaxed)\n}\n",
    // MUBE104 (bare Relaxed) + MUBE105 + MUBE106.
    "static mut GLOBAL: u64 = 0;\npub fn g(c: &AtomicU64) {\n    c.store(1, Ordering::Relaxed);\n    println!(\"done\");\n}\n",
    // MUBE103: empty expect message; clean expect alongside.
    "pub fn h(x: Option<u8>) -> u8 {\n    let a = x.expect(\"\");\n    let b = x.expect(\"x is set\");\n    a + b\n}\n",
    // Test items are stripped: unwrap inside #[test] is fine.
    "pub fn ok() {}\n\n#[test]\nfn inner() {\n    Some(1).unwrap();\n}\n",
    // Multi-line justification block above the use.
    "pub fn j(c: &AtomicU64) -> u64 {\n    // ordering: the counter is advisory and read\n    // by metrics only, never for synchronization.\n    c.load(Ordering::Relaxed)\n}\n",
];

/// Lints under a path inside a clock-scoped, print-linted crate so every
/// rule is armed.
const FILE: &str = "crates/mube-opt/src/generated.rs";

fn codes(text: &str) -> Vec<&'static str> {
    let mut c: Vec<&'static str> = lint_file(FILE, text).into_iter().map(|f| f.code).collect();
    c.sort_unstable();
    c
}

/// Is this line part of a `//` comment (possibly a justification block)?
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Applies a token-preserving reformat driven by `seed`:
/// * doubles the indentation of some lines,
/// * appends trailing spaces to some lines,
/// * inserts blank lines, but only where the *preceding* line is not a
///   comment (a blank line after a comment would detach it from the code
///   it justifies, which is a real finding change, not a formatting one).
fn reformat(text: &str, seed: u64) -> String {
    let mut state = seed | 1;
    let mut roll = move |modulus: u64| {
        // LCG; constants from Numerical Recipes.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let mut out = String::new();
    let mut prev_was_comment = false;
    for line in text.lines() {
        if !prev_was_comment && roll(3) == 0 {
            out.push('\n');
        }
        if roll(3) == 0 {
            let indent: String = line.chars().take_while(|c| *c == ' ').collect();
            out.push_str(&indent);
        }
        out.push_str(line);
        if roll(3) == 0 && !line.is_empty() {
            out.push_str("   ");
        }
        out.push('\n');
        prev_was_comment = is_comment_line(line);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn findings_survive_reformatting(seed in any::<u64>()) {
        for (i, src) in CORPUS.iter().enumerate() {
            let before = codes(src);
            let after = codes(&reformat(src, seed ^ i as u64));
            prop_assert_eq!(
                &before, &after,
                "corpus[{}] changed findings under reformat(seed={})", i, seed
            );
        }
    }
}

#[test]
fn corpus_exercises_every_rule() {
    let mut seen: Vec<&'static str> = CORPUS.iter().flat_map(|s| codes(s)).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        ["MUBE101", "MUBE102", "MUBE103", "MUBE104", "MUBE105", "MUBE106"],
        "corpus must cover the full rule set"
    );
}

#[test]
fn reformat_is_not_a_noop() {
    // Guard the property test against vacuity: the reformatter must
    // actually change the text for typical seeds.
    let changed = (0..8u64).any(|s| reformat(CORPUS[0], s) != CORPUS[0]);
    assert!(changed, "reformatter never altered the input");
}

//! Differential tests: outside an exploration the shims in
//! `mube_check::sync` / `mube_check::thread` must behave exactly like the
//! `std` primitives they wrap, so a model body is ordinary Rust that can
//! run un-checked. Each test exercises a shim and its `std` twin on the
//! same workload and compares outcomes.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mube_check::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex};
use mube_check::thread;

#[test]
fn mutex_counter_matches_std() {
    const THREADS: usize = 4;
    const INCREMENTS: usize = 250;

    let shim = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let shim = Arc::clone(&shim);
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    *shim.lock() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker finished");
    }

    let std_mutex = std::sync::Mutex::new(0u64);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..INCREMENTS {
                    *std_mutex.lock().expect("not poisoned") += 1;
                }
            });
        }
    });
    let expected = std_mutex.into_inner().expect("not poisoned");
    assert_eq!(*shim.lock(), expected);
    assert_eq!(expected, (THREADS * INCREMENTS) as u64);
}

#[test]
fn atomic_rmw_results_match_std() {
    let shim = AtomicU64::new(7);
    let real = std::sync::atomic::AtomicU64::new(7);

    for order in [Ordering::Relaxed, Ordering::SeqCst] {
        assert_eq!(shim.fetch_add(5, order), real.fetch_add(5, order));
        assert_eq!(shim.fetch_max(3, order), real.fetch_max(3, order));
        assert_eq!(shim.fetch_max(99, order), real.fetch_max(99, order));
        assert_eq!(shim.swap(11, order), real.swap(11, order));
        assert_eq!(shim.load(order), real.load(order));
    }

    // compare_exchange: success and failure arms both mirror std.
    assert_eq!(
        shim.compare_exchange(11, 20, Ordering::SeqCst, Ordering::SeqCst),
        real.compare_exchange(11, 20, Ordering::SeqCst, Ordering::SeqCst),
    );
    assert_eq!(
        shim.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst),
        real.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst),
    );
    assert_eq!(shim.load(Ordering::SeqCst), real.load(Ordering::SeqCst));
}

#[test]
fn atomic_bool_and_usize_match_std() {
    let shim = AtomicBool::new(false);
    let real = std::sync::atomic::AtomicBool::new(false);
    assert_eq!(
        shim.swap(true, Ordering::SeqCst),
        real.swap(true, Ordering::SeqCst)
    );
    assert_eq!(
        shim.compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst),
        real.compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst),
    );
    assert_eq!(shim.load(Ordering::SeqCst), real.load(Ordering::SeqCst));

    let n = AtomicUsize::new(0);
    n.store(41, Ordering::SeqCst);
    assert_eq!(n.fetch_add(1, Ordering::SeqCst), 41);
    assert_eq!(n.load(Ordering::SeqCst), 42);
}

#[test]
fn try_lock_contention_matches_std() {
    let m = Mutex::new(1);
    {
        let _held = m.lock();
        assert!(m.try_lock().is_none(), "shim try_lock must fail while held");
    }
    assert!(
        m.try_lock().is_some(),
        "shim try_lock must succeed when free"
    );

    let s = std::sync::Mutex::new(1);
    {
        let _held = s.lock().expect("not poisoned");
        assert!(s.try_lock().is_err());
    }
    assert!(s.try_lock().is_ok());
}

#[test]
fn spawn_returns_value_and_propagates_panics() {
    let ok = thread::spawn(|| 6 * 7).join();
    assert_eq!(ok.expect("clean thread"), 42);

    let err = thread::spawn(|| panic!("boom")).join();
    assert!(err.is_err(), "panic must surface as Err, like std");

    // std twin for the panic path.
    let std_err = std::thread::spawn(|| panic!("boom")).join();
    assert_eq!(err.is_err(), std_err.is_err());
}

//! `mube lint-src`: a token-level source-invariant linter for the
//! workspace's own Rust code.
//!
//! The compiler cannot enforce project rules like "solver code must use the
//! injectable clock" or "`Ordering::Relaxed` needs a written justification".
//! This module scans `crates/*/src/**/*.rs` with a small hand-rolled lexer
//! (no external parser) and emits stable `MUBE1xx` codes — same contract as
//! the catalog linter's `MUBE0xx` space: codes are never renumbered.
//!
//! | code | severity | rule |
//! |------|----------|------|
//! | MUBE101 | error | `Instant::now` / `SystemTime::now` / `thread::sleep` in solver/exec crates (use the injectable `VirtualClock`/`ManualClock`) |
//! | MUBE102 | error | `.unwrap()` outside tests/benches (use `.expect("why")` or handle the error) |
//! | MUBE103 | warning | `.expect("")` with an empty message |
//! | MUBE104 | warning | `Ordering::Relaxed` without an adjacent `// ordering:` justification comment |
//! | MUBE105 | error | `static mut` (use atomics or `OnceLock`) |
//! | MUBE106 | warning | `println!`/`eprintln!` in library crates (return strings or use the server's log paths) |
//! | MUBE107 | error | blocking socket read/connect in network code (`repl.rs`/`http.rs`) without an adjacent `// deadline:` comment naming the bound |
//! | MUBE108 | error | `sync_all`/`sync_data`/`flush` result discarded in durability code (`persist.rs`/`repl.rs`/`fsck.rs`) without an adjacent `// durability:` justification |
//!
//! Suppression, narrowest first: a `// lint-src: allow(MUBE1xx)` comment on
//! the offending line or the line above waives one site; an allowlist file
//! (`lint-src.allow`, `CODE path-prefix` per line) waives a code for a file
//! or directory. Code under `#[cfg(test)]` / `#[test]` is skipped entirely,
//! as are `tests/`, `benches/`, and `examples/` trees.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Finding severity. `Error` always fails the gate; `Warning` fails only
/// under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/justification problems; fail only under `--deny`.
    Warning,
    /// Hard project-rule violations; always fail.
    Error,
}

impl Severity {
    /// Lowercase label, as rendered.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A lint rule's static description (the `MUBE1xx` table).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable code, `MUBE101`..
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Gate behavior.
    pub severity: Severity,
    /// One-line description for `--help`/docs.
    pub summary: &'static str,
}

/// Every rule, in code order. Codes are stable: never renumber.
pub const RULES: [Rule; 8] = [
    Rule {
        code: "MUBE101",
        name: "wall-clock-in-solver",
        severity: Severity::Error,
        summary: "Instant/SystemTime/thread::sleep in solver or exec code; \
                  inject VirtualClock/ManualClock instead",
    },
    Rule {
        code: "MUBE102",
        name: "unwrap-outside-tests",
        severity: Severity::Error,
        summary: ".unwrap() outside tests/benches; use .expect(\"why\") or \
                  handle the error",
    },
    Rule {
        code: "MUBE103",
        name: "empty-expect-message",
        severity: Severity::Warning,
        summary: ".expect(\"\") carries no diagnostic; say what held the \
                  invariant",
    },
    Rule {
        code: "MUBE104",
        name: "relaxed-ordering-unjustified",
        severity: Severity::Warning,
        summary: "Ordering::Relaxed without an adjacent `// ordering:` \
                  justification comment",
    },
    Rule {
        code: "MUBE105",
        name: "static-mut",
        severity: Severity::Error,
        summary: "static mut is a data race waiting to happen; use atomics \
                  or OnceLock",
    },
    Rule {
        code: "MUBE106",
        name: "print-in-library",
        severity: Severity::Warning,
        summary: "println!/eprintln! in a library crate; return strings or \
                  use the server's log paths",
    },
    Rule {
        code: "MUBE107",
        name: "unbounded-network-read",
        severity: Severity::Error,
        summary: "blocking read/connect in replication or HTTP code without \
                  an adjacent `// deadline:` comment naming the bound",
    },
    Rule {
        code: "MUBE108",
        name: "discarded-durability-result",
        severity: Severity::Error,
        summary: "sync_all/sync_data/flush result discarded in durability \
                  code without an adjacent `// durability:` justification",
    },
];

fn rule(code: &str) -> &'static Rule {
    RULES
        .iter()
        .find(|r| r.code == code)
        .expect("rule codes are static")
}

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule code.
    pub code: &'static str,
    /// Gate behavior of the rule.
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the site.
    pub message: String,
}

/// One allowlist entry: waives `code` for every file whose workspace
/// relative path starts with `path_prefix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The waived code (`MUBE1xx`).
    pub code: String,
    /// Path prefix, forward slashes (file or directory).
    pub path_prefix: String,
}

/// Parses the allowlist format: one `CODE path-prefix` per line, `#`
/// comments and blank lines ignored.
///
/// # Errors
/// On a malformed line or an unknown code.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(code), Some(path)) = (parts.next(), parts.next()) else {
            return Err(format!("allowlist line {}: want `CODE path`", idx + 1));
        };
        if parts.next().is_some() {
            return Err(format!("allowlist line {}: trailing tokens", idx + 1));
        }
        if !RULES.iter().any(|r| r.code == code) {
            return Err(format!("allowlist line {}: unknown code `{code}`", idx + 1));
        }
        entries.push(AllowEntry {
            code: code.to_string(),
            path_prefix: path.to_string(),
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident,
    Punct(char),
    /// String literal (regular, raw, byte); `empty` = zero-length content.
    Str {
        empty: bool,
    },
    Num,
    CharLit,
    Lifetime,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    /// Identifier text (empty for other kinds — the rules only compare
    /// idents).
    text: String,
    line: usize,
}

struct Lexed {
    toks: Vec<Tok>,
    /// Concatenated comment text per 1-based line.
    comments: BTreeMap<usize, String>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes Rust source. Whitespace-insensitive by construction: the token
/// stream (and the line attribution of comments relative to code) is all
/// the rules ever see.
#[allow(clippy::too_many_lines)]
fn lex(text: &str) -> Lexed {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let n = bytes.len();

    let count_newlines = |from: usize, to: usize| -> usize {
        bytes[from..to].iter().filter(|&&b| b == b'\n').count()
    };

    while i < n {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                let entry = comments.entry(line).or_default();
                entry.push(' ');
                entry.push_str(&text[start..i]);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_newlines(start, i);
                let entry = comments.entry(start_line).or_default();
                entry.push(' ');
                entry.push_str(&text[start..i.min(n)]);
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i += 1;
                while i < n {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let empty = i == start + 2;
                line += count_newlines(start, i.min(n));
                toks.push(Tok {
                    kind: TokKind::Str { empty },
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` followed by a non-quote is
                // a lifetime; `'a'`, `'\n'`, `'"'` are char literals.
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                let after = bytes.get(i + 2).copied().unwrap_or(0);
                if next != b'\\' && is_ident_start(next) && after != b'\'' {
                    i += 1;
                    while i < n && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                } else {
                    i += 1;
                    while i < n {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::CharLit,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                while i < n {
                    let c = bytes[i];
                    if is_ident_continue(c) {
                        i += 1;
                    } else if c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` continues the number; `1..2` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::new(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let word = &text[start..i];
                // Raw/byte string prefixes: r"..", r#".."#, b"..", br"..".
                if matches!(word, "r" | "b" | "br" | "rb")
                    && matches!(bytes.get(i), Some(b'"' | b'#'))
                {
                    let mut hashes = 0usize;
                    while bytes.get(i + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if bytes.get(i + hashes) == Some(&b'"') {
                        let content_start = i + hashes + 1;
                        let mut j = content_start;
                        let closer: Vec<u8> = std::iter::once(b'"')
                            .chain(std::iter::repeat_n(b'#', hashes))
                            .collect();
                        while j < n && !bytes[j..].starts_with(&closer) {
                            j += 1;
                        }
                        let empty = j == content_start;
                        let end = (j + closer.len()).min(n);
                        let start_line = line;
                        line += count_newlines(start, end);
                        toks.push(Tok {
                            kind: TokKind::Str { empty },
                            text: String::new(),
                            line: start_line,
                        });
                        i = end;
                        continue;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: word.to_string(),
                    line,
                });
            }
            _ if b < 128 => {
                toks.push(Tok {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
            _ => i += 1, // non-ASCII outside strings/comments: skip
        }
    }
    Lexed { toks, comments }
}

// ---------------------------------------------------------------------------
// Test-item stripping
// ---------------------------------------------------------------------------

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i)?.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    let t = toks.get(i)?;
    if t.kind == TokKind::Ident {
        Some(&t.text)
    } else {
        None
    }
}

/// From the index of the attribute's `[`, returns `(idents inside, index
/// just past the matching `]`)`.
fn attr_span(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    debug_assert_eq!(punct_at(toks, open), Some('['));
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i + 1);
                }
            }
            TokKind::Ident => idents.push(toks[i].text.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, toks.len())
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]` — but *not*
/// `#[cfg(not(test))]` (that is production code) and not `#[cfg_attr]`.
fn is_test_attr(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") if idents.len() == 1 => true,
        Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
        _ => false,
    }
}

/// Skips one item starting at `i` (after its attributes): to the matching
/// `}` of its first brace block, or past a `;` that arrives first.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some(';') if depth == 0 => return i + 1,
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Removes test-only items (`#[cfg(test)] mod …`, `#[test] fn …`) from the
/// token stream, so the rules only see production code.
fn strip_test_items(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if punct_at(toks, i) == Some('#') {
            // Inner attribute `#![…]`: keep, never an item gate.
            if punct_at(toks, i + 1) == Some('!') && punct_at(toks, i + 2) == Some('[') {
                let (_, end) = attr_span(toks, i + 2);
                out.extend(toks[i..end].iter().cloned());
                i = end;
                continue;
            }
            if punct_at(toks, i + 1) == Some('[') {
                let (idents, end) = attr_span(toks, i + 1);
                if is_test_attr(&idents) {
                    // Skip any further attributes, then the item itself.
                    let mut j = end;
                    while punct_at(toks, j) == Some('#') && punct_at(toks, j + 1) == Some('[') {
                        let (_, e) = attr_span(toks, j + 1);
                        j = e;
                    }
                    i = skip_item(toks, j);
                    continue;
                }
                out.extend(toks[i..end].iter().cloned());
                i = end;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Which crate a workspace-relative path belongs to, e.g. `mube-opt` for
/// `crates/mube-opt/src/lib.rs`. `None` when not under `crates/*/src/`.
fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(krate)
}

/// Crates whose non-test code must use the injectable clock (MUBE101): the
/// solver and executor, where wall-clock reads break replay determinism.
const CLOCK_SCOPED: [&str; 2] = ["mube-opt", "mube-exec"];

/// Crates exempt from MUBE106: binaries whose product *is* stdout, and the
/// bench harness.
const PRINT_EXEMPT: [&str; 2] = ["mube-cli", "mube-bench"];

/// mube-serve files whose fsync/flush results carry a durability promise
/// (MUBE108): the journal, the replication pump, and the offline checker.
const DURABILITY_SCOPED: [&str; 3] = ["/persist.rs", "/repl.rs", "/fsck.rs"];

fn comment_near(comments: &BTreeMap<usize, String>, line: usize, needle: &str) -> bool {
    if comments.get(&line).is_some_and(|c| c.contains(needle)) {
        return true;
    }
    // Walk the contiguous block of comment lines immediately above — a
    // justification may wrap over several `//` lines.
    let mut l = line;
    while l > 1 {
        l -= 1;
        match comments.get(&l) {
            Some(c) if c.contains(needle) => return true,
            Some(_) => {}
            None => return false,
        }
    }
    false
}

/// Lints one file's text. `rel_path` is workspace-relative with forward
/// slashes; it decides which rules apply. Inline `// lint-src: allow(..)`
/// waivers are honored here; the allowlist file is applied by
/// [`lint_workspace`].
#[must_use]
pub fn lint_file(rel_path: &str, text: &str) -> Vec<Finding> {
    let Some(krate) = crate_of(rel_path) else {
        return Vec::new();
    };
    if rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
    {
        return Vec::new();
    }
    let lexed = lex(text);
    let toks = strip_test_items(&lexed.toks);
    let comments = &lexed.comments;
    let mut findings = Vec::new();
    let mut push = |code: &'static str, line: usize, message: String| {
        let waiver = format!("lint-src: allow({code})");
        if comment_near(comments, line, &waiver) {
            return;
        }
        findings.push(Finding {
            code,
            severity: rule(code).severity,
            file: rel_path.to_string(),
            line,
            message,
        });
    };

    let clock_scoped = CLOCK_SCOPED.contains(&krate);
    let net_scoped =
        krate == "mube-serve" && (rel_path.ends_with("/repl.rs") || rel_path.ends_with("/http.rs"));
    let durability_scoped =
        krate == "mube-serve" && DURABILITY_SCOPED.iter().any(|f| rel_path.ends_with(f));
    let print_exempt = PRINT_EXEMPT.contains(&krate)
        || rel_path.contains("/bin/")
        || rel_path.ends_with("/main.rs");
    let bench_crate = krate == "mube-bench";

    let path2 = |i: usize| -> Option<(&str, &str)> {
        let a = ident_at(&toks, i)?;
        if punct_at(&toks, i + 1) == Some(':') && punct_at(&toks, i + 2) == Some(':') {
            Some((a, ident_at(&toks, i + 3)?))
        } else {
            None
        }
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        if clock_scoped {
            if let Some((a, b)) = path2(i) {
                let hit = matches!(
                    (a, b),
                    ("Instant" | "SystemTime", "now") | ("thread", "sleep")
                );
                if hit {
                    push(
                        "MUBE101",
                        line,
                        format!(
                            "`{a}::{b}` in {krate}: inject the clock \
                             (VirtualClock/ManualClock) so runs replay deterministically"
                        ),
                    );
                }
            }
        }
        if !bench_crate
            && punct_at(&toks, i) == Some('.')
            && ident_at(&toks, i + 1) == Some("unwrap")
            && punct_at(&toks, i + 2) == Some('(')
        {
            push(
                "MUBE102",
                toks[i + 1].line,
                "`.unwrap()` outside tests: use `.expect(\"why this holds\")` \
                 or propagate the error"
                    .to_string(),
            );
        }
        if !bench_crate
            && punct_at(&toks, i) == Some('.')
            && ident_at(&toks, i + 1) == Some("expect")
            && punct_at(&toks, i + 2) == Some('(')
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Str { empty: true })
        {
            push(
                "MUBE103",
                toks[i + 1].line,
                "`.expect(\"\")` has no diagnostic value: say what upheld the invariant"
                    .to_string(),
            );
        }
        if let Some(("Ordering", "Relaxed")) = path2(i) {
            if !comment_near(comments, line, "ordering:") {
                push(
                    "MUBE104",
                    line,
                    "`Ordering::Relaxed` without an adjacent `// ordering:` comment \
                     justifying why relaxed is sufficient"
                        .to_string(),
                );
            }
        }
        if ident_at(&toks, i) == Some("static") && ident_at(&toks, i + 1) == Some("mut") {
            push(
                "MUBE105",
                line,
                "`static mut` invites data races: use an atomic or `OnceLock`".to_string(),
            );
        }
        if net_scoped {
            let method_read = punct_at(&toks, i) == Some('.')
                && matches!(
                    ident_at(&toks, i + 1),
                    Some("read" | "read_exact" | "read_to_end" | "read_to_string")
                )
                && punct_at(&toks, i + 2) == Some('(');
            let connect = matches!(path2(i), Some(("TcpStream", "connect")));
            if method_read || connect {
                let at = if method_read { toks[i + 1].line } else { line };
                if !comment_near(comments, at, "deadline:") {
                    push(
                        "MUBE107",
                        at,
                        "blocking network call without an adjacent `// deadline:` \
                         comment naming the timeout that bounds it (slowloris \
                         and dead-peer hangs start here)"
                            .to_string(),
                    );
                }
            }
        }
        if durability_scoped
            && punct_at(&toks, i) == Some('.')
            && matches!(
                ident_at(&toks, i + 1),
                Some("sync_all" | "sync_data" | "flush")
            )
            && punct_at(&toks, i + 2) == Some('(')
        {
            let name = ident_at(&toks, i + 1).expect("matched ident");
            let at = toks[i + 1].line;
            // Scan to the call's matching close paren.
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < toks.len() {
                match punct_at(&toks, j) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let after = punct_at(&toks, j + 1);
            // `f.sync_all();` drops the Result on the floor; `let _ = …`
            // launders it past the compiler's must_use warning. `?`, a
            // continued method chain, or any other consumer counts as
            // handling — except a chain whose whole value is bound to `_`.
            let discarded_stmt = after == Some(';');
            let let_discarded = after != Some('?') && {
                let mut k = i;
                while k > 0 && !matches!(punct_at(&toks, k - 1), Some(';' | '{' | '}')) {
                    k -= 1;
                }
                ident_at(&toks, k) == Some("let")
                    && ident_at(&toks, k + 1) == Some("_")
                    && punct_at(&toks, k + 2) == Some('=')
            };
            if (discarded_stmt || let_discarded) && !comment_near(comments, at, "durability:") {
                push(
                    "MUBE108",
                    at,
                    format!(
                        "`.{name}()` result discarded in durability-critical code: \
                         an unreported fsync failure silently voids the journal's \
                         crash promise; check it, propagate it, or justify with an \
                         adjacent `// durability:` comment"
                    ),
                );
            }
        }
        if !print_exempt
            && matches!(ident_at(&toks, i), Some("println" | "eprintln"))
            && punct_at(&toks, i + 1) == Some('!')
        {
            let name = ident_at(&toks, i).expect("matched ident");
            push(
                "MUBE106",
                line,
                format!(
                    "`{name}!` in library crate {krate}: return the text or use \
                     the server's log paths"
                ),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk + reporting
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under `root`, applying `allow`
/// entries. Findings are sorted by file then line.
///
/// # Errors
/// On I/O failures walking or reading the tree.
pub fn lint_workspace(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if crates_dir.is_dir() {
        collect_rs_files(&crates_dir, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        findings.extend(lint_file(&rel, &text).into_iter().filter(|f| {
            !allow
                .iter()
                .any(|a| a.code == f.code && f.file.starts_with(&a.path_prefix))
        }));
    }
    Ok(findings)
}

/// Renders findings as the human-readable report (mirrors `mube lint`).
#[must_use]
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        writeln!(
            out,
            "{}[{}]: {}:{}: {}",
            f.severity.label(),
            f.code,
            f.file,
            f.line,
            f.message
        )
        .expect("string write");
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    if findings.is_empty() {
        out.push_str("mube lint-src: no findings\n");
    } else {
        writeln!(
            out,
            "mube lint-src: {} finding{} ({errors} error{}, {warnings} warning{})",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        )
        .expect("string write");
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a deterministic JSON array (machine consumers, CI).
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.code,
            f.severity.label(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        )
        .expect("string write");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "crates/mube-opt/src/fake.rs";

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_file(FILE, src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_only_in_scoped_crates() {
        let src = "fn t() { let x = Instant::now(); std::thread::sleep(d); }\n";
        assert_eq!(codes(&lint_file(FILE, src)), ["MUBE101", "MUBE101"]);
        // Same text in an unscoped crate: clean.
        assert!(lint_file("crates/mube-serve/src/fake.rs", src).is_empty());
    }

    #[test]
    fn unwrap_and_empty_expect() {
        let src = "fn t() { x.unwrap(); y.expect(\"\"); z.expect(\"held\"); }\n";
        assert_eq!(codes(&lint_file(FILE, src)), ["MUBE102", "MUBE103"]);
    }

    #[test]
    fn unwrap_in_test_mod_is_skipped() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_file(FILE, src).is_empty());
    }

    #[test]
    fn test_attr_fn_is_skipped_but_not_cfg_not_test() {
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lint_file(FILE, src).is_empty());
        let src = "#[cfg(not(test))]\nfn t() { x.unwrap(); }\n";
        assert_eq!(codes(&lint_file(FILE, src)), ["MUBE102"]);
    }

    #[test]
    fn relaxed_needs_ordering_comment() {
        let bare = "fn t() { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(codes(&lint_file(FILE, bare)), ["MUBE104"]);
        let above =
            "fn t() {\n    // ordering: pure counter\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_file(FILE, above).is_empty());
        let inline = "fn t() { c.fetch_add(1, Ordering::Relaxed); // ordering: pure counter\n}\n";
        assert!(lint_file(FILE, inline).is_empty());
        // Spacing-insensitive: `Ordering :: Relaxed` still matches.
        let spaced = "fn t() { c.fetch_add(1, Ordering :: Relaxed); }\n";
        assert_eq!(codes(&lint_file(FILE, spaced)), ["MUBE104"]);
    }

    #[test]
    fn static_mut_and_library_prints() {
        let src = "static mut COUNTER: u32 = 0;\nfn t() { println!(\"x\"); eprintln!(\"y\"); }\n";
        assert_eq!(
            codes(&lint_file(FILE, src)),
            ["MUBE105", "MUBE106", "MUBE106"]
        );
        // The CLI crate may print.
        assert_eq!(
            codes(&lint_file("crates/mube-cli/src/fake.rs", src)),
            ["MUBE105"]
        );
    }

    #[test]
    fn inline_waiver_suppresses_one_site() {
        let src =
            "fn t() {\n    // lint-src: allow(MUBE102)\n    x.unwrap();\n    y.unwrap();\n}\n";
        let found = lint_file(FILE, src);
        assert_eq!(codes(&found), ["MUBE102"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = "fn t() -> &'static str { \"x.unwrap() Ordering::Relaxed static mut\" }\n// x.unwrap()\n/* println!(\"\") */\n";
        assert!(lint_file(FILE, src).is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_lex() {
        let src =
            "fn t<'a>(x: &'a str) { let _ = r#\"has \".unwrap()\" inside\"#; let _ = 'c'; }\n";
        assert!(lint_file(FILE, src).is_empty());
    }

    #[test]
    fn non_crate_paths_are_ignored() {
        assert!(lint_file("tests/foo.rs", "fn t() { x.unwrap(); }").is_empty());
        assert!(lint_file("crates/mube-opt/tests/t.rs", "fn t() { x.unwrap(); }").is_empty());
        assert!(lint_file("crates/mube-opt/benches/b.rs", "fn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn allowlist_parses_and_rejects() {
        let text = "# comment\nMUBE106 crates/mube-serve/src/server.rs\n\nMUBE104 crates/mube-opt # trailing comment\n";
        let entries = parse_allowlist(text).expect("valid allowlist");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].code, "MUBE106");
        assert_eq!(entries[1].path_prefix, "crates/mube-opt");
        assert!(parse_allowlist("MUBE999 foo\n").is_err());
        assert!(parse_allowlist("MUBE104\n").is_err());
        assert!(parse_allowlist("MUBE104 a b\n").is_err());
    }

    #[test]
    fn render_and_json_shapes() {
        let findings = vec![Finding {
            code: "MUBE105",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "`static mut` invites data races".into(),
        }];
        let text = render(&findings);
        assert!(
            text.contains("error[MUBE105]: crates/x/src/lib.rs:3:"),
            "{text}"
        );
        assert!(text.contains("1 finding (1 error, 0 warnings)"), "{text}");
        let json = to_json(&findings);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"code\":\"MUBE105\""), "{json}");
        assert_eq!(to_json(&[]), "[]");
        assert!(render(&[]).contains("no findings"));
    }

    #[test]
    fn rule_codes_are_stable_and_distinct() {
        let codes: Vec<_> = RULES.iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            [
                "MUBE101", "MUBE102", "MUBE103", "MUBE104", "MUBE105", "MUBE106", "MUBE107",
                "MUBE108"
            ]
        );
        let errors = RULES
            .iter()
            .filter(|r| r.severity == Severity::Error)
            .count();
        assert_eq!(errors, 5, "101/102/105/107/108 are errors; the rest warn");
    }

    #[test]
    fn mube107_flags_bare_network_reads_in_net_files() {
        const NET: &str = "crates/mube-serve/src/repl.rs";
        let bare = "fn pump(s: &mut TcpStream) {\n    let mut b = [0u8; 8];\n    \
                    s.read_exact(&mut b).ok();\n}\n";
        let found = lint_file(NET, bare);
        assert_eq!(codes(&found), ["MUBE107"]);
        assert_eq!(found[0].severity, Severity::Error);

        let justified = "fn pump(s: &mut TcpStream) {\n    let mut b = [0u8; 8];\n    \
                         // deadline: socket read timeout set by the caller\n    \
                         s.read_exact(&mut b).ok();\n}\n";
        assert!(lint_file(NET, justified).is_empty());

        let connect = "fn dial() {\n    let s = TcpStream::connect(\"x:1\");\n}\n";
        assert_eq!(codes(&lint_file(NET, connect)), ["MUBE107"]);

        // Other mube-serve files (and other crates) are out of scope: the
        // rule is about the replication/HTTP network paths specifically.
        assert!(lint_file("crates/mube-serve/src/server.rs", bare).is_empty());
        assert!(lint_file("crates/mube-exec/src/probe.rs", bare).is_empty());

        // The inline waiver works like every other rule's.
        let waived = "fn pump(s: &mut TcpStream) {\n    \
                      // lint-src: allow(MUBE107)\n    \
                      s.read_to_end(&mut Vec::new()).ok();\n}\n";
        assert!(lint_file(NET, waived).is_empty());
    }

    #[test]
    fn mube108_flags_discarded_sync_results_in_durability_files() {
        const DUR: &str = "crates/mube-serve/src/persist.rs";

        // A bare statement and a `let _ =` both drop the Result.
        let bare = "fn seal(f: &File) {\n    f.sync_all();\n}\n";
        let found = lint_file(DUR, bare);
        assert_eq!(codes(&found), ["MUBE108"]);
        assert_eq!(found[0].severity, Severity::Error);
        let laundered = "fn seal(f: &File) {\n    let _ = f.sync_all();\n}\n";
        assert_eq!(codes(&lint_file(DUR, laundered)), ["MUBE108"]);
        let chained_away = "fn seal(f: &File) {\n    let _ = f.flush().ok();\n}\n";
        assert_eq!(codes(&lint_file(DUR, chained_away)), ["MUBE108"]);

        // Propagating or consuming the Result is handling it.
        let propagated =
            "fn seal(f: &File) -> std::io::Result<()> {\n    f.sync_all()?;\n    Ok(())\n}\n";
        assert!(lint_file(DUR, propagated).is_empty());
        let let_propagated =
            "fn seal(f: &File) -> std::io::Result<()> {\n    let _ = f.sync_data()?;\n    Ok(())\n}\n";
        assert!(lint_file(DUR, let_propagated).is_empty());
        let consumed = "fn seal(f: &File) -> bool {\n    f.sync_all().is_ok()\n}\n";
        assert!(lint_file(DUR, consumed).is_empty());

        // An adjacent `// durability:` comment justifies a best-effort sync.
        let justified = "fn seal(f: &File) {\n    \
                         // durability: directory fsync is best-effort; data files are synced\n    \
                         let _ = f.sync_all();\n}\n";
        assert!(lint_file(DUR, justified).is_empty());

        // Scope: repl.rs and fsck.rs are in; other files/crates are not.
        assert_eq!(
            codes(&lint_file("crates/mube-serve/src/fsck.rs", bare)),
            ["MUBE108"]
        );
        assert!(lint_file("crates/mube-serve/src/server.rs", bare).is_empty());
        assert!(lint_file("crates/mube-core/src/persist.rs", bare).is_empty());
    }
}

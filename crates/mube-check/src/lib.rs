//! mube-check: correctness tooling for the mube workspace.
//!
//! Two halves, one goal — keep the solver's answer trustworthy as the
//! concurrent machinery grows:
//!
//! 1. **A bounded concurrency model checker** ([`engine`], [`sync`],
//!    [`thread`]): loom-style schedule exploration over instrumented
//!    `Mutex`/atomic/thread shims, with concrete models of the workspace's
//!    concurrency-critical kernels in [`models`] (portfolio champion fold,
//!    `SimilarityCache` publication, circuit breaker, store eviction) plus
//!    a WAL crash-point explorer. `cargo test -p mube-check` is the
//!    exhaustive `check-model` CI gate.
//! 2. **A source-invariant linter** ([`lint`]): token-level scanning of the
//!    workspace's own Rust code for project rules the compiler can't
//!    enforce, surfaced as stable `MUBE1xx` codes via `mube lint-src`.
//!
//! The shims pass through to `std` outside an exploration, so a model body
//! is ordinary Rust that can also run un-checked (see
//! `tests/differential.rs`).

pub mod engine;
pub mod lint;
pub mod models;
pub mod sync;
pub mod thread;

pub use engine::{Explorer, Failure, Report};

//! The bounded schedule explorer: a loom-style stateless model checker.
//!
//! A *model* is a closure that builds a small concurrent program out of the
//! instrumented primitives in [`crate::sync`] and [`crate::thread`] and
//! asserts its invariants with ordinary `assert!`s. [`Explorer::check`] runs
//! the model over and over, each time forcing a different thread
//! interleaving, until every schedule within the preemption bound has been
//! explored (or an assertion fails, which stops the search and reports the
//! offending schedule).
//!
//! ## How a run works
//!
//! Model threads execute as real OS threads, but *serialized*: exactly one
//! runs at any moment. Every operation on a shim primitive (mutex lock,
//! atomic load/store, spawn, join) is a **scheduling point**: the thread
//! parks, hands control to the scheduler, and continues only when granted
//! the next step. The scheduler therefore observes every thread parked at a
//! decision point and can enumerate which thread moves next.
//!
//! Schedules are explored depth-first: the first run takes the default
//! choice at every decision; subsequent runs replay a recorded prefix and
//! deviate at the deepest decision with an unexplored alternative. Because
//! model execution is deterministic given the schedule (models must not
//! branch on wall-clock time or OS randomness), a prefix replays exactly.
//!
//! ## Preemption bound
//!
//! A *preemption* is a context switch away from a thread that could have
//! kept running. Exhaustive search is exponential in schedule length, but
//! most concurrency bugs need only a handful of preemptions (empirically 2
//! — see CHESS), so the explorer only enumerates schedules with at most
//! [`Explorer::preemption_bound`] preemptions. Switches away from a blocked
//! or finished thread are free. Within the bound the search is exhaustive:
//! [`Report::complete`] says so.
//!
//! ## What is modeled
//!
//! The explorer interleaves at sequential-consistency granularity: shim
//! atomics execute as `SeqCst` regardless of the `Ordering` argument, so
//! weak-memory reorderings are *not* explored — the tool targets logic
//! races (atomicity violations, lock-order inversions, lost updates,
//! check-then-act windows), not fence placement. `Ordering` arguments are
//! accepted so models can mirror production code verbatim.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel panic payload used to unwind model threads when a run aborts
/// (assertion failure elsewhere, deadlock, or step-budget exhaustion). Not
/// itself a failure.
pub(crate) struct Abort;

/// What a parked thread needs before its next operation can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Blocker {
    /// The shim mutex with this engine id must be free.
    Mutex(usize),
    /// The thread with this id must have finished.
    Join(usize),
}

/// Lifecycle state of one model thread, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a scheduling point whose operation can run any time.
    Ready,
    /// Parked at a scheduling point that needs its blocker satisfied.
    Blocked(Blocker),
    /// The thread's closure returned (or unwound).
    Finished,
}

/// Who may run right now: the scheduler, or exactly one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Scheduler,
    Thread(usize),
}

#[derive(Debug)]
struct ExecState {
    turn: Turn,
    threads: Vec<Status>,
    mutex_owner: Vec<Option<usize>>,
    abort: bool,
    failure: Option<String>,
}

/// One controlled execution: shared state + condvar for the turn-taking
/// protocol between the scheduler and the model threads.
#[derive(Debug)]
pub(crate) struct Engine {
    state: Mutex<ExecState>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The engine controlling the current OS thread, if it is a model thread of
/// an active exploration (`None` in ordinary code — shims pass through to
/// `std` in that case).
pub(crate) fn current() -> Option<(Arc<Engine>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

impl Engine {
    fn new() -> Arc<Engine> {
        Arc::new(Engine {
            state: Mutex::new(ExecState {
                turn: Turn::Scheduler,
                threads: Vec::new(),
                mutex_owner: Vec::new(),
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().expect("engine state lock poisoned")
    }

    /// Registers a new shim mutex and returns its engine id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock_state();
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    /// A scheduling point: parks the calling model thread until the
    /// scheduler grants it the next step. On return the thread is the only
    /// one running and (if it declared a mutex blocker) the mutex is free.
    ///
    /// # Panics
    /// Unwinds with [`Abort`] if the run is aborting.
    pub(crate) fn yield_op(&self, tid: usize, blocker: Option<Blocker>) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::resume_unwind(Box::new(Abort));
        }
        st.threads[tid] = match blocker {
            None => Status::Ready,
            Some(b) => Status::Blocked(b),
        };
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                std::panic::resume_unwind(Box::new(Abort));
            }
            if st.turn == Turn::Thread(tid) {
                return;
            }
            st = self.cv.wait(st).expect("engine state lock poisoned");
        }
    }

    /// Marks `id` owned by `tid`. Call only right after being granted a
    /// `Blocker::Mutex(id)` yield (the scheduler guaranteed it was free).
    pub(crate) fn acquire_mutex(&self, id: usize, tid: usize) {
        let mut st = self.lock_state();
        debug_assert!(st.mutex_owner[id].is_none(), "granted a held mutex");
        st.mutex_owner[id] = Some(tid);
    }

    /// Non-blocking acquire for `try_lock`: true iff the mutex was free.
    pub(crate) fn try_acquire_mutex(&self, id: usize, tid: usize) -> bool {
        let mut st = self.lock_state();
        if st.mutex_owner[id].is_none() {
            st.mutex_owner[id] = Some(tid);
            true
        } else {
            false
        }
    }

    /// Releases a shim mutex. Never waits and never panics — it is called
    /// from guard `Drop` impls, possibly while unwinding.
    pub(crate) fn release_mutex(&self, id: usize) {
        if let Ok(mut st) = self.state.lock() {
            st.mutex_owner[id] = None;
        }
    }

    /// Records an invariant failure (first one wins) and aborts the run:
    /// every parked thread wakes and unwinds via [`Abort`].
    pub(crate) fn record_failure(&self, msg: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Spawns a model thread running `f`. Registered Ready; it runs only
    /// when the scheduler grants it. Returns the new thread's id.
    pub(crate) fn spawn_thread(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) -> usize {
        let tid = {
            let mut st = self.lock_state();
            st.threads.push(Status::Ready);
            st.threads.len() - 1
        };
        let eng = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&eng), tid)));
            if eng.initial_wait(tid) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    if payload.downcast_ref::<Abort>().is_none() {
                        eng.record_failure(panic_message(payload.as_ref()));
                    }
                }
            }
            eng.finish_thread(tid);
            CURRENT.with(|c| *c.borrow_mut() = None);
        });
        self.os_handles
            .lock()
            .expect("os handle list lock poisoned")
            .push(handle);
        tid
    }

    /// First wait of a fresh thread: no state change, just wait for the
    /// first grant. Returns false when the run aborted before that.
    fn initial_wait(&self, tid: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.abort {
                return false;
            }
            if st.turn == Turn::Thread(tid) {
                return true;
            }
            st = self.cv.wait(st).expect("engine state lock poisoned");
        }
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid] = Status::Finished;
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
    }
}

/// One scheduler decision: the threads that were allowed to move (within
/// the preemption budget) and which of them the current DFS path takes.
#[derive(Debug, Clone)]
struct Decision {
    allowed: Vec<usize>,
    idx: usize,
}

/// The failing schedule of a refuted model: the granted thread id at every
/// scheduler step, in order. Feed it back through [`Explorer::replay`] to
/// reproduce the exact interleaving (e.g. as a regression test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The assertion/panic message (or `deadlock: …` / step-budget report).
    pub message: String,
    /// Granted thread ids, one per scheduler step.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under schedule {:?}", self.message, self.schedule)
    }
}

/// Outcome of one [`Explorer::check`] exploration.
#[derive(Debug)]
pub struct Report {
    /// The model's name, for messages.
    pub model: String,
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// True when the state space within the preemption bound was exhausted
    /// (always check this: an incomplete pass proves nothing).
    pub complete: bool,
    /// The first invariant violation found, if any (exploration stops
    /// there).
    pub failure: Option<Failure>,
}

impl Report {
    /// Asserts the exploration was exhaustive and found no violation.
    ///
    /// # Panics
    /// With the model name, failing schedule, and message otherwise.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model `{}` refuted after {} schedules: {f}",
                self.model, self.schedules
            );
        }
        assert!(
            self.complete,
            "model `{}` exploration incomplete after {} schedules; raise max_schedules",
            self.model, self.schedules
        );
    }

    /// Asserts the exploration *did* find a violation (for known-buggy
    /// models proving the checker can see the race) and returns it.
    ///
    /// # Panics
    /// If the model survived every explored schedule.
    pub fn expect_failure(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "model `{}` expected to be refuted but survived {} schedules (complete: {})",
                self.model, self.schedules, self.complete
            )
        })
    }
}

/// The DFS schedule explorer. See the module docs for the search strategy.
#[derive(Debug, Clone)]
pub struct Explorer {
    preemption_bound: usize,
    max_schedules: usize,
    max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            preemption_bound: 2,
            max_schedules: 100_000,
            max_steps: 10_000,
        }
    }
}

impl Explorer {
    /// An explorer with the default preemption bound (2) and schedule cap.
    pub fn new() -> Self {
        Explorer::default()
    }

    /// Sets the preemption bound (see module docs).
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps how many schedules one `check` may run before giving up with
    /// `complete = false`.
    pub fn max_schedules(mut self, cap: usize) -> Self {
        self.max_schedules = cap.max(1);
        self
    }

    /// Explores every schedule of `model` within the preemption bound.
    /// `model` runs as thread 0 and may spawn more threads with
    /// [`crate::thread::spawn`]; it must create all shared state *inside*
    /// the closure (each schedule is a fresh execution).
    pub fn check(&self, name: &str, model: impl Fn() + Send + Sync + 'static) -> Report {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut plan: Vec<Decision> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let outcome = self.run_once(&model, &mut RunMode::Explore(&mut plan));
            schedules += 1;
            if let Some(failure) = outcome {
                return Report {
                    model: name.to_string(),
                    schedules,
                    complete: false,
                    failure: Some(failure),
                };
            }
            // DFS backtrack: drop exhausted tail decisions, advance the
            // deepest one with an unexplored alternative.
            loop {
                match plan.last_mut() {
                    None => {
                        return Report {
                            model: name.to_string(),
                            schedules,
                            complete: true,
                            failure: None,
                        }
                    }
                    Some(d) if d.idx + 1 < d.allowed.len() => {
                        d.idx += 1;
                        break;
                    }
                    Some(_) => {
                        plan.pop();
                    }
                }
            }
            if schedules >= self.max_schedules {
                return Report {
                    model: name.to_string(),
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
        }
    }

    /// Re-runs `model` under one specific schedule (as recorded in
    /// [`Failure::schedule`]) and returns the violation it reproduces, if
    /// any. This is the regression-test entry point: commit the schedule a
    /// `check` run found and replay it forever after.
    pub fn replay(
        &self,
        schedule: &[usize],
        model: impl Fn() + Send + Sync + 'static,
    ) -> Result<(), Failure> {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        match self.run_once(&model, &mut RunMode::Replay(schedule)) {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Runs one schedule to completion. Returns the failure, if one fired.
    fn run_once(
        &self,
        model: &Arc<dyn Fn() + Send + Sync>,
        mode: &mut RunMode<'_>,
    ) -> Option<Failure> {
        let engine = Engine::new();
        {
            let m = Arc::clone(model);
            engine.spawn_thread(move || m());
        }
        let mut prev: Option<usize> = None;
        let mut preemptions = 0usize;
        let mut step = 0usize;
        let mut schedule: Vec<usize> = Vec::new();

        loop {
            let mut st = engine.lock_state();
            while st.turn != Turn::Scheduler {
                st = engine.cv.wait(st).expect("engine state lock poisoned");
            }
            if st.abort {
                drop(st);
                break;
            }
            let enabled: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| match s {
                    Status::Ready => true,
                    Status::Blocked(Blocker::Mutex(m)) => st.mutex_owner[*m].is_none(),
                    Status::Blocked(Blocker::Join(t)) => st.threads[*t] == Status::Finished,
                    Status::Finished => false,
                })
                .map(|(i, _)| i)
                .collect();
            if st.threads.iter().all(|s| *s == Status::Finished) {
                drop(st);
                break;
            }
            if enabled.is_empty() {
                let holders: Vec<String> = st
                    .mutex_owner
                    .iter()
                    .enumerate()
                    .filter_map(|(m, o)| o.map(|t| format!("mutex {m} held by thread {t}")))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: no thread can run ({})",
                    if holders.is_empty() {
                        "all parked on unsatisfiable blockers".to_string()
                    } else {
                        holders.join(", ")
                    }
                ));
                st.abort = true;
                engine.cv.notify_all();
                drop(st);
                break;
            }
            if step >= self.max_steps {
                st.failure = Some(format!(
                    "model exceeded {} scheduler steps; does a thread loop without \
                     reaching a scheduling point?",
                    self.max_steps
                ));
                st.abort = true;
                engine.cv.notify_all();
                drop(st);
                break;
            }
            let prev_enabled = prev.is_some_and(|p| enabled.contains(&p));
            let allowed: Vec<usize> = if prev_enabled {
                let p = prev.expect("prev_enabled implies prev");
                if preemptions < self.preemption_bound {
                    std::iter::once(p)
                        .chain(enabled.iter().copied().filter(|&t| t != p))
                        .collect()
                } else {
                    vec![p]
                }
            } else {
                enabled
            };
            let tid = match mode {
                RunMode::Explore(plan) => {
                    let idx = if step < plan.len() {
                        debug_assert_eq!(
                            plan[step].allowed, allowed,
                            "non-deterministic model: replayed prefix diverged at step {step}"
                        );
                        plan[step].idx
                    } else {
                        plan.push(Decision {
                            allowed: allowed.clone(),
                            idx: 0,
                        });
                        0
                    };
                    allowed[idx]
                }
                RunMode::Replay(forced) => {
                    let want = forced.get(step).copied().unwrap_or(allowed[0]);
                    if allowed.contains(&want) {
                        want
                    } else {
                        // The replayed schedule no longer matches the model
                        // (model changed shape); fall back to the default so
                        // the run still terminates — the caller compares
                        // outcomes, not schedules.
                        allowed[0]
                    }
                }
            };
            if prev_enabled && Some(tid) != prev {
                preemptions += 1;
            }
            schedule.push(tid);
            prev = Some(tid);
            st.threads[tid] = Status::Ready;
            st.turn = Turn::Thread(tid);
            engine.cv.notify_all();
            drop(st);
            step += 1;
        }

        // Wait for every thread to observe the abort (or finish) and join
        // the OS threads so nothing leaks into the next schedule.
        {
            let mut st = engine.lock_state();
            while !st.threads.iter().all(|s| *s == Status::Finished) {
                st = engine.cv.wait(st).expect("engine state lock poisoned");
            }
        }
        let handles = std::mem::take(
            &mut *engine
                .os_handles
                .lock()
                .expect("os handle list lock poisoned"),
        );
        for h in handles {
            // A model thread that failed already recorded its message; the
            // unwind itself is expected.
            let _ = h.join();
        }
        let st = engine.lock_state();
        st.failure
            .clone()
            .map(|message| Failure { message, schedule })
    }
}

enum RunMode<'a> {
    Explore(&'a mut Vec<Decision>),
    Replay(&'a [usize]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;
    use crate::thread;
    use std::sync::atomic::Ordering;

    /// A single child doing one op has exactly one schedule: every decision
    /// point offers exactly one runnable thread.
    #[test]
    fn single_thread_model_has_one_schedule() {
        let report = Explorer::new().check("single", || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            h.join().expect("child ok");
            assert_eq!(a.load(Ordering::SeqCst), 1);
        });
        report.assert_ok();
        assert_eq!(report.schedules, 1, "no branch point exists");
    }

    /// Two incrementing threads: the counter ends at 4 under *every*
    /// schedule, and more than one schedule exists.
    #[test]
    fn counter_invariant_holds_across_all_schedules() {
        let report = Explorer::new().preemption_bound(2).check("counter", || {
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("child ok");
            }
            assert_eq!(a.load(Ordering::SeqCst), 4);
        });
        report.assert_ok();
        assert!(report.schedules > 1, "interleavings must branch");
    }

    /// Raising the preemption bound only grows the explored set.
    #[test]
    fn schedule_count_grows_with_preemption_bound() {
        let count = |bound: usize| {
            let report = Explorer::new().preemption_bound(bound).check("grow", || {
                let a = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        thread::spawn(move || {
                            a.fetch_add(1, Ordering::SeqCst);
                            a.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("child ok");
                }
            });
            report.assert_ok();
            report.schedules
        };
        let (c0, c1, c2) = (count(0), count(1), count(2));
        assert!(c0 <= c1 && c1 <= c2, "{c0} {c1} {c2}");
        assert!(c2 > c0, "bound 2 must see schedules bound 0 cannot");
    }

    /// Exploration is deterministic: same model, same counts.
    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            Explorer::new()
                .preemption_bound(2)
                .check("det", || {
                    let a = Arc::new(AtomicU64::new(0));
                    let handles: Vec<_> = (0..3)
                        .map(|i| {
                            let a = Arc::clone(&a);
                            thread::spawn(move || {
                                a.fetch_add(i + 1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("child ok");
                    }
                    assert_eq!(a.load(Ordering::SeqCst), 6);
                })
                .schedules
        };
        assert_eq!(run(), run());
    }

    /// A classic lost update (load; add; store instead of `fetch_add`) is
    /// found, and the reported schedule replays to the same violation.
    #[test]
    fn lost_update_is_found_and_replays() {
        let model = || {
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("child ok");
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "increment lost");
        };
        let report = Explorer::new()
            .preemption_bound(2)
            .check("lost-update", model);
        let failure = report.expect_failure().clone();
        assert!(failure.message.contains("increment lost"), "{failure}");
        let err = Explorer::new()
            .replay(&failure.schedule, model)
            .expect_err("replaying the found schedule reproduces the bug");
        assert!(err.message.contains("increment lost"), "{err}");
    }

    /// ABBA lock-order inversion deadlocks under some schedule; the
    /// explorer reports it instead of hanging.
    #[test]
    fn abba_deadlock_is_detected() {
        use crate::sync::Mutex as ShimMutex;
        let report = Explorer::new().preemption_bound(2).check("abba", || {
            let a = Arc::new(ShimMutex::new(0u32));
            let b = Arc::new(ShimMutex::new(0u32));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let h1 = thread::spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h2 = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            let _ = h1.join();
            let _ = h2.join();
        });
        let failure = report.expect_failure();
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    /// Mutexes actually provide mutual exclusion under exploration: a
    /// non-atomic read-modify-write protected by the shim mutex never loses
    /// an update, on any schedule.
    #[test]
    fn mutex_protects_critical_sections() {
        use crate::sync::Mutex as ShimMutex;
        let report = Explorer::new().preemption_bound(2).check("mutex-rmw", || {
            let m = Arc::new(ShimMutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("child ok");
            }
            assert_eq!(*m.lock(), 2);
        });
        report.assert_ok();
    }
}

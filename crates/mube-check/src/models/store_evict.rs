//! Model of the store-eviction vs in-flight-session race
//! (`mube-serve/src/store.rs`).
//!
//! Production kernel: the session store's insert path evicts idle sessions
//! when over capacity. A session can look idle by the clock (handlers touch
//! it at lookup, *before* a long solve) while a solve still holds its
//! mutex. The PR-5 fix guards eviction with `session.try_lock().is_ok()`:
//! a held session is never evicted, however idle it looks.
//!
//! Invariant modeled: **the sweeper never evicts a session whose mutex is
//! held**. The buggy variant (clock check only, no `try_lock` guard) is the
//! pre-PR-5 code; the explorer finds the mid-solve eviction, and the found
//! schedule is committed as a replay regression test.

use crate::engine::{Explorer, Failure, Report};
use crate::sync::{AtomicBool, Mutex};
use crate::thread;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One schedule of worker-vs-sweeper. `guarded` selects the production
/// `try_lock` eviction guard; `!guarded` is the pre-fix clock-only check.
///
/// # Panics
/// When the sweeper evicts while the worker holds the session.
pub fn run(guarded: bool) {
    let session = Arc::new(Mutex::new(0u32));
    let holding = Arc::new(AtomicBool::new(false));
    let evicted = Arc::new(AtomicBool::new(false));

    let worker = {
        let session = Arc::clone(&session);
        let holding = Arc::clone(&holding);
        thread::spawn(move || {
            let mut guard = session.lock();
            holding.store(true, Ordering::SeqCst);
            *guard += 1; // the long solve
            thread::yield_now();
            holding.store(false, Ordering::SeqCst);
            drop(guard);
        })
    };

    let sweeper = {
        let session = Arc::clone(&session);
        let holding = Arc::clone(&holding);
        let evicted = Arc::clone(&evicted);
        thread::spawn(move || {
            // The idle-by-the-clock check passed by construction (the TTL
            // expired mid-solve); what distinguishes fixed from buggy is
            // the try_lock guard.
            if guarded {
                if let Some(_guard) = session.try_lock() {
                    assert!(
                        !holding.load(Ordering::SeqCst),
                        "evicted a session with an in-flight solve"
                    );
                    evicted.store(true, Ordering::SeqCst);
                }
            } else {
                assert!(
                    !holding.load(Ordering::SeqCst),
                    "evicted a session with an in-flight solve"
                );
                evicted.store(true, Ordering::SeqCst);
            }
        })
    };

    worker.join().expect("worker finished");
    sweeper.join().expect("sweeper finished");
}

/// Explores the unguarded sweeper and returns the report (used by the
/// regression test and by [`found_schedule`]).
pub fn explore_unguarded() -> Report {
    Explorer::new()
        .preemption_bound(2)
        .check("store-evict-unguarded", || run(false))
}

/// The schedule under which the unguarded sweeper evicts mid-solve, as
/// found by a fresh exploration.
///
/// # Panics
/// If the explorer can no longer find the historical bug (model drift).
pub fn found_schedule() -> Failure {
    explore_unguarded().expect_failure().clone()
}

#[cfg(test)]
mod tests {
    use crate::engine::Explorer;

    /// The production `try_lock` guard survives every schedule.
    #[test]
    fn guarded_eviction_never_hits_inflight_solve() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("store-evict-guarded", || super::run(true));
        report.assert_ok();
        assert!(report.schedules > 1, "model must actually branch");
    }

    /// The pre-fix clock-only sweeper is refuted.
    #[test]
    fn unguarded_eviction_is_refuted() {
        let failure = super::found_schedule();
        assert!(failure.message.contains("in-flight solve"), "{failure}");
    }

    /// Regression: the schedule the explorer found replays to the same
    /// violation on the buggy variant and is harmless on the fixed one.
    /// This pins the exact interleaving of the PR-5 store bug through the
    /// shim layer, independent of future search-order changes.
    #[test]
    fn found_schedule_replays_bug_and_fix() {
        let failure = super::found_schedule();
        let again = Explorer::new()
            .replay(&failure.schedule, || super::run(false))
            .expect_err("buggy variant reproduces under the found schedule");
        assert_eq!(again.message, failure.message);
        Explorer::new()
            .replay(&failure.schedule, || super::run(true))
            .expect("fixed variant survives the same schedule");
    }
}

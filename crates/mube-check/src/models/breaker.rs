//! Model of the `HealthRegistry` circuit breaker (`mube-exec/src/health.rs`).
//!
//! Production contract: Closed → (failure streak ≥ threshold) → Open →
//! (cooldown) → `HalfOpen`, where **at most one probe attempt is admitted**
//! until its outcome is recorded; probe success closes the breaker, probe
//! failure re-opens it.
//!
//! This model found a real bug: the pre-PR-6 `admit()` returned `true` for
//! *every* caller in `HalfOpen`, so two concurrent executors could both be
//! admitted as probes ([`run_half_open`] with `latch = false` reproduces
//! it). The production fix is the `probe_in_flight` latch this model
//! mirrors with `latch = true`.

use crate::sync::Mutex;
use crate::thread;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    /// `cooled` models "cooldown elapsed" without a clock.
    Open {
        cooled: bool,
    },
    HalfOpen,
}

struct Breaker {
    state: State,
    consecutive_failures: u32,
    threshold: u32,
    probe_in_flight: bool,
    /// The modeled invariant: concurrently admitted probes.
    probes_admitted: u32,
    attempts: u32,
    outcomes: u32,
}

impl Breaker {
    fn admit(&mut self, latch: bool) -> bool {
        match self.state {
            State::Closed => {
                self.attempts += 1;
                true
            }
            State::Open { cooled: false } => false,
            State::Open { cooled: true } => {
                self.state = State::HalfOpen;
                self.probe_in_flight = true;
                self.probes_admitted += 1;
                self.attempts += 1;
                assert!(
                    self.probes_admitted <= 1,
                    "half-open breaker admitted {} concurrent probes",
                    self.probes_admitted
                );
                true
            }
            State::HalfOpen => {
                if latch && self.probe_in_flight {
                    return false;
                }
                self.probe_in_flight = true;
                self.probes_admitted += 1;
                self.attempts += 1;
                assert!(
                    self.probes_admitted <= 1,
                    "half-open breaker admitted {} concurrent probes",
                    self.probes_admitted
                );
                true
            }
        }
    }

    fn record(&mut self, success: bool) {
        self.outcomes += 1;
        if self.state == State::HalfOpen {
            self.probes_admitted = self.probes_admitted.saturating_sub(1);
        }
        self.probe_in_flight = false;
        if success {
            self.consecutive_failures = 0;
            self.state = State::Closed;
        } else {
            self.consecutive_failures += 1;
            if self.state == State::HalfOpen || self.consecutive_failures >= self.threshold {
                self.state = State::Open { cooled: false };
            }
        }
    }
}

/// Two executors race into a cooled-down open breaker; each, if admitted,
/// records its probe outcome. With the latch at most one is admitted before
/// an outcome lands; without it both can be (the historical bug).
///
/// # Panics
/// When more than one probe is concurrently admitted, or accounting breaks.
pub fn run_half_open(latch: bool) {
    let breaker = Arc::new(Mutex::new(Breaker {
        state: State::Open { cooled: true },
        consecutive_failures: 3,
        threshold: 3,
        probe_in_flight: false,
        probes_admitted: 0,
        attempts: 0,
        outcomes: 0,
    }));

    let handles: Vec<_> = [true, false]
        .into_iter()
        .map(|outcome| {
            let breaker = Arc::clone(&breaker);
            thread::spawn(move || {
                let admitted = breaker.lock().admit(latch);
                if admitted {
                    // The probe request happens here, outside the lock.
                    thread::yield_now();
                    breaker.lock().record(outcome);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("executor finished");
    }

    let b = breaker.lock();
    assert_eq!(b.attempts, b.outcomes, "admitted probe without an outcome");
    assert!(!b.probe_in_flight, "probe latch leaked");
    assert!(
        matches!(b.state, State::Closed | State::Open { .. }),
        "breaker stuck half-open after all outcomes: {:?}",
        b.state
    );
}

/// Three failures race into a closed breaker with threshold 3: under every
/// schedule the breaker ends Open with a streak of exactly 3.
///
/// # Panics
/// When the trip threshold misfires under some schedule.
pub fn run_trip_threshold() {
    let breaker = Arc::new(Mutex::new(Breaker {
        state: State::Closed,
        consecutive_failures: 0,
        threshold: 3,
        probe_in_flight: false,
        probes_admitted: 0,
        attempts: 0,
        outcomes: 0,
    }));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let breaker = Arc::clone(&breaker);
            thread::spawn(move || {
                if breaker.lock().admit(true) {
                    thread::yield_now();
                    breaker.lock().record(false);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("executor finished");
    }
    let b = breaker.lock();
    // All three were admitted while Closed (admission precedes any trip in
    // this model only when scheduled so; late arrivals may be rejected by
    // an already-open breaker — both are legal). Whoever was admitted
    // recorded a failure; ≥3 consecutive failures trip the breaker iff all
    // three landed, and the streak never exceeds the number of outcomes.
    assert!(b.consecutive_failures <= b.outcomes);
    if b.outcomes == 3 {
        assert_eq!(
            b.state,
            State::Open { cooled: false },
            "threshold of 3 failures did not trip the breaker"
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Explorer;

    /// With the probe latch, every schedule admits at most one concurrent
    /// half-open probe.
    #[test]
    fn latched_half_open_admits_single_probe() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("breaker-latched", || super::run_half_open(true));
        report.assert_ok();
        assert!(report.schedules > 1, "model must actually branch");
    }

    /// Without the latch (the pre-fix production code), the explorer finds
    /// the double-probe schedule.
    #[test]
    fn unlatched_half_open_double_probe_is_found() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("breaker-unlatched", || super::run_half_open(false));
        let failure = report.expect_failure();
        assert!(failure.message.contains("concurrent probes"), "{failure}");
    }

    /// The failure-streak trip is schedule-independent.
    #[test]
    fn trip_threshold_is_schedule_independent() {
        Explorer::new()
            .preemption_bound(2)
            .check("breaker-trip", super::run_trip_threshold)
            .assert_ok();
    }
}

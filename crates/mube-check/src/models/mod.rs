//! Concrete models of the workspace's concurrency-critical kernels.
//!
//! Each module holds a small, faithful model of one production kernel plus
//! (where the interesting bug is historical or hypothetical) a *buggy
//! variant* proving the explorer can actually see the race. The unit tests
//! in each module are the CI `check-model` gate: they run the explorer
//! exhaustively and call [`crate::engine::Report::assert_ok`].
//!
//! Models intentionally mirror the production code's structure and even its
//! `Ordering` arguments, so a reader can diff model against kernel
//! line-by-line. The checker executes everything sequentially consistent;
//! the orderings are documentation here.
//!
//! To add a model: write a `fn run(...)` closure body over [`crate::sync`]
//! and [`crate::thread`] primitives, assert the kernel's invariant inside
//! it, and add a test that explores it with a preemption bound of 2 (raise
//! only with cause — state space grows fast).

pub mod breaker;
pub mod champion;
pub mod simcache;
pub mod store_evict;
pub mod wal_crash;

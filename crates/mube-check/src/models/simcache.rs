//! Model of lock-free `SimilarityCache` publication (`mube-match`).
//!
//! Production kernel: the cache's score matrix is built (possibly by
//! several band workers), then the structure is published and readers do
//! plain indexed loads with no synchronization beyond the publish edge.
//! The safety argument is *publication ordering*: every cell write happens
//! before the publish flag flips, so a reader that observes the flag
//! observes a fully built matrix.
//!
//! The model makes the publish edge explicit: a writer fills three cells
//! and then raises `published`; two readers assert that observing the flag
//! implies observing every cell. The buggy variant raises the flag one cell
//! early — the explorer finds the reader that sees a half-built matrix.

use crate::sync::{AtomicBool, AtomicU64};
use crate::thread;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const CELLS: usize = 3;

/// One schedule of the publication protocol. `publish_early` moves the flag
/// store before the last cell write (the bug).
///
/// # Panics
/// When a reader observes `published == true` with an unwritten cell.
pub fn run(publish_early: bool) {
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..CELLS).map(|_| AtomicU64::new(0)).collect());
    let published = Arc::new(AtomicBool::new(false));

    let writer = {
        let cells = Arc::clone(&cells);
        let published = Arc::clone(&published);
        thread::spawn(move || {
            for (i, cell) in cells.iter().enumerate() {
                if publish_early && i + 1 == CELLS {
                    // ordering: the bug under test — flag raised before the
                    // matrix is complete.
                    published.store(true, Ordering::Release);
                }
                // ordering: plain data write; the Release publish below is
                // the edge that orders it for readers.
                cell.store(i as u64 + 1, Ordering::Relaxed);
            }
            if !publish_early {
                // ordering: mirrors the cache's publish edge — Release so
                // every cell write happens-before the flag flip.
                published.store(true, Ordering::Release);
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let cells = Arc::clone(&cells);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                // ordering: mirrors readers' Acquire on the publish flag.
                if published.load(Ordering::Acquire) {
                    for (i, cell) in cells.iter().enumerate() {
                        assert_ne!(
                            // ordering: data read ordered by the Acquire
                            // load of the publish flag above.
                            cell.load(Ordering::Relaxed),
                            0,
                            "published matrix has unwritten cell {i}"
                        );
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer finished");
    for r in readers {
        r.join().expect("reader finished");
    }
    // Quiescent state: fully built and published, on every schedule.
    assert!(published.load(Ordering::Acquire));
    for (i, cell) in cells.iter().enumerate() {
        // ordering: quiescent read — every thread is already joined.
        assert_eq!(cell.load(Ordering::Relaxed), i as u64 + 1);
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Explorer;

    /// Publish-after-build: no reader ever sees a half-built matrix.
    #[test]
    fn publish_last_is_safe_on_all_schedules() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("simcache-publish", || super::run(false));
        report.assert_ok();
        assert!(report.schedules > 1, "model must actually branch");
    }

    /// Publish-before-build is refuted: some schedule lets a reader observe
    /// the flag before the last cell write.
    #[test]
    fn early_publish_is_refuted() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("simcache-early-publish", || super::run(true));
        let failure = report.expect_failure();
        assert!(failure.message.contains("unwritten cell"), "{failure}");
    }
}

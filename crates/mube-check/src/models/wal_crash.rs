//! Crash-point explorer for the WAL (`mube-serve/src/persist.rs`).
//!
//! Rather than interleaving threads, this model enumerates *crash points*:
//! it builds a WAL image with the production frame format —
//! `[len: u32 LE][crc: u32 LE][payload]`, payload =
//! `[lsn: u64 LE][tag: u8][body]`, CRC = [`mube_serve::persist::crc32`]
//! over the payload (the real function, so the model cannot drift from the
//! codec) — then truncates it at **every byte offset** (every record *and*
//! intra-record boundary) and replays with the same scan rules as
//! production recovery. The invariant, for every cut:
//!
//! 1. **Prefix consistency**: the replayed records are exactly the first
//!    `k` appended records, for some `k` — never reordered, invented, or
//!    holed.
//! 2. **Tail quarantine**: the bytes past the last good record are
//!    quarantined, never fatal, and byte-accounted exactly.
//! 3. A cut on a frame boundary quarantines nothing.
//!
//! A second pass flips one bit at every byte position and asserts replay
//! still yields a strict prefix (detected via CRC, length sanity, or torn
//! body — never a decoded garbage record).
//!
//! A third family of checks leaves the model codec behind and drives the
//! **real** recovery path: it seeds a data directory through the production
//! [`Journal`], then truncates `snapshot.wal` at every byte offset (and
//! flips every bit) and calls the production [`Journal::open`] on the
//! mutilated directory. For every mutation, open must return `Ok`, never
//! panic, report the corruption, recover exactly a prefix of the sealed
//! snapshot plus the surviving tail, stay writable, and recover the same
//! state again on a second open.

use mube_serve::persist::{crc32, Event, FsyncPolicy, Journal};
use std::path::Path;

/// Mirrors the production `MAX_RECORD_BYTES` length-sanity bound.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// One replayed record: `(lsn, tag, body)`.
pub type Record = (u64, u8, Vec<u8>);

/// Outcome of replaying a (possibly truncated or corrupted) WAL image.
#[derive(Debug, PartialEq, Eq)]
pub struct Replay {
    /// Records recovered, in append order.
    pub records: Vec<Record>,
    /// Bytes consumed by good records (the quarantine boundary).
    pub good_len: usize,
    /// Bytes past `good_len` (what production moves to `quarantine-N.wal`).
    pub quarantined: usize,
}

/// Encodes one frame exactly as `persist.rs` does.
#[must_use]
pub fn encode_frame(lsn: u64, tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("small payload")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Replays a WAL image with the production scan rules: stop at the first
/// torn header, implausible length, torn body, or CRC mismatch; everything
/// after that is quarantined.
#[must_use]
pub fn replay(data: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 8 > data.len() {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        if !(9..=MAX_RECORD_BYTES).contains(&len) {
            break; // implausible record length
        }
        let body_end = pos + 8 + len as usize;
        if body_end > data.len() {
            break; // torn record body
        }
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &data[pos + 8..body_end];
        if crc32(payload) != crc {
            break; // CRC mismatch
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        records.push((lsn, payload[8], payload[9..].to_vec()));
        pos = body_end;
    }
    Replay {
        records,
        good_len: pos,
        quarantined: data.len() - pos,
    }
}

/// The modeled WAL: four records with varied body sizes (including an
/// empty body, so a frame boundary can sit 9 bytes after a header).
#[must_use]
pub fn model_wal() -> Vec<(u64, u8, Vec<u8>)> {
    vec![
        (1, 1, b"insert site0001".to_vec()),
        (2, 2, Vec::new()),
        (3, 1, b"solve {budget: 5, qef: fanout}".to_vec()),
        (4, 3, vec![0xFF; 21]),
    ]
}

/// Asserts the crash-point invariant for every byte-offset truncation of
/// the modeled WAL. Returns the number of crash points explored.
///
/// # Panics
/// When any cut violates prefix consistency or tail accounting.
pub fn check_all_crash_points() -> usize {
    let committed = model_wal();
    let frames: Vec<Vec<u8>> = committed
        .iter()
        .map(|(lsn, tag, body)| encode_frame(*lsn, *tag, body))
        .collect();
    let full: Vec<u8> = frames.concat();
    let mut boundaries = vec![0usize];
    for f in &frames {
        boundaries.push(boundaries.last().expect("non-empty") + f.len());
    }

    for cut in 0..=full.len() {
        let r = replay(&full[..cut]);
        // Prefix consistency: recovered records are exactly the first k.
        assert!(
            r.records.len() <= committed.len(),
            "cut {cut}: invented records"
        );
        for (got, want) in r.records.iter().zip(&committed) {
            assert_eq!(got, want, "cut {cut}: replay diverged from the prefix");
        }
        // Tail accounting is exact.
        assert_eq!(r.good_len + r.quarantined, cut, "cut {cut}: byte leak");
        assert_eq!(
            r.good_len,
            boundaries[r.records.len()],
            "cut {cut}: good_len off a frame boundary"
        );
        // A cut on a frame boundary is clean; off-boundary cuts quarantine
        // exactly the partial tail.
        if let Some(k) = boundaries.iter().position(|&b| b == cut) {
            assert_eq!(r.quarantined, 0, "cut {cut}: clean cut quarantined bytes");
            assert_eq!(r.records.len(), k, "cut {cut}: clean cut lost records");
        } else {
            assert!(r.quarantined > 0, "cut {cut}: torn tail not quarantined");
        }
    }
    full.len() + 1
}

/// Asserts that flipping any single bit of the image still replays to a
/// strict prefix of the committed records (corruption is contained, never
/// decoded as garbage). Returns the number of corruptions explored.
///
/// # Panics
/// When a corrupted image replays to something other than a prefix.
pub fn check_all_bit_flips() -> usize {
    let committed = model_wal();
    let full: Vec<u8> = committed
        .iter()
        .flat_map(|(lsn, tag, body)| encode_frame(*lsn, *tag, body))
        .collect();
    let mut explored = 0usize;
    for i in 0..full.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut img = full.clone();
            img[i] ^= bit;
            let r = replay(&img);
            assert!(
                r.records.len() <= committed.len(),
                "flip at byte {i}: invented records"
            );
            for (got, want) in r.records.iter().zip(&committed) {
                assert_eq!(
                    got, want,
                    "flip at byte {i}: corruption leaked into the replayed prefix"
                );
            }
            explored += 1;
        }
    }
    explored
}

// ---------------------------------------------------------------------------
// Snapshot crash points, against the production recovery path
// ---------------------------------------------------------------------------

/// Committed history for the snapshot explorer: five events with varied
/// body shapes. No `SessionDelete` — compaction prunes deleted sessions
/// from the snapshot, which would break the strict-prefix oracle below.
fn snapshot_model_events() -> Vec<Event> {
    vec![
        Event::CatalogCreate {
            id: 1,
            text: "site0001|books|title,author,publisher\n".to_string(),
        },
        Event::SessionCreate {
            id: 1,
            catalog_id: 1,
            body: "{\"max\":4,\"theta\":0.5}".to_string(),
        },
        Event::Feedback {
            session: 1,
            body: "{\"pin\":[\"site0001\"],\"weight\":{\"coverage\":0.4}}".to_string(),
        },
        Event::SessionCreate {
            id: 2,
            catalog_id: 1,
            body: "{\"max\":8}".to_string(),
        },
        Event::CatalogCreate {
            id: 2,
            text: "site0002|airfares|from,to,fare\n".to_string(),
        },
    ]
}

/// Opens `dir` with the production recovery path and asserts the snapshot
/// crash invariant: recovery succeeds, yields `committed[..k]` for some `k`
/// plus the surviving tail suffix, reports corruption honestly
/// (`expect_members` = `Some(k)` pins a clean image that must recover
/// exactly `k` members without a corruption report; `None` expects a
/// report), stays writable, and is deterministic across a second open.
fn assert_snapshot_recovery(
    dir: &Path,
    committed: &[Event],
    label: &str,
    expect_members: Option<usize>,
) {
    let (journal, events, report) =
        Journal::open(dir, FsyncPolicy::Never, 1000).unwrap_or_else(|e| {
            panic!("{label}: production open must tolerate snapshot damage, got Err({e})")
        });
    // The tail's events survive every snapshot mutation; snapshot members
    // survive as a strict prefix. So the recovered list must be
    // committed[..k] ++ committed[4..] for some k <= 4.
    let tail_suffix = &committed[4..];
    assert!(
        events.len() >= tail_suffix.len() && events.ends_with(tail_suffix),
        "{label}: journal tail lost (recovered {} events)",
        events.len()
    );
    let k = events.len() - tail_suffix.len();
    assert!(
        k <= 4 && events[..k] == committed[..k],
        "{label}: recovered members are not a prefix of the sealed snapshot"
    );
    match expect_members {
        Some(want) => {
            assert!(
                report.corruption.is_none(),
                "{label}: clean image reported corruption {:?}",
                report.corruption
            );
            assert_eq!(k, want, "{label}: clean image lost snapshot members");
        }
        None => assert!(
            report.corruption.is_some(),
            "{label}: damage recovered silently (k = {k})"
        ),
    }
    // Recovery is deterministic: drop the journal, open again, same state.
    drop(journal);
    let (journal2, events2, _) = Journal::open(dir, FsyncPolicy::Never, 1000)
        .unwrap_or_else(|e| panic!("{label}: second open failed: {e}"));
    assert_eq!(events, events2, "{label}: recovery is not deterministic");
    // The recovered journal stays writable past the damage.
    journal2
        .append(Event::SessionDelete { session: 99 })
        .unwrap_or_else(|e| panic!("{label}: recovered journal rejected an append: {e}"));
}

/// Seeds a real data dir whose `snapshot.wal` seals the first four events
/// (cadence 2 compacts at LSNs 2 and 4) and whose tail holds the fifth;
/// returns the committed events plus both files' bytes.
fn seed_snapshot_dir(dir: &Path) -> (Vec<Event>, Vec<u8>, Vec<u8>) {
    let committed = snapshot_model_events();
    let (journal, _, _) = Journal::open(dir, FsyncPolicy::Never, 2).expect("seed dir opens clean");
    for event in &committed {
        journal.append(event.clone()).expect("seed append");
    }
    journal.flush().expect("seed flush");
    drop(journal);
    let snap = std::fs::read(dir.join("snapshot.wal")).expect("seed snapshot exists");
    let tail = std::fs::read(dir.join("journal.wal")).expect("seed tail exists");
    assert!(snap.len() > 100, "seed snapshot too small to explore");
    assert!(
        !tail.is_empty(),
        "seed tail empty: cadence did not land at 4"
    );
    (committed, snap, tail)
}

/// Runs `mutate` over every index in `0..=snap.len()`, building a fresh
/// data dir with the mutated snapshot and the intact tail, and asserts
/// [`assert_snapshot_recovery`] on each. Returns the images explored.
fn explore_snapshot_images(
    what: &str,
    mutate: impl Fn(&[u8], usize) -> Option<(Vec<u8>, Option<usize>)>,
) -> usize {
    let base = std::env::temp_dir().join(format!(
        "mube-check-snapcrash-{what}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let seed = base.join("seed");
    std::fs::create_dir_all(&seed).expect("create seed dir");
    let (committed, snap, tail) = seed_snapshot_dir(&seed);

    let mut explored = 0usize;
    let work = base.join("work");
    for i in 0..=snap.len() {
        let Some((image, expect_members)) = mutate(&snap, i) else {
            continue;
        };
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("create work dir");
        std::fs::write(work.join("snapshot.wal"), &image).expect("write mutated snapshot");
        std::fs::write(work.join("journal.wal"), &tail).expect("write tail");
        assert_snapshot_recovery(
            &work,
            &committed,
            &format!("{what} at byte {i}"),
            expect_members,
        );
        explored += 1;
    }
    let _ = std::fs::remove_dir_all(&base);
    explored
}

/// Truncates a production-written `snapshot.wal` at every byte offset and
/// asserts the production `Journal::open` recovers a consistent prefix (or
/// an honestly-reported corruption) every time. Returns the cuts explored.
///
/// # Panics
/// When any cut panics recovery, loses the tail, invents state, or
/// misreports corruption.
pub fn check_all_snapshot_crash_points() -> usize {
    explore_snapshot_images("cut", |snap, cut| {
        // A cut on a frame boundary leaves a well-formed (if shorter)
        // snapshot holding however many member frames fit before the cut
        // (the first frame is the header); everything else must be
        // reported as corruption.
        let mut boundary = (cut == 0).then_some(0usize);
        let mut pos = 0usize;
        let mut frames = 0usize;
        while pos + 8 <= snap.len() {
            let len = u32::from_le_bytes(snap[pos..pos + 4].try_into().expect("4 bytes"));
            pos += 8 + len as usize;
            frames += 1;
            if pos == cut {
                boundary = Some(frames.saturating_sub(1)); // minus the header
            }
        }
        Some((snap[..cut].to_vec(), boundary))
    })
}

/// Flips one bit at every byte of a production-written `snapshot.wal` and
/// asserts the production `Journal::open` contains the damage every time.
/// Returns the corruptions explored.
///
/// # Panics
/// When any flip panics recovery, leaks garbage into the recovered state,
/// or goes unreported.
pub fn check_all_snapshot_bit_flips() -> usize {
    explore_snapshot_images("flip", |snap, i| {
        if i == snap.len() {
            return None;
        }
        let mut image = snap.to_vec();
        image[i] ^= 0x40;
        // CRC-32 catches every single-bit error, so no flip is clean.
        Some((image, None))
    })
}

#[cfg(test)]
mod tests {
    /// Every byte-offset truncation restores a prefix-consistent state or
    /// quarantines the tail.
    #[test]
    fn every_crash_point_is_prefix_consistent() {
        let explored = super::check_all_crash_points();
        assert!(explored > 100, "model WAL too small: {explored} cuts");
    }

    /// Every single-bit corruption is contained to the tail.
    #[test]
    fn every_bit_flip_is_contained() {
        let explored = super::check_all_bit_flips();
        assert!(explored > 200, "model WAL too small: {explored} flips");
    }

    /// Every byte-offset truncation of a real `snapshot.wal` recovers a
    /// consistent prefix through the production `Journal::open` — never a
    /// panic, never invented state, never a lost tail.
    #[test]
    fn every_snapshot_crash_point_recovers_through_production_open() {
        let explored = super::check_all_snapshot_crash_points();
        assert!(explored > 100, "seed snapshot too small: {explored} cuts");
    }

    /// Every single-bit flip in a real `snapshot.wal` is reported and
    /// contained by the production `Journal::open`.
    #[test]
    fn every_snapshot_bit_flip_is_contained_by_production_open() {
        let explored = super::check_all_snapshot_bit_flips();
        assert!(explored > 100, "seed snapshot too small: {explored} flips");
    }

    /// The model's codec is byte-identical to production for a frame the
    /// production tests also pin (CRC via the exported `crc32`).
    #[test]
    fn frame_layout_matches_production() {
        let frame = super::encode_frame(7, 2, b"xy");
        assert_eq!(&frame[0..4], &11u32.to_le_bytes(), "len = 8 + 1 + 2");
        let payload = &frame[8..];
        assert_eq!(
            &frame[4..8],
            &mube_serve::persist::crc32(payload).to_le_bytes()
        );
        assert_eq!(&payload[0..8], &7u64.to_le_bytes());
        assert_eq!(payload[8], 2);
        assert_eq!(&payload[9..], b"xy");
    }
}

//! Crash-point explorer for the WAL (`mube-serve/src/persist.rs`).
//!
//! Rather than interleaving threads, this model enumerates *crash points*:
//! it builds a WAL image with the production frame format —
//! `[len: u32 LE][crc: u32 LE][payload]`, payload =
//! `[lsn: u64 LE][tag: u8][body]`, CRC = [`mube_serve::persist::crc32`]
//! over the payload (the real function, so the model cannot drift from the
//! codec) — then truncates it at **every byte offset** (every record *and*
//! intra-record boundary) and replays with the same scan rules as
//! production recovery. The invariant, for every cut:
//!
//! 1. **Prefix consistency**: the replayed records are exactly the first
//!    `k` appended records, for some `k` — never reordered, invented, or
//!    holed.
//! 2. **Tail quarantine**: the bytes past the last good record are
//!    quarantined, never fatal, and byte-accounted exactly.
//! 3. A cut on a frame boundary quarantines nothing.
//!
//! A second pass flips one bit at every byte position and asserts replay
//! still yields a strict prefix (detected via CRC, length sanity, or torn
//! body — never a decoded garbage record).

use mube_serve::persist::crc32;

/// Mirrors the production `MAX_RECORD_BYTES` length-sanity bound.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// One replayed record: `(lsn, tag, body)`.
pub type Record = (u64, u8, Vec<u8>);

/// Outcome of replaying a (possibly truncated or corrupted) WAL image.
#[derive(Debug, PartialEq, Eq)]
pub struct Replay {
    /// Records recovered, in append order.
    pub records: Vec<Record>,
    /// Bytes consumed by good records (the quarantine boundary).
    pub good_len: usize,
    /// Bytes past `good_len` (what production moves to `quarantine-N.wal`).
    pub quarantined: usize,
}

/// Encodes one frame exactly as `persist.rs` does.
#[must_use]
pub fn encode_frame(lsn: u64, tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("small payload")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Replays a WAL image with the production scan rules: stop at the first
/// torn header, implausible length, torn body, or CRC mismatch; everything
/// after that is quarantined.
#[must_use]
pub fn replay(data: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 8 > data.len() {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        if !(9..=MAX_RECORD_BYTES).contains(&len) {
            break; // implausible record length
        }
        let body_end = pos + 8 + len as usize;
        if body_end > data.len() {
            break; // torn record body
        }
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &data[pos + 8..body_end];
        if crc32(payload) != crc {
            break; // CRC mismatch
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        records.push((lsn, payload[8], payload[9..].to_vec()));
        pos = body_end;
    }
    Replay {
        records,
        good_len: pos,
        quarantined: data.len() - pos,
    }
}

/// The modeled WAL: four records with varied body sizes (including an
/// empty body, so a frame boundary can sit 9 bytes after a header).
#[must_use]
pub fn model_wal() -> Vec<(u64, u8, Vec<u8>)> {
    vec![
        (1, 1, b"insert site0001".to_vec()),
        (2, 2, Vec::new()),
        (3, 1, b"solve {budget: 5, qef: fanout}".to_vec()),
        (4, 3, vec![0xFF; 21]),
    ]
}

/// Asserts the crash-point invariant for every byte-offset truncation of
/// the modeled WAL. Returns the number of crash points explored.
///
/// # Panics
/// When any cut violates prefix consistency or tail accounting.
pub fn check_all_crash_points() -> usize {
    let committed = model_wal();
    let frames: Vec<Vec<u8>> = committed
        .iter()
        .map(|(lsn, tag, body)| encode_frame(*lsn, *tag, body))
        .collect();
    let full: Vec<u8> = frames.concat();
    let mut boundaries = vec![0usize];
    for f in &frames {
        boundaries.push(boundaries.last().expect("non-empty") + f.len());
    }

    for cut in 0..=full.len() {
        let r = replay(&full[..cut]);
        // Prefix consistency: recovered records are exactly the first k.
        assert!(
            r.records.len() <= committed.len(),
            "cut {cut}: invented records"
        );
        for (got, want) in r.records.iter().zip(&committed) {
            assert_eq!(got, want, "cut {cut}: replay diverged from the prefix");
        }
        // Tail accounting is exact.
        assert_eq!(r.good_len + r.quarantined, cut, "cut {cut}: byte leak");
        assert_eq!(
            r.good_len,
            boundaries[r.records.len()],
            "cut {cut}: good_len off a frame boundary"
        );
        // A cut on a frame boundary is clean; off-boundary cuts quarantine
        // exactly the partial tail.
        if let Some(k) = boundaries.iter().position(|&b| b == cut) {
            assert_eq!(r.quarantined, 0, "cut {cut}: clean cut quarantined bytes");
            assert_eq!(r.records.len(), k, "cut {cut}: clean cut lost records");
        } else {
            assert!(r.quarantined > 0, "cut {cut}: torn tail not quarantined");
        }
    }
    full.len() + 1
}

/// Asserts that flipping any single bit of the image still replays to a
/// strict prefix of the committed records (corruption is contained, never
/// decoded as garbage). Returns the number of corruptions explored.
///
/// # Panics
/// When a corrupted image replays to something other than a prefix.
pub fn check_all_bit_flips() -> usize {
    let committed = model_wal();
    let full: Vec<u8> = committed
        .iter()
        .flat_map(|(lsn, tag, body)| encode_frame(*lsn, *tag, body))
        .collect();
    let mut explored = 0usize;
    for i in 0..full.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut img = full.clone();
            img[i] ^= bit;
            let r = replay(&img);
            assert!(
                r.records.len() <= committed.len(),
                "flip at byte {i}: invented records"
            );
            for (got, want) in r.records.iter().zip(&committed) {
                assert_eq!(
                    got, want,
                    "flip at byte {i}: corruption leaked into the replayed prefix"
                );
            }
            explored += 1;
        }
    }
    explored
}

#[cfg(test)]
mod tests {
    /// Every byte-offset truncation restores a prefix-consistent state or
    /// quarantines the tail.
    #[test]
    fn every_crash_point_is_prefix_consistent() {
        let explored = super::check_all_crash_points();
        assert!(explored > 100, "model WAL too small: {explored} cuts");
    }

    /// Every single-bit corruption is contained to the tail.
    #[test]
    fn every_bit_flip_is_contained() {
        let explored = super::check_all_bit_flips();
        assert!(explored > 200, "model WAL too small: {explored} flips");
    }

    /// The model's codec is byte-identical to production for a frame the
    /// production tests also pin (CRC via the exported `crc32`).
    #[test]
    fn frame_layout_matches_production() {
        let frame = super::encode_frame(7, 2, b"xy");
        assert_eq!(&frame[0..4], &11u32.to_le_bytes(), "len = 8 + 1 + 2");
        let payload = &frame[8..];
        assert_eq!(
            &frame[4..8],
            &mube_serve::persist::crc32(payload).to_le_bytes()
        );
        assert_eq!(&payload[0..8], &7u64.to_le_bytes());
        assert_eq!(payload[8], 2);
        assert_eq!(&payload[9..], b"xy");
    }
}

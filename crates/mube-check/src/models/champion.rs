//! Model of the portfolio champion fold (`mube-opt/src/portfolio.rs`).
//!
//! Production kernel: portfolio workers pull member indices from a shared
//! `next_job` counter, run their member, and fold results into a
//! mutex-guarded champion cell (publishing an epoch tick per improvement).
//! The documented contract is:
//!
//! 1. **Monotone**: the champion's score never decreases.
//! 2. **Deterministic winner**: the final champion is the best score with
//!    the lowest member index as tie-break, *independent of schedule*.
//! 3. **Epoch accounting**: one epoch tick per champion improvement.
//!
//! The strict fold uses `score > best || (score == best && worker < best_worker)`;
//! the buggy variant (`score >= best`) lets whichever tied member folds
//! *last* win — a schedule-dependent champion the explorer refutes.

use crate::sync::{AtomicU64, AtomicUsize, Mutex};
use crate::thread;
use std::sync::atomic::Ordering;
use std::sync::Arc;

struct Champ {
    score: i64,
    member: usize,
    trace: Vec<(usize, i64)>,
}

/// One schedule of the champion fold over `scores` with two workers.
/// `strict` selects the production tie-break; `!strict` is the buggy fold.
///
/// # Panics
/// When a champion-fold invariant is violated under the current schedule.
pub fn run(scores: &[i64], strict: bool) {
    let scores: Arc<Vec<i64>> = Arc::new(scores.to_vec());
    let champion = Arc::new(Mutex::new(Champ {
        score: i64::MIN,
        member: usize::MAX,
        trace: Vec::new(),
    }));
    // ordering: mirrors portfolio.rs — job indices only need atomicity;
    // the checker executes SC regardless.
    let next_job = Arc::new(AtomicUsize::new(0));
    let epoch = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..2)
        .map(|_| {
            let scores = Arc::clone(&scores);
            let champion = Arc::clone(&champion);
            let next_job = Arc::clone(&next_job);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || loop {
                // ordering: mirrors the portfolio's Relaxed job ticket.
                let m = next_job.fetch_add(1, Ordering::Relaxed);
                if m >= scores.len() {
                    break;
                }
                let score = scores[m];
                let mut ch = champion.lock();
                let better = if strict {
                    score > ch.score || (score == ch.score && m < ch.member)
                } else {
                    score >= ch.score
                };
                if better {
                    assert!(
                        score >= ch.score,
                        "champion fold regressed: {} -> {score}",
                        ch.score
                    );
                    ch.score = score;
                    ch.member = m;
                    ch.trace.push((m, score));
                    // ordering: mirrors the Release epoch tick in
                    // portfolio.rs (published under the champion mutex).
                    epoch.fetch_add(1, Ordering::Release);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker finished");
    }

    let ch = champion.lock();
    // Deterministic winner: best score, lowest member index on ties —
    // whatever the schedule was.
    let best = scores.iter().copied().max().expect("non-empty scores");
    let want_member = scores
        .iter()
        .position(|&s| s == best)
        .expect("winner exists");
    assert_eq!(ch.score, best, "champion missed the best score");
    assert_eq!(
        ch.member, want_member,
        "champion winner depends on the schedule"
    );
    // Monotone improvement trace.
    for pair in ch.trace.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "champion trace not monotone: {:?}",
            ch.trace
        );
    }
    // Epoch accounting: exactly one tick per recorded improvement.
    assert_eq!(
        epoch.load(Ordering::Acquire),
        ch.trace.len() as u64,
        "epoch ticks diverge from improvements"
    );
}

#[cfg(test)]
mod tests {
    use crate::engine::Explorer;

    /// Tie between members 1 and 2 — the strict fold picks member 1 under
    /// every schedule within the bound.
    #[test]
    fn strict_fold_winner_is_schedule_independent() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("champion-strict", || super::run(&[40, 90, 90], true));
        report.assert_ok();
        assert!(report.schedules > 1, "model must actually branch");
    }

    /// The `>=` fold is refuted: some schedule lets the tied member 2 fold
    /// after member 1 and steal the championship.
    #[test]
    fn ge_fold_has_schedule_dependent_winner() {
        let report = Explorer::new()
            .preemption_bound(2)
            .check("champion-ge", || super::run(&[40, 90, 90], false));
        let failure = report.expect_failure();
        assert!(
            failure.message.contains("depends on the schedule"),
            "{failure}"
        );
    }

    /// No ties: both folds agree and both survive every schedule.
    #[test]
    fn distinct_scores_are_deterministic_either_way() {
        for strict in [true, false] {
            Explorer::new()
                .preemption_bound(2)
                .check("champion-distinct", move || {
                    super::run(&[10, 70, 30], strict);
                })
                .assert_ok();
        }
    }
}

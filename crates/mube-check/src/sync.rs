//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Outside an exploration these delegate straight to `std` (same semantics,
//! one branch of overhead) — that is what the differential tests in
//! `tests/differential.rs` pin down. Inside [`crate::engine::Explorer::check`]
//! every operation becomes a scheduling point, letting the explorer
//! enumerate interleavings.
//!
//! Shim atomics execute as `SeqCst` under exploration regardless of the
//! `Ordering` argument: the checker explores sequentially-consistent
//! interleavings, not weak-memory reorderings (see the engine docs).
//! Orderings are accepted so models can mirror production code verbatim.

use crate::engine::{current, Blocker, Engine};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A mutex that the model checker can schedule around. API mirrors
/// `std::sync::Mutex`, minus poisoning (a panicking model thread aborts the
/// whole run, so poison can never be observed).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model_id: std::sync::OnceLock<usize>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            model_id: std::sync::OnceLock::new(),
        }
    }

    fn id(&self, eng: &Engine) -> usize {
        *self.model_id.get_or_init(|| eng.register_mutex())
    }

    /// Acquires the mutex, parking at a scheduling point first when under
    /// exploration.
    ///
    /// # Panics
    /// If the underlying lock is poisoned (passthrough mode only).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            Some((eng, tid)) => {
                let id = self.id(&eng);
                eng.yield_op(tid, Some(Blocker::Mutex(id)));
                eng.acquire_mutex(id, tid);
                let guard = self
                    .inner
                    .try_lock()
                    .expect("scheduler granted a mutex that std reports held");
                MutexGuard {
                    guard,
                    model: Some((eng, id)),
                }
            }
            None => MutexGuard {
                guard: self.inner.lock().expect("mutex poisoned"),
                model: None,
            },
        }
    }

    /// Attempts the lock without blocking; still a scheduling point under
    /// exploration (both outcomes are explored across schedules).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match current() {
            Some((eng, tid)) => {
                let id = self.id(&eng);
                eng.yield_op(tid, None);
                if eng.try_acquire_mutex(id, tid) {
                    let guard = self
                        .inner
                        .try_lock()
                        .expect("scheduler granted a mutex that std reports held");
                    Some(MutexGuard {
                        guard,
                        model: Some((eng, id)),
                    })
                } else {
                    None
                }
            }
            None => self
                .inner
                .try_lock()
                .ok()
                .map(|guard| MutexGuard { guard, model: None }),
        }
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Panics
    /// If the underlying lock is poisoned.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

/// RAII guard for [`Mutex`]. Releasing is *not* a scheduling point: it runs
/// in `Drop`, possibly during unwinding, where parking could deadlock the
/// abort protocol. The next scheduling point of this thread exposes the
/// release to other schedules.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: std::sync::MutexGuard<'a, T>,
    model: Option<(Arc<Engine>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((eng, id)) = &self.model {
            eng.release_mutex(*id);
        }
    }
}

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            fn at_schedule_point(&self) {
                if let Some((eng, tid)) = current() {
                    eng.yield_op(tid, None);
                }
            }

            /// Loads the value (scheduling point under exploration).
            pub fn load(&self, order: Ordering) -> $prim {
                match current() {
                    Some((eng, tid)) => {
                        eng.yield_op(tid, None);
                        self.inner.load(Ordering::SeqCst)
                    }
                    None => self.inner.load(order),
                }
            }

            /// Stores a value (scheduling point under exploration).
            pub fn store(&self, value: $prim, order: Ordering) {
                match current() {
                    Some((eng, tid)) => {
                        eng.yield_op(tid, None);
                        self.inner.store(value, Ordering::SeqCst);
                    }
                    None => self.inner.store(value, order),
                }
            }

            /// Atomically adds, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((eng, tid)) => {
                        eng.yield_op(tid, None);
                        self.inner.fetch_add(value, Ordering::SeqCst)
                    }
                    None => self.inner.fetch_add(value, order),
                }
            }

            /// Atomically takes the maximum, returning the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((eng, tid)) => {
                        eng.yield_op(tid, None);
                        self.inner.fetch_max(value, Ordering::SeqCst)
                    }
                    None => self.inner.fetch_max(value, order),
                }
            }

            /// Atomically swaps the value, returning the previous one.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((eng, tid)) => {
                        eng.yield_op(tid, None);
                        self.inner.swap(value, Ordering::SeqCst)
                    }
                    None => self.inner.swap(value, order),
                }
            }

            /// Compare-and-exchange, mirroring the std signature.
            ///
            /// # Errors
            /// Returns the actual value when it differed from `expected`.
            pub fn compare_exchange(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current() {
                    Some(_) => {
                        self.at_schedule_point();
                        self.inner.compare_exchange(
                            expected,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }
                    None => self.inner.compare_exchange(expected, new, success, failure),
                }
            }
        }
    };
}

model_atomic!(
    /// Schedulable `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic!(
    /// Schedulable `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic!(
    /// Schedulable `AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);

/// Schedulable `AtomicBool` (separate from the macro: no `fetch_add`).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the flag (scheduling point under exploration).
    pub fn load(&self, order: Ordering) -> bool {
        match current() {
            Some((eng, tid)) => {
                eng.yield_op(tid, None);
                self.inner.load(Ordering::SeqCst)
            }
            None => self.inner.load(order),
        }
    }

    /// Stores the flag (scheduling point under exploration).
    pub fn store(&self, value: bool, order: Ordering) {
        match current() {
            Some((eng, tid)) => {
                eng.yield_op(tid, None);
                self.inner.store(value, Ordering::SeqCst);
            }
            None => self.inner.store(value, order),
        }
    }

    /// Atomically swaps the flag, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        match current() {
            Some((eng, tid)) => {
                eng.yield_op(tid, None);
                self.inner.swap(value, Ordering::SeqCst)
            }
            None => self.inner.swap(value, order),
        }
    }

    /// Compare-and-exchange, mirroring the std signature.
    ///
    /// # Errors
    /// Returns the actual value when it differed from `expected`.
    pub fn compare_exchange(
        &self,
        expected: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match current() {
            Some((eng, tid)) => {
                eng.yield_op(tid, None);
                self.inner
                    .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            }
            None => self.inner.compare_exchange(expected, new, success, failure),
        }
    }
}

//! Instrumented `thread::spawn`/`join` that the explorer can schedule.
//!
//! Outside an exploration these delegate to `std::thread`. Inside, spawn
//! registers the child with the engine (the child runs only when granted)
//! and join parks on a `Join` blocker.

use crate::engine::{current, Blocker, Engine};
use std::sync::Arc;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        eng: Arc<Engine>,
        tid: usize,
        result: Arc<std::sync::Mutex<Option<T>>>,
    },
}

/// Handle to a spawned model (or passthrough std) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Std(_) => f.write_str("JoinHandle(std)"),
            Inner::Model { tid, .. } => write!(f, "JoinHandle(model thread {tid})"),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result, mirroring
    /// `std::thread::JoinHandle::join`. Under exploration a panicking child
    /// aborts the entire run before `join` can return, so the `Err` case is
    /// only reachable in passthrough mode.
    ///
    /// # Errors
    /// The child's panic payload (passthrough mode).
    ///
    /// # Panics
    /// If called under exploration from a non-model thread.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(handle) => handle.join(),
            Inner::Model { eng, tid, result } => {
                let (cur, my_tid) =
                    current().expect("model JoinHandle joined outside its exploration");
                debug_assert!(Arc::ptr_eq(&cur, &eng), "joined across explorations");
                eng.yield_op(my_tid, Some(Blocker::Join(tid)));
                let value = result
                    .lock()
                    .expect("model result slot poisoned")
                    .take()
                    .expect("joined model thread finished without a result");
                Ok(value)
            }
        }
    }
}

/// Spawns a thread. Under exploration the spawn itself is a scheduling
/// point and the child starts parked until the scheduler grants it.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current() {
        Some((eng, my_tid)) => {
            eng.yield_op(my_tid, None);
            let result = Arc::new(std::sync::Mutex::new(None));
            let slot = Arc::clone(&result);
            let tid = eng.spawn_thread(move || {
                let value = f();
                *slot.lock().expect("model result slot poisoned") = Some(value);
            });
            JoinHandle {
                inner: Inner::Model { eng, tid, result },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

/// An explicit scheduling point (passthrough: `std::thread::yield_now`).
/// Models use it to mark "work happens here" windows the scheduler may
/// interleave into.
pub fn yield_now() {
    match current() {
        Some((eng, tid)) => eng.yield_op(tid, None),
        None => std::thread::yield_now(),
    }
}

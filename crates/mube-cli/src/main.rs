//! The `mube` binary: parse, dispatch, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mube_cli::parse(&argv).and_then(mube_cli::run) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        // Lint findings are the command's product, not a malfunction:
        // print them to stdout but still fail (distinct code for scripts).
        Err(mube_cli::CliError::Lint(report)) => {
            println!("{report}");
            ExitCode::from(2)
        }
        Err(error) => {
            eprintln!("mube: {error}");
            if matches!(error, mube_cli::CliError::Usage(_)) {
                eprintln!("\n{}", mube_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}

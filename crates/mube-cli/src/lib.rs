//! # mube-cli — the `mube` command-line tool
//!
//! A thin, dependency-free command-line front end over the `µBE` engine,
//! working on plain-text source catalogs (see `mube_core::catalog`):
//!
//! ```text
//! mube gen --sources 60 --out books.catalog          # synthesize a catalog
//! mube validate books.catalog                        # parse + stats
//! mube match books.catalog --theta 0.5               # mediate all sources
//! mube solve books.catalog --max 8 --pin site0003 \
//!            --weight coverage=0.4 --explain         # select + mediate
//! ```
//!
//! The library half holds the argument parsing and command implementations
//! (all returning `Result<String, CliError>` so they are unit-testable);
//! `main.rs` only dispatches.

pub mod args;
pub mod commands;

pub use args::{parse, Command};
pub use commands::{run, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
mube — user-guided source selection and schema mediation (µBE, ICDE 2007)

USAGE:
    mube gen      --sources N [--seed S] [--domain D] [--paper-scale] --out FILE
    mube validate FILE
    mube match    FILE [--theta T] [--sources a,b,c]
    mube solve    FILE [--max M] [--theta T] [--beta B] [--seed S]
                       [--solver tabu|sls|annealing|pso]
                       [--threads N] [--portfolio tabu,sls,anneal[,pso]]
                       [--restarts R] [--time-budget MS]
                       [--pin NAME]... [--weight QEF=W]...
                       [--explain | --json]
    mube scale-solve   [--sources N] [--budget MS] [--domain D]
                       [--max M] [--theta T] [--beta B] [--top-k K]
                       [--seed S] [--keyword W]... [--pin NAME]...
                       [--solver tabu|sls|annealing|pso] [--threads N]
                       [--portfolio SPEC] [--restarts R] [--json]
    mube lint     FILE [--max M] [--theta T] [--beta B]
                       [--pin NAME]... [--weight QEF=W]...
                       [--scale-threshold N] [--deny-warnings] [--json]
    mube lint-src [ROOT] [--deny] [--json] [--allowlist FILE]
    mube exec     [--sources N] [--seed S] [--domain D] [--max M]
                       [--theta T] [--beta B] [--solver NAME]
                       [--faults SPEC] [--fault-seed S] [--query LO..HI]
                       [--json | --resolve]
    mube serve    [--addr HOST:PORT] [--threads N]
                       [--data-dir DIR] [--fsync always|interval[:MS]|never]
                       [--repl-addr HOST:PORT] [--follow HOST:PORT]
                       [--repl-sync] [--promote-timeout MS]
                       [--scrub-interval MS] [--quarantine-keep K]
    mube promote  HOST:PORT
    mube resync   HOST:PORT
    mube fsck     DIR [--repair] [--json]
    mube help

COMMANDS:
    gen        Generate a synthetic catalog (domains: books, airfares,
               movies, music; default books at test scale, --paper-scale
               for the paper's cardinalities)
    validate   Parse a catalog and print per-source statistics
    match      Run schema matching over sources (no selection)
    solve      Select at most --max sources and mediate a schema;
               --time-budget MS stops at the deadline and reports the
               best solution found so far (anytime)
    scale-solve  Stream a 100k+-source synthetic universe and solve it
               hierarchically: relevance pruning keeps --top-k
               survivors, MinHash/LSH blocking condenses them into
               clusters, a coarse solve picks cluster families, and a
               fine solve over the expanded winners emits a validated
               solution; --budget MS bounds the whole pipeline
    lint       Statically audit a catalog + constraints before solving;
               exits 2 when MUBE0xx errors (or, with --deny-warnings,
               any finding) are reported; --scale-threshold N warns
               (MUBE017) on catalogs too large for a flat solve
    lint-src   Scan the workspace's own Rust sources under ROOT/crates
               (default `.`) for project invariants — wall-clock in
               solver code, bare unwrap, unjustified Relaxed orderings
               (MUBE1xx codes); exits 2 on errors (or, with --deny, any
               finding); `ROOT/lint-src.allow` grants path-level waivers
    exec       Generate, solve, then execute a query over the selected
               sources — optionally injecting faults (--faults rate=0.3,
               auto[:SCALE], or unavailable=..,timeout=..,partial=..,
               slow=..); prints the degradation report, and with
               --resolve re-probes and re-solves around failing sources
    serve      Run the HTTP/JSON session server (default 127.0.0.1:7207;
               see PROTOCOL.md for endpoints); --data-dir journals
               sessions durably and replays them on restart;
               --repl-addr ships the journal to followers, --follow
               runs a read-only replica of a leader (--repl-sync gates
               mutating responses on follower acks, --promote-timeout
               auto-promotes after MS without leader contact);
               --scrub-interval MS re-verifies the journal on disk
               against served state in the background (0 disables),
               --quarantine-keep K caps retained quarantine files
    promote    Ask a follower to become the leader (checked: refuses
               when its state diverged from the leader's)
    resync     Ask a follower (diverged or not) to archive its journal
               and take a fresh full copy from its leader
    fsck       Check a --data-dir journal offline: CRCs, LSN order,
               snapshot/tail overlap, replay digest; --repair truncates
               torn tails, salvages readable records past corruption,
               and rebuilds a clean snapshot (evidence is quarantined);
               exits 2 when the directory is not clean
    help       Show this message";

//! Command implementations. Each returns the text to print, so the
//! commands are unit-testable without capturing stdout.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

use mube_audit::Analyzer;
use mube_core::catalog;
use mube_core::constraints::Constraints;
use mube_core::diag::{DiagCode, Diagnostic};
use mube_core::matchop::{MatchOperator, MatchOutcome};
use mube_core::problem::Problem;
use mube_core::qefs::{data_only_qefs, paper_default_qefs};
use mube_core::source::Universe;
use mube_core::{explain, MubeError, SourceId};
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::{
    ParticleSwarm, Portfolio, SimulatedAnnealing, StochasticLocalSearch, SubsetSolver, TabuSearch,
};
use mube_synth::{generate, SynthConfig};

use crate::args::Command;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; print usage.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Engine error (bad catalog, conflicting constraints, ...).
    Engine(MubeError),
    /// `mube lint` found problems; carries the rendered report. The binary
    /// prints it to stdout and exits with a distinct code.
    Lint(String),
}

impl PartialEq for CliError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CliError::Usage(a), CliError::Usage(b)) => a == b,
            (CliError::Engine(a), CliError::Engine(b)) => a == b,
            (CliError::Io(a), CliError::Io(b)) => a.kind() == b.kind(),
            (CliError::Lint(a), CliError::Lint(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(detail) => write!(f, "usage error: {detail}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Lint(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<MubeError> for CliError {
    fn from(e: MubeError) -> Self {
        CliError::Engine(e)
    }
}

/// Executes a parsed command and returns its output text.
pub fn run(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(crate::USAGE.to_string()),
        Command::Gen {
            sources,
            seed,
            domain,
            paper_scale,
            out,
        } => {
            let mut config = if paper_scale {
                SynthConfig::paper(sources)
            } else {
                SynthConfig::small(sources)
            };
            config.schema.domain = domain;
            let synth = generate(&config, seed);
            let text = catalog::to_text(&synth.universe);
            std::fs::write(&out, &text)?;
            Ok(format!(
                "wrote {} sources ({} attributes, {} tuples) to {out}",
                synth.universe.len(),
                synth.universe.total_attrs(),
                synth.universe.total_cardinality(),
            ))
        }
        Command::Validate { file } => {
            let universe = load(&file)?;
            let mut out = String::new();
            writeln!(
                out,
                "{}: {} sources, {} attributes, {} total tuples",
                file,
                universe.len(),
                universe.total_attrs(),
                universe.total_cardinality()
            )
            .expect("string write");
            let cooperating = universe.sources().filter(|s| s.cooperates()).count();
            writeln!(out, "cooperating (signature + cardinality): {cooperating}")
                .expect("string write");
            for source in universe.sources() {
                writeln!(
                    out,
                    "  {} — {} attrs, {} tuples{}",
                    source.name(),
                    source.schema().len(),
                    source.cardinality(),
                    if source.cooperates() {
                        ""
                    } else {
                        " (no signature)"
                    }
                )
                .expect("string write");
            }
            Ok(out)
        }
        Command::Match {
            file,
            theta,
            sources,
        } => {
            let universe = Arc::new(load(&file)?);
            let selected = resolve_sources(&universe, &sources)?;
            let matcher = ClusterMatcher::new(Arc::clone(&universe), JaccardNGram::trigram());
            let constraints = Constraints::with_max_sources(universe.len()).theta(theta);
            match matcher.match_sources(&universe, &selected, &constraints) {
                MatchOutcome::Matched { schema, quality } => Ok(format!(
                    "matching quality F1 = {quality:.4}, {} GAs over {} sources:\n{}",
                    schema.len(),
                    selected.len(),
                    schema.display(&universe)
                )),
                MatchOutcome::Infeasible => Err(CliError::Engine(MubeError::ConstraintConflict {
                    detail: "no matching satisfies the threshold on these sources".into(),
                })),
            }
        }
        Command::Solve {
            file,
            max,
            theta,
            beta,
            seed,
            solver,
            threads,
            portfolio,
            restarts,
            time_budget_ms,
            pins,
            weights,
            explain: want_explain,
            json,
        } => {
            let universe = Arc::new(load(&file)?);
            let mut constraints = Constraints::with_max_sources(max).theta(theta).beta(beta);
            for pin in &pins {
                let id = universe
                    .source_by_name(pin)
                    .map(mube_core::Source::id)
                    .ok_or_else(|| MubeError::UnknownAttribute {
                        detail: format!("source `{pin}`"),
                    })?;
                constraints.required_sources.insert(id);
            }
            // Use the characteristic-aware mix when sources carry an MTTF,
            // else the data-only mix.
            let has_mttf = universe
                .sources()
                .any(|s| s.characteristic("mttf").is_some());
            let mut qefs = if has_mttf {
                paper_default_qefs("mttf")
            } else {
                data_only_qefs()
            };
            for (name, weight) in &weights {
                qefs = qefs.reweighted(name, *weight)?;
            }
            let matcher: Arc<dyn MatchOperator> = Arc::new(ClusterMatcher::new(
                Arc::clone(&universe),
                JaccardNGram::trigram(),
            ));
            let problem = Problem::new(Arc::clone(&universe), matcher, qefs, constraints)?;
            let solver: Box<dyn SubsetSolver> = match portfolio {
                Some(spec) => {
                    // The spec was validated at parse time, but re-check so
                    // programmatic callers get a clean error, not a panic.
                    let pf = Portfolio::from_spec(&spec, restarts)
                        .map_err(CliError::Usage)?
                        .threads(threads);
                    Box::new(pf)
                }
                None => make_solver(&solver),
            };
            let solution = match time_budget_ms {
                Some(ms) => {
                    let cancel = mube_opt::CancelToken::after(std::time::Duration::from_millis(ms));
                    problem.solve_cancel(solver.as_ref(), seed, &cancel)?
                }
                None => problem.solve(solver.as_ref(), seed)?,
            };
            if json {
                return Ok(solution.to_json(&universe));
            }
            let mut out = String::new();
            if solution.timed_out {
                writeln!(
                    out,
                    "(time budget hit: best solution found within {}ms)",
                    time_budget_ms.unwrap_or(0)
                )
                .expect("string write");
            }
            write!(out, "{}", solution.display(&universe)).expect("string write");
            if want_explain {
                writeln!(out, "Why each source (leave-one-out ΔQ):").expect("string write");
                let explanation = explain::explain(&problem, &solution);
                write!(out, "{}", explanation.display(&universe)).expect("string write");
            }
            Ok(out)
        }
        exec @ Command::Exec { .. } => exec_command(exec),
        Command::Serve {
            addr,
            threads,
            data_dir,
            fsync,
            follow,
            repl_addr,
            repl_sync,
            promote_timeout,
            scrub_interval,
            quarantine_keep,
        } => {
            let defaults = mube_serve::ServeConfig::default();
            let config = mube_serve::ServeConfig {
                addr,
                threads,
                data_dir,
                fsync,
                follow,
                repl_addr,
                repl_sync,
                promote_timeout: promote_timeout.unwrap_or(std::time::Duration::ZERO),
                scrub_interval: scrub_interval.unwrap_or(defaults.scrub_interval),
                quarantine_keep: quarantine_keep.unwrap_or(defaults.quarantine_keep),
                ..defaults
            };
            let server = mube_serve::Server::bind(config)?;
            let bound = server.local_addr()?;
            // Print the resolved address before blocking so scripts binding
            // port 0 can pick it up. The first line's shape is a contract
            // (tests parse it); replication details go on a second line.
            println!("mube-serve listening on http://{bound} ({threads} worker threads)");
            if let Some(repl) = server.repl_addr() {
                println!("mube-serve replication on {repl}");
            }
            server.run()?;
            Ok(String::new())
        }
        Command::Promote { addr } => promote_command(&addr),
        Command::Resync { addr } => resync_command(&addr),
        Command::Fsck { dir, repair, json } => fsck_command(&dir, repair, json),
        Command::ScaleSolve {
            sources,
            budget_ms,
            domain,
            max,
            theta,
            beta,
            top_k,
            seed,
            keywords,
            pins,
            solver,
            threads,
            portfolio,
            restarts,
            json,
        } => {
            use mube_scale::{scale_solve, ScaleOptions, SynthStream};
            use mube_synth::StreamingUniverse;

            let mut config = SynthConfig::scale(sources);
            config.schema.domain = domain;
            let stream = SynthStream::new(StreamingUniverse::new(config, seed));

            let mut opts = ScaleOptions::new(max);
            opts.top_k = top_k;
            opts.theta = theta;
            opts.beta = beta;
            opts.seed = seed;
            opts.pins = pins;
            opts.query.keywords = keywords;
            opts.query.prefer_characteristics = vec!["mttf".to_string()];
            // Blocking is byte-deterministic in the thread count, so the
            // portfolio's --threads safely accelerates the sketches too.
            opts.lsh_threads = threads;

            let solver: Box<dyn SubsetSolver> = match portfolio {
                Some(spec) => Box::new(
                    Portfolio::from_spec(&spec, restarts)
                        .map_err(CliError::Usage)?
                        .threads(threads),
                ),
                None => make_solver(&solver),
            };
            let cancel = match budget_ms {
                Some(ms) => mube_opt::CancelToken::after(std::time::Duration::from_millis(ms)),
                None => mube_opt::CancelToken::none(),
            };
            let report = scale_solve(&stream, &opts, solver.as_ref(), &cancel)?;

            if json {
                let clusters: Vec<String> = report
                    .selected_clusters
                    .iter()
                    .map(|c| format!("\"{c}\""))
                    .collect();
                return Ok(format!(
                    "{{\"catalog_sources\":{},\"survivors\":{},\"clusters\":{},\
                     \"selected_clusters\":[{}],\"expanded\":{},\"coarse_quality\":{:.6},\
                     \"solution\":{}}}",
                    report.catalog_sources,
                    report.survivors,
                    report.clusters,
                    clusters.join(","),
                    report.expanded,
                    report.coarse_quality,
                    report.solution.to_json(&report.universe),
                ));
            }
            let mut out = String::new();
            writeln!(
                out,
                "scale-solve: {} sources → {} survivors → {} clusters",
                report.catalog_sources, report.survivors, report.clusters
            )
            .expect("string write");
            writeln!(
                out,
                "coarse: selected {} cluster{} (objective {:.4}): {}",
                report.selected_clusters.len(),
                if report.selected_clusters.len() == 1 {
                    ""
                } else {
                    "s"
                },
                report.coarse_quality,
                report.selected_clusters.join(", "),
            )
            .expect("string write");
            writeln!(out, "fine: expanded {} member sources", report.expanded)
                .expect("string write");
            if report.solution.timed_out {
                writeln!(
                    out,
                    "(time budget hit: best solution found within {}ms)",
                    budget_ms.unwrap_or(0)
                )
                .expect("string write");
            }
            write!(out, "{}", report.solution.display(&report.universe)).expect("string write");
            Ok(out)
        }
        Command::Lint {
            file,
            max,
            theta,
            beta,
            pins,
            weights,
            scale_threshold,
            deny_warnings,
            json,
        } => {
            let universe = load(&file)?;
            let mut constraints =
                Constraints::with_max_sources(max.unwrap_or_else(|| universe.len()))
                    .theta(theta)
                    .beta(beta);

            // Names that fail to resolve never become ids the analyzer
            // could inspect, so synthesize their diagnostics here.
            let mut unresolved: Vec<Diagnostic> = Vec::new();
            for pin in &pins {
                match universe.source_by_name(pin) {
                    Some(s) => {
                        constraints.required_sources.insert(s.id());
                    }
                    None => unresolved.push(Diagnostic::new(
                        DiagCode::UnknownRequiredSource,
                        format!("pinned source `{pin}` is not in the catalog"),
                    )),
                }
            }
            let has_mttf = universe
                .sources()
                .any(|s| s.characteristic("mttf").is_some());
            let qefs = if has_mttf {
                paper_default_qefs("mttf")
            } else {
                data_only_qefs()
            };
            for (name, _) in &weights {
                if !qefs.iter().any(|(q, _)| q.name() == name) {
                    unresolved.push(Diagnostic::new(
                        DiagCode::InvalidQefWeight,
                        format!("`{name}` does not name a QEF in this problem"),
                    ));
                }
            }

            let measure = JaccardNGram::trigram();
            let mut analyzer = Analyzer::new(&universe)
                .constraints(&constraints)
                .raw_weights(&weights)
                .similarity(&measure);
            if let Some(threshold) = scale_threshold {
                analyzer = analyzer.scale_threshold(threshold);
            }
            let mut report = analyzer.run();
            for diagnostic in unresolved {
                report.push(diagnostic);
            }

            let rendered = if json {
                report.to_json(&universe)
            } else {
                report.display(&universe)
            };
            let failed = report.has_errors() || (deny_warnings && !report.is_clean());
            if failed {
                Err(CliError::Lint(rendered))
            } else {
                Ok(rendered)
            }
        }
        Command::LintSrc {
            root,
            deny,
            json,
            allowlist,
        } => {
            use mube_check::lint;

            let root_path = std::path::Path::new(&root);
            // An explicit --allowlist must exist; the conventional
            // ROOT/lint-src.allow is picked up only when present.
            let allow_path = match allowlist {
                Some(p) => Some(std::path::PathBuf::from(p)),
                None => {
                    let conventional = root_path.join("lint-src.allow");
                    conventional.exists().then_some(conventional)
                }
            };
            let allow = match &allow_path {
                Some(p) => {
                    let text = std::fs::read_to_string(p)?;
                    lint::parse_allowlist(&text)
                        .map_err(|e| CliError::Usage(format!("{}: {e}", p.display())))?
                }
                None => Vec::new(),
            };
            let findings = lint::lint_workspace(root_path, &allow)?;
            let rendered = if json {
                lint::to_json(&findings)
            } else {
                lint::render(&findings)
            };
            let failed = findings.iter().any(|f| f.severity == lint::Severity::Error)
                || (deny && !findings.is_empty());
            if failed {
                Err(CliError::Lint(rendered))
            } else {
                Ok(rendered)
            }
        }
    }
}

/// POSTs an empty body to an admin path on a running server and returns
/// `(status, body)`. A tiny hand-rolled HTTP client (the workspace takes
/// no dependencies) with connect/read/write timeouts throughout.
fn admin_post(addr: &str, path: &str) -> Result<(u16, String), CliError> {
    use std::io::{Read as _, Write as _};
    use std::net::{TcpStream, ToSocketAddrs};
    use std::time::Duration;

    let target = addr
        .to_socket_addrs()
        .map_err(CliError::Io)?
        .next()
        .ok_or_else(|| CliError::Usage(format!("`{addr}` resolves to no address")))?;
    // deadline: every socket operation below is bounded.
    let stream =
        TcpStream::connect_timeout(&target, Duration::from_secs(5)).map_err(CliError::Io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(CliError::Io)?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(CliError::Io)?;
    let mut stream = stream;
    stream
        .write_all(
            format!("POST {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(CliError::Io)?;
    let mut response = String::new();
    // deadline: bounded by the read timeout above; the server closes
    // after one response.
    stream.read_to_string(&mut response).map_err(CliError::Io)?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CliError::Usage(format!("`{addr}` returned a non-HTTP response")))?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, b)| b);
    Ok((status, body.to_string()))
}

/// `mube promote`: POST `/admin/promote` to a follower and relay the
/// response.
fn promote_command(addr: &str) -> Result<String, CliError> {
    let (status, body) = admin_post(addr, "/admin/promote")?;
    if status == 200 {
        Ok(format!("promoted: {body}\n"))
    } else {
        Err(CliError::Usage(format!(
            "promotion refused (HTTP {status}): {body}"
        )))
    }
}

/// `mube resync`: POST `/admin/resync` to a follower and relay the
/// response — the anti-entropy road back for a quarantined replica.
fn resync_command(addr: &str) -> Result<String, CliError> {
    let (status, body) = admin_post(addr, "/admin/resync")?;
    if status == 200 {
        Ok(format!("resyncing: {body}\n"))
    } else {
        Err(CliError::Usage(format!(
            "resync refused (HTTP {status}): {body}"
        )))
    }
}

/// `mube fsck`: offline integrity check (and `--repair`) of a data dir.
/// Exits nonzero when the directory is not clean, so scripts can gate a
/// restart on it.
fn fsck_command(dir: &str, repair: bool, json: bool) -> Result<String, CliError> {
    let opts = mube_serve::FsckOptions {
        repair,
        ..mube_serve::FsckOptions::default()
    };
    let report = mube_serve::fsck(std::path::Path::new(dir), &opts).map_err(CliError::Io)?;
    let rendered = if json {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render()
    };
    if report.clean {
        Ok(rendered)
    } else {
        Err(CliError::Lint(rendered))
    }
}

/// `mube exec`: generate a universe, solve, execute a query over the
/// selection (optionally through a fault injector), report the
/// degradation, and — with `--resolve` — close the feedback loop by
/// re-probing and re-solving around the failing sources.
fn exec_command(command: Command) -> Result<String, CliError> {
    use mube_exec::{
        fault, probe_characteristics, BreakerConfig, Clock, Executor, HealthRegistry, Query,
        RetryPolicy, VirtualClock, WindowBackend,
    };

    let Command::Exec {
        sources,
        seed,
        domain,
        max,
        theta,
        beta,
        solver,
        faults,
        fault_seed,
        query,
        json,
        resolve,
    } = command
    else {
        unreachable!("exec_command is only called with Command::Exec");
    };

    let mut config = SynthConfig::small(sources);
    config.schema.domain = domain;
    let synth = generate(&config, seed);
    let universe = Arc::clone(&synth.universe);

    let solve = |universe: &Arc<Universe>, characteristic: &str| -> Result<_, CliError> {
        let constraints = Constraints::with_max_sources(max).theta(theta).beta(beta);
        let qefs = paper_default_qefs(characteristic);
        let matcher: Arc<dyn MatchOperator> = Arc::new(ClusterMatcher::new(
            Arc::clone(universe),
            JaccardNGram::trigram(),
        ));
        let problem = Problem::new(Arc::clone(universe), matcher, qefs, constraints)?;
        Ok(problem.solve(make_solver(&solver).as_ref(), seed)?)
    };
    let solution = solve(&universe, "mttf")?;

    let backend: Box<dyn mube_exec::DataSourceBackend> = match &faults {
        None => Box::new(WindowBackend::new(&synth)),
        Some(spec) => Box::new(fault::injector_from_spec(
            WindowBackend::new(&synth),
            &universe,
            spec,
            fault_seed,
        )?),
    };
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let registry = Arc::new(HealthRegistry::new(
        BreakerConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let executor = Executor::new(Arc::clone(&universe), backend)
        .with_policy(RetryPolicy::default().with_jitter_seed(fault_seed))
        .with_registry(Arc::clone(&registry))
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    let report = executor.execute(&solution.sources, &Query::range(query.0, query.1));

    if json {
        return Ok(report.to_json(&universe));
    }

    let name = |s: SourceId| {
        universe
            .get(s)
            .map_or_else(|| s.to_string(), |src| src.name().to_string())
    };
    let mut out = String::new();
    writeln!(
        out,
        "solved: {} sources (quality {:.4}), query [{}, {})",
        solution.sources.len(),
        solution.quality,
        query.0,
        query.1
    )
    .expect("string write");
    writeln!(
        out,
        "answer: {} distinct tuples ({} fetched, {} duplicates) \
         makespan {:.1} ms, total work {:.1} ms",
        report.distinct(),
        report.fetched,
        report.duplicates(),
        report.makespan.as_secs_f64() * 1000.0,
        report.total_cost.as_secs_f64() * 1000.0,
    )
    .expect("string write");
    for f in &report.per_source {
        writeln!(
            out,
            "  {} — {} tuples ({} novel), {} attempt{}, {:.1} ms",
            name(f.source),
            f.fetched,
            f.novel,
            f.attempts,
            if f.attempts == 1 { "" } else { "s" },
            f.cost.as_secs_f64() * 1000.0,
        )
        .expect("string write");
    }
    let degradation = &report.degradation;
    if degradation.is_clean() {
        writeln!(out, "degradation: none (all sources answered cleanly)").expect("string write");
    } else {
        writeln!(
            out,
            "degradation: {} failed, {} degraded; forfeited {} tuples \
             ({:.1}% of selected cardinality), {:.1}% estimated coverage",
            degradation.failed.len(),
            degradation.degraded.len(),
            degradation.lost_cardinality,
            degradation.lost_cardinality_fraction * 100.0,
            degradation.lost_coverage_fraction * 100.0,
        )
        .expect("string write");
        for f in &degradation.failed {
            writeln!(
                out,
                "  FAILED {} — {} after {} attempt{}",
                name(f.source),
                f.error,
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
            )
            .expect("string write");
        }
        for d in &degradation.degraded {
            writeln!(
                out,
                "  DEGRADED {} — kept {} tuples from a {} failure",
                name(d.source),
                d.kept,
                d.error,
            )
            .expect("string write");
        }
    }

    if resolve {
        // The feedback loop: re-probe every source through the same
        // (possibly faulty) backend, then re-solve scoring the *measured*
        // availability instead of the advertised MTTF.
        let refreshed = Arc::new(probe_characteristics(
            &universe,
            executor.backend(),
            mube_exec::probe::DEFAULT_PROBES,
        )?);
        let resolved = solve(&refreshed, "availability")?;
        let dropped: Vec<_> = solution
            .sources
            .difference(&resolved.sources)
            .map(|&s| name(s))
            .collect();
        let added: Vec<_> = resolved
            .sources
            .difference(&solution.sources)
            .map(|&s| name(s))
            .collect();
        writeln!(
            out,
            "re-solve on measured availability: {} sources (quality {:.4})",
            resolved.sources.len(),
            resolved.quality,
        )
        .expect("string write");
        writeln!(
            out,
            "  dropped: {}",
            if dropped.is_empty() {
                "(none)".to_string()
            } else {
                dropped.join(", ")
            }
        )
        .expect("string write");
        writeln!(
            out,
            "  added:   {}",
            if added.is_empty() {
                "(none)".to_string()
            } else {
                added.join(", ")
            }
        )
        .expect("string write");
    }
    Ok(out)
}

fn load(file: &str) -> Result<Universe, CliError> {
    let text = std::fs::read_to_string(file)?;
    Ok(catalog::from_text(&text)?)
}

fn resolve_sources(universe: &Universe, names: &[String]) -> Result<BTreeSet<SourceId>, CliError> {
    if names.is_empty() {
        return Ok(universe.source_ids().collect());
    }
    names
        .iter()
        .map(|name| {
            universe
                .source_by_name(name)
                .map(mube_core::Source::id)
                .ok_or_else(|| {
                    CliError::Engine(MubeError::UnknownAttribute {
                        detail: format!("source `{name}`"),
                    })
                })
        })
        .collect()
}

fn make_solver(name: &str) -> Box<dyn SubsetSolver> {
    match name {
        "sls" => Box::new(StochasticLocalSearch::default()),
        "annealing" => Box::new(SimulatedAnnealing::default()),
        "pso" => Box::new(ParticleSwarm::default()),
        _ => Box::new(TabuSearch::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mube-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn gen_catalog(name: &str, n: usize) -> String {
        let path = tmp(name);
        let cmd = parse(&["gen", "--sources", &n.to_string(), "--out", &path]).unwrap();
        run(cmd).unwrap();
        path
    }

    #[test]
    fn fsck_reports_clean_and_flags_corruption() {
        let clean = tmp("fsck-clean-dir");
        std::fs::create_dir_all(&clean).expect("fsck dir");
        let out = run(parse(&["fsck", &clean]).unwrap()).unwrap();
        assert!(out.contains("status: clean"), "{out}");

        let bad = tmp("fsck-bad-dir");
        std::fs::create_dir_all(&bad).expect("fsck dir");
        std::fs::write(
            std::path::Path::new(&bad).join("journal.wal"),
            b"this is not a WAL frame",
        )
        .expect("write corrupt journal");
        match run(parse(&["fsck", &bad, "--json"]).unwrap()) {
            Err(CliError::Lint(json)) => {
                assert!(json.contains("\"clean\":false"), "{json}");
                assert!(json.contains("journal.wal"), "{json}");
            }
            other => panic!("expected fsck to fail on corruption, got {other:?}"),
        }
    }

    #[test]
    fn gen_then_validate_roundtrips() {
        let path = gen_catalog("roundtrip.cat", 12);
        let report = run(parse(&["validate", &path]).unwrap()).unwrap();
        assert!(report.contains("12 sources"));
        assert!(report.contains("cooperating (signature + cardinality): 12"));
    }

    #[test]
    fn match_reports_gas() {
        let path = gen_catalog("match.cat", 10);
        let report = run(parse(&["match", &path, "--theta", "0.75"]).unwrap()).unwrap();
        assert!(report.contains("matching quality F1"));
        assert!(report.contains("GA0"));
    }

    #[test]
    fn solve_selects_and_pins() {
        let path = gen_catalog("solve.cat", 15);
        let report = run(parse(&[
            "solve", &path, "--max", "4", "--pin", "site0003", "--seed", "7",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("Overall quality"));
        assert!(report.contains("site0003"));
    }

    #[test]
    fn solve_with_explain_and_weights() {
        let path = gen_catalog("explain.cat", 10);
        let report = run(parse(&[
            "solve",
            &path,
            "--max",
            "3",
            "--weight",
            "coverage=0.5",
            "--explain",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("leave-one-out"));
        assert!(report.contains("ΔQ"));
    }

    #[test]
    fn solve_json_is_machine_readable() {
        let path = gen_catalog("solve-json.cat", 10);
        let out =
            run(parse(&["solve", &path, "--max", "3", "--seed", "7", "--json"]).unwrap()).unwrap();
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(out.contains("\"quality\":"), "{out}");
        assert!(out.contains("\"qefs\":"), "{out}");
        assert!(out.contains("\"schema\":"), "{out}");
        assert!(!out.contains("Overall quality"), "{out}");
        // Same seed, same document: the JSON output is deterministic.
        let again =
            run(parse(&["solve", &path, "--max", "3", "--seed", "7", "--json"]).unwrap()).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn solve_portfolio_json_is_thread_count_invariant() {
        let path = gen_catalog("solve-portfolio.cat", 12);
        let solve = |threads: &str| {
            run(parse(&[
                "solve",
                &path,
                "--max",
                "4",
                "--seed",
                "7",
                "--threads",
                threads,
                "--json",
            ])
            .unwrap())
            .unwrap()
        };
        let one = solve("1");
        let eight = solve("8");
        assert!(one.starts_with('{') && one.ends_with('}'), "{one}");
        // Determinism contract: thread count only affects scheduling, so
        // the rendered solution is byte-identical.
        assert_eq!(one, eight);
    }

    #[test]
    fn solve_with_explicit_portfolio_and_restarts() {
        let path = gen_catalog("solve-members.cat", 10);
        let report = run(parse(&[
            "solve",
            &path,
            "--max",
            "3",
            "--seed",
            "3",
            "--portfolio",
            "tabu,sls",
            "--restarts",
            "2",
            "--threads",
            "2",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("Overall quality"), "{report}");
    }

    #[test]
    fn solve_rejects_unknown_pin_and_weight() {
        let path = gen_catalog("errs.cat", 5);
        assert!(run(parse(&["solve", &path, "--pin", "ghost"]).unwrap()).is_err());
        assert!(run(parse(&["solve", &path, "--weight", "karma=0.5"]).unwrap()).is_err());
    }

    /// Path to the committed known-infeasible fixture, resolved relative
    /// to the workspace root.
    fn infeasible_fixture() -> String {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/infeasible.catalog"
        )
        .to_string()
    }

    #[test]
    fn scale_solve_end_to_end_text_and_json() {
        let argv = [
            "scale-solve",
            "--sources",
            "300",
            "--top-k",
            "60",
            "--max",
            "4",
            "--theta",
            "0.3",
            "--seed",
            "7",
        ];
        let text = run(parse(&argv).unwrap()).unwrap();
        assert!(text.contains("scale-solve: 300 sources"), "{text}");
        assert!(text.contains("clusters"), "{text}");
        assert!(text.contains("Overall quality"), "{text}");

        let mut json_argv: Vec<&str> = argv.to_vec();
        json_argv.push("--json");
        let json = run(parse(&json_argv).unwrap()).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"catalog_sources\":300"), "{json}");
        assert!(json.contains("\"selected_clusters\":["), "{json}");
        assert!(json.contains("\"solution\":{"), "{json}");
        // Same seed, same document.
        let again = run(parse(&json_argv).unwrap()).unwrap();
        assert_eq!(json, again);
    }

    #[test]
    fn scale_solve_pins_are_selected() {
        let report = run(parse(&[
            "scale-solve",
            "--sources",
            "300",
            "--top-k",
            "40",
            "--max",
            "4",
            "--theta",
            "0.3",
            "--pin",
            "site0242",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("site0242"), "{report}");
    }

    #[test]
    fn scale_solve_budget_is_anytime() {
        // A 0ms budget is already expired when the solves start; the
        // anytime guarantee still yields a feasible solution.
        let report = run(parse(&[
            "scale-solve",
            "--sources",
            "200",
            "--top-k",
            "40",
            "--max",
            "4",
            "--theta",
            "0.3",
            "--budget",
            "0",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("time budget hit"), "{report}");
        assert!(report.contains("Overall quality"), "{report}");
    }

    #[test]
    fn scale_solve_rejects_unknown_pin() {
        let err = run(parse(&[
            "scale-solve",
            "--sources",
            "50",
            "--top-k",
            "20",
            "--theta",
            "0.3",
            "--pin",
            "ghost",
        ])
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Engine(_)), "{err:?}");
    }

    #[test]
    fn lint_scale_threshold_warns_unpruned() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/unpruned.catalog"
        )
        .to_string();
        // Without a threshold the catalog lints clean...
        let report = run(parse(&["lint", &path]).unwrap()).unwrap();
        assert!(report.contains("no problems found"), "{report}");
        // ...above the threshold MUBE017 fires as a warning...
        let report = run(parse(&["lint", &path, "--scale-threshold", "8"]).unwrap()).unwrap();
        assert!(report.contains("warning[MUBE017]"), "{report}");
        assert!(report.contains("scale-solve"), "{report}");
        assert!(report.contains("0 errors"), "{report}");
        // ...and --deny-warnings promotes it to a failure.
        assert!(
            run(parse(&["lint", &path, "--scale-threshold", "8", "--deny-warnings"]).unwrap())
                .is_err()
        );
    }

    #[test]
    fn lint_clean_catalog_passes() {
        let path = gen_catalog("lint-clean.cat", 10);
        let report = run(parse(&["lint", &path]).unwrap()).unwrap();
        assert!(report.contains("no problems found"), "{report}");
    }

    #[test]
    fn lint_fixture_fails_under_deny_warnings() {
        let path = infeasible_fixture();
        // Warnings alone pass by default...
        let report = run(parse(&["lint", &path]).unwrap()).unwrap();
        assert!(report.contains("warning[MUBE011]"), "{report}");
        assert!(report.contains("warning[MUBE012]"), "{report}");
        assert!(report.contains("warning[MUBE013]"), "{report}");
        assert!(report.contains("warning[MUBE004]"), "{report}");
        assert!(report.contains("warning[MUBE014]"), "{report}");
        assert!(report.contains("0 errors"), "{report}");
        // ...and fail under --deny-warnings.
        let err = run(parse(&["lint", &path, "--deny-warnings"]).unwrap()).unwrap_err();
        match err {
            CliError::Lint(report) => assert!(report.contains("MUBE011"), "{report}"),
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_fixture_flags_near_duplicate_names() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/neardup.catalog"
        )
        .to_string();
        let report = run(parse(&["lint", &path]).unwrap()).unwrap();
        assert!(report.contains("warning[MUBE016]"), "{report}");
        assert!(report.contains("moviedb"), "{report}");
        assert!(report.contains("0 errors"), "{report}");
        assert!(run(parse(&["lint", &path, "--deny-warnings"]).unwrap()).is_err());
    }

    #[test]
    fn lint_errors_fail_without_deny_warnings() {
        let path = gen_catalog("lint-err.cat", 5);
        let err = run(parse(&["lint", &path, "--max", "0"]).unwrap()).unwrap_err();
        match err {
            CliError::Lint(report) => assert!(report.contains("error[MUBE010]"), "{report}"),
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_reports_unresolved_names() {
        let path = gen_catalog("lint-names.cat", 5);
        let err = run(parse(&["lint", &path, "--pin", "ghost", "--weight", "karma=1.0"]).unwrap())
            .unwrap_err();
        match err {
            CliError::Lint(report) => {
                assert!(report.contains("pinned source `ghost`"), "{report}");
                assert!(report.contains("`karma` does not name a QEF"), "{report}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_json_output() {
        let path = infeasible_fixture();
        let err = run(parse(&["lint", &path, "--deny-warnings", "--json"]).unwrap()).unwrap_err();
        match err {
            CliError::Lint(json) => {
                assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
                assert!(json.contains("\"code\":\"MUBE013\""), "{json}");
                assert!(json.contains("\"severity\":\"warning\""), "{json}");
                assert!(json.contains("\"archive\""), "{json}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
        // Clean catalogs produce an empty JSON array.
        let clean = gen_catalog("lint-json-clean.cat", 8);
        let out = run(parse(&["lint", &clean, "--json"]).unwrap()).unwrap();
        assert_eq!(out, "[]");
    }

    #[test]
    fn exec_clean_run_reports_no_degradation() {
        let out =
            run(parse(&["exec", "--sources", "15", "--max", "4", "--seed", "7"]).unwrap()).unwrap();
        assert!(out.contains("solved: 4 sources"), "{out}");
        assert!(out.contains("degradation: none"), "{out}");
        assert!(out.contains("distinct tuples"), "{out}");
    }

    #[test]
    fn exec_faulty_run_degrades_and_is_deterministic() {
        let args = [
            "exec",
            "--sources",
            "15",
            "--max",
            "5",
            "--seed",
            "7",
            "--faults",
            "rate=0.4",
            "--fault-seed",
            "3",
            "--json",
        ];
        let a = run(parse(&args).unwrap()).unwrap();
        assert!(a.starts_with('{') && a.ends_with('}'), "{a}");
        assert!(a.contains("\"clean\":false"), "{a}");
        assert!(a.contains("\"error\":\"unavailable\""), "{a}");
        // Byte-identical across runs with the same seeds.
        let b = run(parse(&args).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exec_resolve_reports_reselection() {
        let out = run(parse(&[
            "exec",
            "--sources",
            "15",
            "--max",
            "5",
            "--seed",
            "7",
            "--faults",
            "rate=0.4",
            "--fault-seed",
            "3",
            "--resolve",
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("re-solve on measured availability"), "{out}");
        assert!(out.contains("dropped:"), "{out}");
    }

    #[test]
    fn exec_rejects_bad_fault_spec() {
        let err = run(parse(&["exec", "--faults", "chaos=yes"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Engine(_)), "{err:?}");
    }

    #[test]
    fn validate_missing_file_is_io_error() {
        let err = run(parse(&["validate", "/nonexistent/x.cat"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn match_on_named_subset() {
        let path = gen_catalog("subset.cat", 10);
        let report = run(parse(&[
            "match",
            &path,
            "--theta",
            "0.75",
            "--sources",
            "site0000,site0001",
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("over 2 sources"));
    }

    #[test]
    fn gen_other_domains() {
        let path = tmp("movies.cat");
        let report = run(parse(&[
            "gen",
            "--sources",
            "8",
            "--domain",
            "movies",
            "--out",
            &path,
        ])
        .unwrap())
        .unwrap();
        assert!(report.contains("wrote 8 sources"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("movie") || text.contains("film") || text.contains("genre"));
    }

    #[test]
    fn help_prints_usage() {
        let text = run(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }
}

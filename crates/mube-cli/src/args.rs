//! Hand-rolled argument parsing (no external crates).

use mube_synth::DomainKind;

use crate::commands::CliError;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mube gen`.
    Gen {
        /// Number of sources.
        sources: usize,
        /// Generator seed.
        seed: u64,
        /// Schema domain.
        domain: DomainKind,
        /// Use the paper's cardinalities/pools instead of test scale.
        paper_scale: bool,
        /// Output file.
        out: String,
    },
    /// `mube validate`.
    Validate {
        /// Catalog file.
        file: String,
    },
    /// `mube match`.
    Match {
        /// Catalog file.
        file: String,
        /// Matching threshold θ.
        theta: f64,
        /// Restrict to these source names (all if empty).
        sources: Vec<String>,
    },
    /// `mube solve`.
    Solve {
        /// Catalog file.
        file: String,
        /// Maximum sources `m`.
        max: usize,
        /// Matching threshold θ.
        theta: f64,
        /// Minimum GA size β.
        beta: usize,
        /// Solver seed.
        seed: u64,
        /// Which solver to use.
        solver: String,
        /// OS threads for the portfolio (1 = sequential; results never
        /// depend on this).
        threads: usize,
        /// Portfolio member spec (`tabu,sls,anneal[,pso]`); `None` unless
        /// portfolio mode was requested.
        portfolio: Option<String>,
        /// How many times the portfolio spec is repeated (independent seed
        /// streams per copy).
        restarts: usize,
        /// Wall-clock budget in milliseconds; the solve stops at the
        /// deadline and reports the best incumbent found (anytime
        /// semantics). `None` runs to the evaluation budget.
        time_budget_ms: Option<u64>,
        /// Source names to pin (source constraints).
        pins: Vec<String>,
        /// `(qef, weight)` overrides.
        weights: Vec<(String, f64)>,
        /// Print the leave-one-out explanation.
        explain: bool,
        /// Emit the solution as machine-readable JSON instead of text.
        json: bool,
    },
    /// `mube lint`.
    Lint {
        /// Catalog file.
        file: String,
        /// Maximum sources `m` (defaults to the universe size).
        max: Option<usize>,
        /// Matching threshold θ.
        theta: f64,
        /// Minimum GA size β.
        beta: usize,
        /// Source names to pin (source constraints).
        pins: Vec<String>,
        /// `(qef, weight)` overrides.
        weights: Vec<(String, f64)>,
        /// Warn (MUBE017) when the catalog exceeds this many sources,
        /// since a flat solve without a pruning front end will be slow.
        scale_threshold: Option<usize>,
        /// Treat warnings as failures.
        deny_warnings: bool,
        /// Emit the findings as JSON instead of text.
        json: bool,
    },
    /// `mube scale-solve`.
    ScaleSolve {
        /// Sources in the synthetic streaming universe.
        sources: usize,
        /// Wall-clock budget in milliseconds for the whole pipeline
        /// (anytime semantics); `None` runs to the evaluation budgets.
        budget_ms: Option<u64>,
        /// Schema domain.
        domain: DomainKind,
        /// Maximum sources `m` in the final solution.
        max: usize,
        /// Matching threshold θ (both levels).
        theta: f64,
        /// Minimum GA size β (both levels).
        beta: usize,
        /// Relevance survivors kept by the pruning front end.
        top_k: usize,
        /// Generator + solver seed.
        seed: u64,
        /// Relevance keywords matched against source/attribute names.
        keywords: Vec<String>,
        /// Source names that must survive pruning and be selected.
        pins: Vec<String>,
        /// Which solver to use.
        solver: String,
        /// OS threads for the portfolio (results never depend on this).
        threads: usize,
        /// Portfolio member spec; `None` unless portfolio mode was
        /// requested.
        portfolio: Option<String>,
        /// Portfolio restart copies.
        restarts: usize,
        /// Emit the pipeline report as deterministic JSON.
        json: bool,
    },
    /// `mube exec`.
    Exec {
        /// Number of sources to generate.
        sources: usize,
        /// Generator + solver seed.
        seed: u64,
        /// Schema domain.
        domain: DomainKind,
        /// Maximum sources `m`.
        max: usize,
        /// Matching threshold θ.
        theta: f64,
        /// Minimum GA size β.
        beta: usize,
        /// Which solver to use.
        solver: String,
        /// Fault spec (`rate=0.3`, `auto[:SCALE]`, or profile fields);
        /// `None` executes fault-free.
        faults: Option<String>,
        /// Seed for fault draws and retry jitter.
        fault_seed: u64,
        /// Query tuple range `LO..HI`.
        query: (u64, u64),
        /// Emit the execution report as deterministic JSON.
        json: bool,
        /// After a faulty run, re-probe and re-solve around failing
        /// sources.
        resolve: bool,
    },
    /// `mube lint-src`.
    LintSrc {
        /// Workspace root to scan (its `crates/` tree is walked).
        root: String,
        /// Treat warnings as failures (errors always fail).
        deny: bool,
        /// Emit the findings as JSON instead of text.
        json: bool,
        /// Allowlist file (`CODE path-prefix` lines); defaults to
        /// `ROOT/lint-src.allow` when that file exists.
        allowlist: Option<String>,
    },
    /// `mube serve`.
    Serve {
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads.
        threads: usize,
        /// Durable session journal directory (`None` = in-memory only).
        data_dir: Option<String>,
        /// Journal fsync policy (`always`, `interval[:MS]`, or `never`).
        fsync: mube_serve::FsyncPolicy,
        /// Leader address to follow (`host:port` of its replication
        /// port); makes this node a read-only replica.
        follow: Option<String>,
        /// Replication listen address for followers to connect to.
        repl_addr: Option<String>,
        /// Semi-sync: mutating requests only succeed once a follower has
        /// durably applied their event.
        repl_sync: bool,
        /// Auto-promote after this long without leader contact
        /// (`None` = manual promotion only).
        promote_timeout: Option<std::time::Duration>,
        /// Background-scrub cadence (`None` = server default; zero
        /// disables scrubbing).
        scrub_interval: Option<std::time::Duration>,
        /// Quarantine retention cap (`None` = server default).
        quarantine_keep: Option<u64>,
    },
    /// `mube promote` — ask a follower to become the leader.
    Promote {
        /// The follower's HTTP address (`host:port`).
        addr: String,
    },
    /// `mube resync` — rebuild a (diverged) follower from its leader.
    Resync {
        /// The follower's HTTP address (`host:port`).
        addr: String,
    },
    /// `mube fsck` — offline data-dir integrity check and repair.
    Fsck {
        /// The data directory to check.
        dir: String,
        /// Quarantine corrupt ranges, salvage past them, and rebuild a
        /// clean snapshot.
        repair: bool,
        /// Emit the report as JSON instead of text.
        json: bool,
    },
    /// `mube help`.
    Help,
}

fn bad(detail: impl Into<String>) -> CliError {
    CliError::Usage(detail.into())
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, CliError> {
    iter.next()
        .ok_or_else(|| bad(format!("{flag} needs a value")))
}

fn parse_domain(s: &str) -> Result<DomainKind, CliError> {
    match s {
        "books" => Ok(DomainKind::Books),
        "airfares" => Ok(DomainKind::Airfares),
        "movies" => Ok(DomainKind::Movies),
        "music" => Ok(DomainKind::MusicRecords),
        other => Err(bad(format!("unknown domain `{other}`"))),
    }
}

/// Parses the argument vector (without the program name).
pub fn parse<S: AsRef<str>>(argv: &[S]) -> Result<Command, CliError> {
    let mut iter = argv.iter().map(AsRef::as_ref);
    let Some(command) = iter.next() else {
        return Ok(Command::Help);
    };
    match command {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "gen" => {
            let mut sources = 60usize;
            let mut seed = 2007u64;
            let mut domain = DomainKind::Books;
            let mut paper_scale = false;
            let mut out: Option<String> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--sources" => {
                        sources = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--sources needs an integer"))?;
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--seed needs an integer"))?;
                    }
                    "--domain" => domain = parse_domain(take_value(flag, &mut iter)?)?,
                    "--paper-scale" => paper_scale = true,
                    "--out" => out = Some(take_value(flag, &mut iter)?.to_string()),
                    other => return Err(bad(format!("unknown flag `{other}` for gen"))),
                }
            }
            let out = out.ok_or_else(|| bad("gen requires --out FILE"))?;
            Ok(Command::Gen {
                sources,
                seed,
                domain,
                paper_scale,
                out,
            })
        }
        "validate" => {
            let file = iter.next().ok_or_else(|| bad("validate requires a FILE"))?;
            if let Some(extra) = iter.next() {
                return Err(bad(format!("unexpected argument `{extra}`")));
            }
            Ok(Command::Validate {
                file: file.to_string(),
            })
        }
        "match" => {
            let file = iter
                .next()
                .ok_or_else(|| bad("match requires a FILE"))?
                .to_string();
            let mut theta = 0.75f64;
            let mut sources = Vec::new();
            while let Some(flag) = iter.next() {
                match flag {
                    "--theta" => {
                        theta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--theta needs a number"))?;
                    }
                    "--sources" => {
                        sources = take_value(flag, &mut iter)?
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for match"))),
                }
            }
            Ok(Command::Match {
                file,
                theta,
                sources,
            })
        }
        "solve" => {
            let file = iter
                .next()
                .ok_or_else(|| bad("solve requires a FILE"))?
                .to_string();
            let mut max = 10usize;
            let mut theta = 0.75f64;
            let mut beta = 2usize;
            let mut seed = 42u64;
            let mut solver = "tabu".to_string();
            let mut threads = 1usize;
            let mut threads_given = false;
            let mut portfolio: Option<String> = None;
            let mut restarts = 1usize;
            let mut time_budget_ms: Option<u64> = None;
            let mut pins = Vec::new();
            let mut weights = Vec::new();
            let mut explain = false;
            let mut json = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--max" => {
                        max = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--max needs an integer"))?;
                    }
                    "--theta" => {
                        theta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--theta needs a number"))?;
                    }
                    "--beta" => {
                        beta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--beta needs an integer"))?;
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--seed needs an integer"))?;
                    }
                    "--solver" => {
                        solver = take_value(flag, &mut iter)?.to_string();
                        if !["tabu", "sls", "annealing", "pso"].contains(&solver.as_str()) {
                            return Err(bad(format!("unknown solver `{solver}`")));
                        }
                    }
                    "--threads" => {
                        threads = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--threads needs an integer"))?;
                        if threads == 0 {
                            return Err(bad("--threads must be at least 1"));
                        }
                        threads_given = true;
                    }
                    "--portfolio" => {
                        let spec = take_value(flag, &mut iter)?;
                        mube_opt::parse_portfolio_spec(spec).map_err(bad)?;
                        portfolio = Some(spec.to_string());
                    }
                    "--restarts" => {
                        restarts = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--restarts needs an integer"))?;
                        if restarts == 0 {
                            return Err(bad("--restarts must be at least 1"));
                        }
                    }
                    "--time-budget" => {
                        time_budget_ms = Some(
                            take_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| bad("--time-budget needs milliseconds"))?,
                        );
                    }
                    "--pin" => pins.push(take_value(flag, &mut iter)?.to_string()),
                    "--weight" => {
                        let spec = take_value(flag, &mut iter)?;
                        let (name, value) = spec
                            .split_once('=')
                            .ok_or_else(|| bad("--weight needs QEF=W"))?;
                        let value: f64 = value.parse().map_err(|_| bad("--weight needs QEF=W"))?;
                        weights.push((name.to_string(), value));
                    }
                    "--explain" => explain = true,
                    "--json" => json = true,
                    other => return Err(bad(format!("unknown flag `{other}` for solve"))),
                }
            }
            if json && explain {
                return Err(bad("--json and --explain are mutually exclusive"));
            }
            // `--threads`/`--restarts` imply portfolio mode (even
            // `--threads 1`, so thread counts can be compared on otherwise
            // identical runs); give it the full default member mix so the
            // threads have work to spread.
            if portfolio.is_none() && (threads_given || restarts > 1) {
                portfolio = Some("tabu,sls,anneal,pso".to_string());
            }
            Ok(Command::Solve {
                file,
                max,
                theta,
                beta,
                seed,
                solver,
                threads,
                portfolio,
                restarts,
                time_budget_ms,
                pins,
                weights,
                explain,
                json,
            })
        }
        "lint" => {
            let file = iter
                .next()
                .ok_or_else(|| bad("lint requires a FILE"))?
                .to_string();
            let mut max: Option<usize> = None;
            let mut theta = 0.75f64;
            let mut beta = 2usize;
            let mut pins = Vec::new();
            let mut weights = Vec::new();
            let mut scale_threshold: Option<usize> = None;
            let mut deny_warnings = false;
            let mut json = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--max" => {
                        max = Some(
                            take_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| bad("--max needs an integer"))?,
                        );
                    }
                    "--scale-threshold" => {
                        scale_threshold = Some(
                            take_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| bad("--scale-threshold needs an integer"))?,
                        );
                    }
                    "--theta" => {
                        theta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--theta needs a number"))?;
                    }
                    "--beta" => {
                        beta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--beta needs an integer"))?;
                    }
                    "--pin" => pins.push(take_value(flag, &mut iter)?.to_string()),
                    "--weight" => {
                        let spec = take_value(flag, &mut iter)?;
                        let (name, value) = spec
                            .split_once('=')
                            .ok_or_else(|| bad("--weight needs QEF=W"))?;
                        let value: f64 = value.parse().map_err(|_| bad("--weight needs QEF=W"))?;
                        weights.push((name.to_string(), value));
                    }
                    "--deny-warnings" => deny_warnings = true,
                    "--json" => json = true,
                    other => return Err(bad(format!("unknown flag `{other}` for lint"))),
                }
            }
            Ok(Command::Lint {
                file,
                max,
                theta,
                beta,
                pins,
                weights,
                scale_threshold,
                deny_warnings,
                json,
            })
        }
        "scale-solve" => {
            let mut sources = 100_000usize;
            let mut budget_ms: Option<u64> = None;
            let mut domain = DomainKind::Books;
            let mut max = 10usize;
            let mut theta = 0.75f64;
            let mut beta = 2usize;
            let mut top_k = 1_500usize;
            let mut seed = 2007u64;
            let mut keywords = Vec::new();
            let mut pins = Vec::new();
            let mut solver = "tabu".to_string();
            let mut threads = 1usize;
            let mut threads_given = false;
            let mut portfolio: Option<String> = None;
            let mut restarts = 1usize;
            let mut json = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--sources" => {
                        sources = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--sources needs an integer"))?;
                        if sources == 0 {
                            return Err(bad("--sources must be at least 1"));
                        }
                    }
                    "--budget" => {
                        budget_ms = Some(
                            take_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| bad("--budget needs milliseconds"))?,
                        );
                    }
                    "--domain" => domain = parse_domain(take_value(flag, &mut iter)?)?,
                    "--max" => {
                        max = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--max needs an integer"))?;
                    }
                    "--theta" => {
                        theta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--theta needs a number"))?;
                    }
                    "--beta" => {
                        beta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--beta needs an integer"))?;
                    }
                    "--top-k" => {
                        top_k = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--top-k needs an integer"))?;
                        if top_k == 0 {
                            return Err(bad("--top-k must be at least 1"));
                        }
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--seed needs an integer"))?;
                    }
                    "--keyword" => keywords.push(take_value(flag, &mut iter)?.to_string()),
                    "--pin" => pins.push(take_value(flag, &mut iter)?.to_string()),
                    "--solver" => {
                        solver = take_value(flag, &mut iter)?.to_string();
                        if !["tabu", "sls", "annealing", "pso"].contains(&solver.as_str()) {
                            return Err(bad(format!("unknown solver `{solver}`")));
                        }
                    }
                    "--threads" => {
                        threads = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--threads needs an integer"))?;
                        if threads == 0 {
                            return Err(bad("--threads must be at least 1"));
                        }
                        threads_given = true;
                    }
                    "--portfolio" => {
                        let spec = take_value(flag, &mut iter)?;
                        mube_opt::parse_portfolio_spec(spec).map_err(bad)?;
                        portfolio = Some(spec.to_string());
                    }
                    "--restarts" => {
                        restarts = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--restarts needs an integer"))?;
                        if restarts == 0 {
                            return Err(bad("--restarts must be at least 1"));
                        }
                    }
                    "--json" => json = true,
                    other => return Err(bad(format!("unknown flag `{other}` for scale-solve"))),
                }
            }
            // Same convention as `solve`: --threads/--restarts imply the
            // full default portfolio mix.
            if portfolio.is_none() && (threads_given || restarts > 1) {
                portfolio = Some("tabu,sls,anneal,pso".to_string());
            }
            Ok(Command::ScaleSolve {
                sources,
                budget_ms,
                domain,
                max,
                theta,
                beta,
                top_k,
                seed,
                keywords,
                pins,
                solver,
                threads,
                portfolio,
                restarts,
                json,
            })
        }
        "exec" => {
            let mut sources = 40usize;
            let mut seed = 2007u64;
            let mut domain = DomainKind::Books;
            let mut max = 8usize;
            let mut theta = 0.75f64;
            let mut beta = 2usize;
            let mut solver = "tabu".to_string();
            let mut faults: Option<String> = None;
            let mut fault_seed = 1u64;
            let mut query = (0u64, u64::MAX);
            let mut json = false;
            let mut resolve = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--sources" => {
                        sources = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--sources needs an integer"))?;
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--seed needs an integer"))?;
                    }
                    "--domain" => domain = parse_domain(take_value(flag, &mut iter)?)?,
                    "--max" => {
                        max = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--max needs an integer"))?;
                    }
                    "--theta" => {
                        theta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--theta needs a number"))?;
                    }
                    "--beta" => {
                        beta = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--beta needs an integer"))?;
                    }
                    "--solver" => {
                        solver = take_value(flag, &mut iter)?.to_string();
                        if !["tabu", "sls", "annealing", "pso"].contains(&solver.as_str()) {
                            return Err(bad(format!("unknown solver `{solver}`")));
                        }
                    }
                    "--faults" => faults = Some(take_value(flag, &mut iter)?.to_string()),
                    "--fault-seed" => {
                        fault_seed = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--fault-seed needs an integer"))?;
                    }
                    "--query" => {
                        let spec = take_value(flag, &mut iter)?;
                        let (lo, hi) = spec
                            .split_once("..")
                            .ok_or_else(|| bad("--query needs LO..HI"))?;
                        let lo: u64 = lo.parse().map_err(|_| bad("--query needs LO..HI"))?;
                        let hi: u64 = hi.parse().map_err(|_| bad("--query needs LO..HI"))?;
                        if hi < lo {
                            return Err(bad("--query range must have LO ≤ HI"));
                        }
                        query = (lo, hi);
                    }
                    "--json" => json = true,
                    "--resolve" => resolve = true,
                    other => return Err(bad(format!("unknown flag `{other}` for exec"))),
                }
            }
            if json && resolve {
                return Err(bad("--json and --resolve are mutually exclusive"));
            }
            Ok(Command::Exec {
                sources,
                seed,
                domain,
                max,
                theta,
                beta,
                solver,
                faults,
                fault_seed,
                query,
                json,
                resolve,
            })
        }
        "lint-src" => {
            let mut root: Option<String> = None;
            let mut deny = false;
            let mut json = false;
            let mut allowlist: Option<String> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--deny" => deny = true,
                    "--json" => json = true,
                    "--allowlist" => allowlist = Some(take_value(flag, &mut iter)?.to_string()),
                    other if !other.starts_with("--") && root.is_none() => {
                        root = Some(other.to_string());
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for lint-src"))),
                }
            }
            Ok(Command::LintSrc {
                root: root.unwrap_or_else(|| ".".to_string()),
                deny,
                json,
                allowlist,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7207".to_string();
            let mut threads = 4usize;
            let mut data_dir: Option<String> = None;
            let mut fsync = mube_serve::FsyncPolicy::default();
            let mut follow: Option<String> = None;
            let mut repl_addr: Option<String> = None;
            let mut repl_sync = false;
            let mut promote_timeout: Option<std::time::Duration> = None;
            let mut scrub_interval: Option<std::time::Duration> = None;
            let mut quarantine_keep: Option<u64> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--addr" => addr = take_value(flag, &mut iter)?.to_string(),
                    "--threads" => {
                        threads = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--threads needs an integer"))?;
                        if threads == 0 {
                            return Err(bad("--threads must be at least 1"));
                        }
                    }
                    "--data-dir" => data_dir = Some(take_value(flag, &mut iter)?.to_string()),
                    "--fsync" => {
                        fsync = mube_serve::FsyncPolicy::parse(take_value(flag, &mut iter)?)
                            .map_err(bad)?;
                    }
                    "--follow" => follow = Some(take_value(flag, &mut iter)?.to_string()),
                    "--repl-addr" => repl_addr = Some(take_value(flag, &mut iter)?.to_string()),
                    "--repl-sync" => repl_sync = true,
                    "--promote-timeout" => {
                        let ms: u64 = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--promote-timeout needs milliseconds"))?;
                        if ms == 0 {
                            return Err(bad("--promote-timeout must be at least 1 ms"));
                        }
                        promote_timeout = Some(std::time::Duration::from_millis(ms));
                    }
                    "--scrub-interval" => {
                        let ms: u64 = take_value(flag, &mut iter)?
                            .parse()
                            .map_err(|_| bad("--scrub-interval needs milliseconds"))?;
                        scrub_interval = Some(std::time::Duration::from_millis(ms));
                    }
                    "--quarantine-keep" => {
                        quarantine_keep = Some(
                            take_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| bad("--quarantine-keep needs an integer"))?,
                        );
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for serve"))),
                }
            }
            if (follow.is_some() || repl_addr.is_some()) && data_dir.is_none() {
                return Err(bad("--follow / --repl-addr require --data-dir"));
            }
            if promote_timeout.is_some() && follow.is_none() {
                return Err(bad("--promote-timeout only makes sense with --follow"));
            }
            if (scrub_interval.is_some() || quarantine_keep.is_some()) && data_dir.is_none() {
                return Err(bad(
                    "--scrub-interval / --quarantine-keep require --data-dir",
                ));
            }
            Ok(Command::Serve {
                addr,
                threads,
                data_dir,
                fsync,
                follow,
                repl_addr,
                repl_sync,
                promote_timeout,
                scrub_interval,
                quarantine_keep,
            })
        }
        "promote" => {
            let mut addr: Option<String> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--addr" => addr = Some(take_value(flag, &mut iter)?.to_string()),
                    other if !other.starts_with('-') && addr.is_none() => {
                        addr = Some(other.to_string());
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for promote"))),
                }
            }
            let addr = addr.ok_or_else(|| bad("promote needs the follower's address"))?;
            Ok(Command::Promote { addr })
        }
        "resync" => {
            let mut addr: Option<String> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--addr" => addr = Some(take_value(flag, &mut iter)?.to_string()),
                    other if !other.starts_with('-') && addr.is_none() => {
                        addr = Some(other.to_string());
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for resync"))),
                }
            }
            let addr = addr.ok_or_else(|| bad("resync needs the follower's address"))?;
            Ok(Command::Resync { addr })
        }
        "fsck" => {
            let mut dir: Option<String> = None;
            let mut repair = false;
            let mut json = false;
            for flag in iter.by_ref() {
                match flag {
                    "--repair" => repair = true,
                    "--json" => json = true,
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                    }
                    other => return Err(bad(format!("unknown flag `{other}` for fsck"))),
                }
            }
            let dir = dir.ok_or_else(|| bad("fsck needs a data directory"))?;
            Ok(Command::Fsck { dir, repair, json })
        }
        other => Err(bad(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, CliError> {
        parse(args)
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(p(&[]).unwrap(), Command::Help);
        assert_eq!(p(&["help"]).unwrap(), Command::Help);
        assert_eq!(p(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn gen_defaults_and_flags() {
        let c = p(&["gen", "--out", "x.cat"]).unwrap();
        assert_eq!(
            c,
            Command::Gen {
                sources: 60,
                seed: 2007,
                domain: DomainKind::Books,
                paper_scale: false,
                out: "x.cat".into()
            }
        );
        let c = p(&[
            "gen",
            "--sources",
            "10",
            "--seed",
            "5",
            "--domain",
            "movies",
            "--paper-scale",
            "--out",
            "m.cat",
        ])
        .unwrap();
        assert!(matches!(
            c,
            Command::Gen {
                sources: 10,
                seed: 5,
                domain: DomainKind::Movies,
                paper_scale: true,
                ..
            }
        ));
    }

    #[test]
    fn gen_requires_out() {
        assert!(p(&["gen", "--sources", "3"]).is_err());
        assert!(p(&["gen", "--sources"]).is_err());
        assert!(p(&["gen", "--domain", "poetry", "--out", "x"]).is_err());
    }

    #[test]
    fn validate_takes_exactly_one_file() {
        assert_eq!(
            p(&["validate", "a.cat"]).unwrap(),
            Command::Validate {
                file: "a.cat".into()
            }
        );
        assert!(p(&["validate"]).is_err());
        assert!(p(&["validate", "a", "b"]).is_err());
    }

    #[test]
    fn match_parses_sources_list() {
        let c = p(&["match", "a.cat", "--theta", "0.5", "--sources", "x, y,z"]).unwrap();
        assert_eq!(
            c,
            Command::Match {
                file: "a.cat".into(),
                theta: 0.5,
                sources: vec!["x".into(), "y".into(), "z".into()]
            }
        );
    }

    #[test]
    fn solve_full_flags() {
        let c = p(&[
            "solve",
            "a.cat",
            "--max",
            "5",
            "--theta",
            "0.4",
            "--beta",
            "3",
            "--seed",
            "9",
            "--solver",
            "annealing",
            "--pin",
            "s1",
            "--pin",
            "s2",
            "--weight",
            "coverage=0.4",
            "--explain",
        ])
        .unwrap();
        match c {
            Command::Solve {
                max,
                theta,
                beta,
                seed,
                solver,
                pins,
                weights,
                explain,
                ..
            } => {
                assert_eq!(max, 5);
                assert_eq!(theta, 0.4);
                assert_eq!(beta, 3);
                assert_eq!(seed, 9);
                assert_eq!(solver, "annealing");
                assert_eq!(pins, vec!["s1", "s2"]);
                assert_eq!(weights, vec![("coverage".to_string(), 0.4)]);
                assert!(explain);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lint_defaults_and_flags() {
        let c = p(&["lint", "a.cat"]).unwrap();
        assert_eq!(
            c,
            Command::Lint {
                file: "a.cat".into(),
                max: None,
                theta: 0.75,
                beta: 2,
                pins: vec![],
                weights: vec![],
                scale_threshold: None,
                deny_warnings: false,
                json: false,
            }
        );
        let c = p(&[
            "lint",
            "a.cat",
            "--max",
            "4",
            "--theta",
            "0.5",
            "--beta",
            "3",
            "--pin",
            "s1",
            "--weight",
            "coverage=0.4",
            "--deny-warnings",
            "--json",
        ])
        .unwrap();
        match c {
            Command::Lint {
                max,
                theta,
                beta,
                pins,
                weights,
                deny_warnings,
                json,
                ..
            } => {
                assert_eq!(max, Some(4));
                assert_eq!(theta, 0.5);
                assert_eq!(beta, 3);
                assert_eq!(pins, vec!["s1"]);
                assert_eq!(weights, vec![("coverage".to_string(), 0.4)]);
                assert!(deny_warnings && json);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lint_rejects_bad_input() {
        assert!(p(&["lint"]).is_err());
        assert!(p(&["lint", "a.cat", "--max", "many"]).is_err());
        assert!(p(&["lint", "a.cat", "--warn-deny"]).is_err());
        assert!(p(&["lint", "a.cat", "--weight", "coverage"]).is_err());
        assert!(p(&["lint", "a.cat", "--scale-threshold", "huge"]).is_err());
    }

    #[test]
    fn lint_scale_threshold_flag() {
        match p(&["lint", "a.cat", "--scale-threshold", "5000"]).unwrap() {
            Command::Lint {
                scale_threshold, ..
            } => assert_eq!(scale_threshold, Some(5000)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scale_solve_defaults_and_flags() {
        match p(&["scale-solve"]).unwrap() {
            Command::ScaleSolve {
                sources,
                budget_ms,
                max,
                theta,
                beta,
                top_k,
                seed,
                keywords,
                pins,
                solver,
                portfolio,
                json,
                ..
            } => {
                assert_eq!(sources, 100_000);
                assert_eq!(budget_ms, None);
                assert_eq!(max, 10);
                assert_eq!(theta, 0.75);
                assert_eq!(beta, 2);
                assert_eq!(top_k, 1_500);
                assert_eq!(seed, 2007);
                assert!(keywords.is_empty() && pins.is_empty());
                assert_eq!(solver, "tabu");
                assert_eq!(portfolio, None);
                assert!(!json);
            }
            other => panic!("unexpected {other:?}"),
        }
        match p(&[
            "scale-solve",
            "--sources",
            "100000",
            "--budget",
            "60000",
            "--domain",
            "movies",
            "--max",
            "6",
            "--theta",
            "0.4",
            "--beta",
            "3",
            "--top-k",
            "800",
            "--seed",
            "9",
            "--keyword",
            "title",
            "--keyword",
            "director",
            "--pin",
            "site0042",
            "--threads",
            "4",
            "--json",
        ])
        .unwrap()
        {
            Command::ScaleSolve {
                sources,
                budget_ms,
                domain,
                max,
                theta,
                beta,
                top_k,
                seed,
                keywords,
                pins,
                threads,
                portfolio,
                json,
                ..
            } => {
                assert_eq!(sources, 100_000);
                assert_eq!(budget_ms, Some(60_000));
                assert_eq!(domain, DomainKind::Movies);
                assert_eq!(max, 6);
                assert_eq!(theta, 0.4);
                assert_eq!(beta, 3);
                assert_eq!(top_k, 800);
                assert_eq!(seed, 9);
                assert_eq!(keywords, vec!["title", "director"]);
                assert_eq!(pins, vec!["site0042"]);
                assert_eq!(threads, 4);
                // --threads engages the default portfolio mix.
                assert_eq!(portfolio.as_deref(), Some("tabu,sls,anneal,pso"));
                assert!(json);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scale_solve_rejects_bad_input() {
        assert!(p(&["scale-solve", "--sources", "0"]).is_err());
        assert!(p(&["scale-solve", "--top-k", "0"]).is_err());
        assert!(p(&["scale-solve", "--budget", "soon"]).is_err());
        assert!(p(&["scale-solve", "--solver", "oracle"]).is_err());
        assert!(p(&["scale-solve", "--threads", "0"]).is_err());
        assert!(p(&["scale-solve", "--out", "x"]).is_err());
    }

    #[test]
    fn solve_rejects_bad_input() {
        assert!(p(&["solve"]).is_err());
        assert!(p(&["solve", "a.cat", "--solver", "gradient-descent"]).is_err());
        assert!(p(&["solve", "a.cat", "--weight", "coverage"]).is_err());
        assert!(p(&["solve", "a.cat", "--max", "many"]).is_err());
        assert!(p(&["frobnicate"]).is_err());
    }

    #[test]
    fn solve_portfolio_flags() {
        // Plain solve: no portfolio.
        match p(&["solve", "a.cat"]).unwrap() {
            Command::Solve {
                threads,
                portfolio,
                restarts,
                ..
            } => {
                assert_eq!(threads, 1);
                assert_eq!(portfolio, None);
                assert_eq!(restarts, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --threads alone engages the default portfolio, even at 1 thread.
        for t in ["1", "8"] {
            match p(&["solve", "a.cat", "--threads", t]).unwrap() {
                Command::Solve {
                    threads, portfolio, ..
                } => {
                    assert_eq!(threads, t.parse::<usize>().unwrap());
                    assert_eq!(portfolio.as_deref(), Some("tabu,sls,anneal,pso"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match p(&[
            "solve",
            "a.cat",
            "--threads",
            "4",
            "--portfolio",
            "tabu,sls,anneal",
            "--restarts",
            "2",
        ])
        .unwrap()
        {
            Command::Solve {
                threads,
                portfolio,
                restarts,
                ..
            } => {
                assert_eq!(threads, 4);
                assert_eq!(portfolio.as_deref(), Some("tabu,sls,anneal"));
                assert_eq!(restarts, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p(&["solve", "a.cat", "--threads", "0"]).is_err());
        assert!(p(&["solve", "a.cat", "--restarts", "0"]).is_err());
        assert!(p(&["solve", "a.cat", "--portfolio", "tabu,genetic"]).is_err());
        assert!(p(&["solve", "a.cat", "--portfolio", ""]).is_err());
    }

    #[test]
    fn solve_json_flag() {
        match p(&["solve", "a.cat", "--json"]).unwrap() {
            Command::Solve { json, explain, .. } => {
                assert!(json);
                assert!(!explain);
            }
            other => panic!("unexpected {other:?}"),
        }
        // JSON output and the text explanation cannot be combined.
        assert!(p(&["solve", "a.cat", "--json", "--explain"]).is_err());
    }

    #[test]
    fn exec_defaults_and_flags() {
        match p(&["exec"]).unwrap() {
            Command::Exec {
                sources,
                seed,
                max,
                faults,
                fault_seed,
                query,
                json,
                resolve,
                ..
            } => {
                assert_eq!(sources, 40);
                assert_eq!(seed, 2007);
                assert_eq!(max, 8);
                assert_eq!(faults, None);
                assert_eq!(fault_seed, 1);
                assert_eq!(query, (0, u64::MAX));
                assert!(!json && !resolve);
            }
            other => panic!("unexpected {other:?}"),
        }
        match p(&[
            "exec",
            "--sources",
            "30",
            "--faults",
            "rate=0.3",
            "--fault-seed",
            "9",
            "--query",
            "100..5000",
            "--json",
        ])
        .unwrap()
        {
            Command::Exec {
                sources,
                faults,
                fault_seed,
                query,
                json,
                ..
            } => {
                assert_eq!(sources, 30);
                assert_eq!(faults.as_deref(), Some("rate=0.3"));
                assert_eq!(fault_seed, 9);
                assert_eq!(query, (100, 5000));
                assert!(json);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exec_rejects_bad_input() {
        assert!(p(&["exec", "--query", "backwards"]).is_err());
        assert!(p(&["exec", "--query", "9..3"]).is_err());
        assert!(p(&["exec", "--solver", "oracle"]).is_err());
        assert!(p(&["exec", "--json", "--resolve"]).is_err());
        assert!(p(&["exec", "--fault-seed", "soon"]).is_err());
    }

    #[test]
    fn lint_src_defaults_and_flags() {
        assert_eq!(
            p(&["lint-src"]).unwrap(),
            Command::LintSrc {
                root: ".".into(),
                deny: false,
                json: false,
                allowlist: None,
            }
        );
        assert_eq!(
            p(&[
                "lint-src",
                "/repo",
                "--deny",
                "--json",
                "--allowlist",
                "custom.allow"
            ])
            .unwrap(),
            Command::LintSrc {
                root: "/repo".into(),
                deny: true,
                json: true,
                allowlist: Some("custom.allow".into()),
            }
        );
        // One positional root at most; unknown flags rejected.
        assert!(p(&["lint-src", "a", "b"]).is_err());
        assert!(p(&["lint-src", "--deny-warnings"]).is_err());
        assert!(p(&["lint-src", "--allowlist"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            p(&["serve"]).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7207".into(),
                threads: 4,
                data_dir: None,
                fsync: mube_serve::FsyncPolicy::default(),
                follow: None,
                repl_addr: None,
                repl_sync: false,
                promote_timeout: None,
                scrub_interval: None,
                quarantine_keep: None,
            }
        );
        assert_eq!(
            p(&["serve", "--addr", "0.0.0.0:8080", "--threads", "8"]).unwrap(),
            Command::Serve {
                addr: "0.0.0.0:8080".into(),
                threads: 8,
                data_dir: None,
                fsync: mube_serve::FsyncPolicy::default(),
                follow: None,
                repl_addr: None,
                repl_sync: false,
                promote_timeout: None,
                scrub_interval: None,
                quarantine_keep: None,
            }
        );
        assert!(p(&["serve", "--threads", "0"]).is_err());
        assert!(p(&["serve", "--port", "80"]).is_err());
    }

    #[test]
    fn serve_persistence_flags() {
        let cmd = p(&["serve", "--data-dir", "/tmp/mube", "--fsync", "always"]).unwrap();
        match cmd {
            Command::Serve {
                data_dir, fsync, ..
            } => {
                assert_eq!(data_dir.as_deref(), Some("/tmp/mube"));
                assert_eq!(fsync, mube_serve::FsyncPolicy::Always);
            }
            other => panic!("unexpected {other:?}"),
        }
        match p(&["serve", "--fsync", "interval:50"]).unwrap() {
            Command::Serve { fsync, .. } => assert_eq!(
                fsync,
                mube_serve::FsyncPolicy::Interval(std::time::Duration::from_millis(50))
            ),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p(&["serve", "--fsync", "sometimes"]).is_err());
        assert!(p(&["serve", "--data-dir"]).is_err());
    }

    #[test]
    fn serve_replication_flags() {
        match p(&[
            "serve",
            "--data-dir",
            "/tmp/f",
            "--follow",
            "127.0.0.1:9000",
            "--repl-sync",
            "--promote-timeout",
            "1500",
        ])
        .unwrap()
        {
            Command::Serve {
                follow,
                repl_sync,
                promote_timeout,
                ..
            } => {
                assert_eq!(follow.as_deref(), Some("127.0.0.1:9000"));
                assert!(repl_sync);
                assert_eq!(
                    promote_timeout,
                    Some(std::time::Duration::from_millis(1500))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match p(&[
            "serve",
            "--data-dir",
            "/tmp/l",
            "--repl-addr",
            "127.0.0.1:0",
        ])
        .unwrap()
        {
            Command::Serve { repl_addr, .. } => {
                assert_eq!(repl_addr.as_deref(), Some("127.0.0.1:0"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Replication without a journal has nothing to ship or replay.
        assert!(p(&["serve", "--follow", "x:1"]).is_err());
        assert!(p(&["serve", "--repl-addr", "x:1"]).is_err());
        // Auto-promotion is a follower concept.
        assert!(p(&["serve", "--data-dir", "/tmp/l", "--promote-timeout", "500"]).is_err());
        assert!(p(&[
            "serve",
            "--data-dir",
            "/tmp/f",
            "--follow",
            "x:1",
            "--promote-timeout",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn serve_integrity_flags() {
        match p(&[
            "serve",
            "--data-dir",
            "/tmp/s",
            "--scrub-interval",
            "250",
            "--quarantine-keep",
            "3",
        ])
        .unwrap()
        {
            Command::Serve {
                scrub_interval,
                quarantine_keep,
                ..
            } => {
                assert_eq!(scrub_interval, Some(std::time::Duration::from_millis(250)));
                assert_eq!(quarantine_keep, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Zero disables the scrubber rather than erroring.
        match p(&["serve", "--data-dir", "/tmp/s", "--scrub-interval", "0"]).unwrap() {
            Command::Serve { scrub_interval, .. } => {
                assert_eq!(scrub_interval, Some(std::time::Duration::ZERO));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Integrity flags act on a journal; without one they are a typo.
        assert!(p(&["serve", "--scrub-interval", "250"]).is_err());
        assert!(p(&["serve", "--quarantine-keep", "3"]).is_err());
        assert!(p(&["serve", "--data-dir", "/tmp/s", "--quarantine-keep", "x"]).is_err());
    }

    #[test]
    fn fsck_parses_dir_and_flags() {
        assert_eq!(
            p(&["fsck", "/tmp/data"]).unwrap(),
            Command::Fsck {
                dir: "/tmp/data".into(),
                repair: false,
                json: false,
            }
        );
        assert_eq!(
            p(&["fsck", "/tmp/data", "--repair", "--json"]).unwrap(),
            Command::Fsck {
                dir: "/tmp/data".into(),
                repair: true,
                json: true,
            }
        );
        assert!(p(&["fsck"]).is_err());
        assert!(p(&["fsck", "/tmp/data", "--bogus"]).is_err());
    }

    #[test]
    fn resync_parses_addr() {
        assert_eq!(
            p(&["resync", "127.0.0.1:7208"]).unwrap(),
            Command::Resync {
                addr: "127.0.0.1:7208".into()
            }
        );
        assert_eq!(
            p(&["resync", "--addr", "10.0.0.2:80"]).unwrap(),
            Command::Resync {
                addr: "10.0.0.2:80".into()
            }
        );
        assert!(p(&["resync"]).is_err());
        assert!(p(&["resync", "--bogus", "x"]).is_err());
    }

    #[test]
    fn promote_parses_addr() {
        assert_eq!(
            p(&["promote", "127.0.0.1:7207"]).unwrap(),
            Command::Promote {
                addr: "127.0.0.1:7207".into()
            }
        );
        assert_eq!(
            p(&["promote", "--addr", "10.0.0.2:80"]).unwrap(),
            Command::Promote {
                addr: "10.0.0.2:80".into()
            }
        );
        assert!(p(&["promote"]).is_err());
        assert!(p(&["promote", "--bogus", "x"]).is_err());
    }

    #[test]
    fn solve_time_budget_flag() {
        match p(&["solve", "cat.catalog", "--time-budget", "250"]).unwrap() {
            Command::Solve { time_budget_ms, .. } => assert_eq!(time_budget_ms, Some(250)),
            other => panic!("unexpected {other:?}"),
        }
        match p(&["solve", "cat.catalog"]).unwrap() {
            Command::Solve { time_budget_ms, .. } => assert_eq!(time_budget_ms, None),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p(&["solve", "cat.catalog", "--time-budget", "soon"]).is_err());
        assert!(p(&["solve", "cat.catalog", "--time-budget"]).is_err());
    }
}

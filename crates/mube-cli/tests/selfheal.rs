//! Self-healing chaos smoke against real `mube` binaries.
//!
//! Two stories, both ending in a digest-proven recovery:
//!
//! 1. **Resync after divergence**: a follower whose journal disagrees with
//!    the leader's is quarantined by the digest rounds; `mube resync`
//!    archives its journal for forensics, takes a full copy from the
//!    leader, and the healed replica converges byte-for-byte — surviving a
//!    process restart.
//! 2. **fsck repair**: a bit flip in a sealed `snapshot.wal` is pinpointed
//!    by `mube fsck --json`, rebuilt by `--repair`, and the restarted
//!    server replays to the exact pre-corruption digest.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mube_core::catalog;
use mube_serve::{Event, FsyncPolicy, Journal};
use mube_synth::{generate, SynthConfig};

struct ServerProc {
    child: Child,
    addr: SocketAddr,
    repl: Option<SocketAddr>,
}

impl ServerProc {
    /// Spawns `mube serve --addr 127.0.0.1:0 --data-dir <dir> --fsync
    /// always <extra...>` and parses the bound addresses from the startup
    /// banner.
    fn spawn(data_dir: &Path, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mube"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--data-dir",
            ])
            .arg(data_dir)
            .args(["--fsync", "always"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mube serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a startup line")
            .expect("readable stdout");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable startup line: {banner:?}"));
        let repl = if extra.contains(&"--repl-addr") {
            let line = lines
                .next()
                .expect("replication banner line")
                .expect("readable stdout");
            Some(
                line.rsplit(' ')
                    .next()
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| panic!("unparseable replication line: {line:?}")),
            )
        } else {
            None
        };
        ServerProc { child, addr, repl }
    }

    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mube-selfheal-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test data dir");
    dir
}

/// Extracts `"key":value` (unquoted) or `"key":"value"` from a flat JSON
/// body without a parser dependency.
fn json_field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let rest = &body[body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + pat.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().unwrap_or_default().to_string()
    } else {
        rest.split([',', '}'])
            .next()
            .unwrap_or_default()
            .trim()
            .to_string()
    }
}

fn healthz(addr: SocketAddr) -> String {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    body
}

fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

fn catalog_text(sources: usize, seed: u64) -> String {
    catalog::to_text(&generate(&SynthConfig::small(sources), seed).universe)
}

fn mube(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_mube"))
        .args(args)
        .output()
        .expect("run mube");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.success(), text)
}

#[test]
fn resync_heals_a_diverged_follower_through_the_cli() {
    let leader_dir = fresh_dir("resync-leader");
    let follower_dir = fresh_dir("resync-follower");

    // Divergent seed: both journals hold LSN 1, with different contents.
    {
        let (j, _, _) = Journal::open(&leader_dir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(8, 1),
        })
        .unwrap();
    }
    {
        let (j, _, _) = Journal::open(&follower_dir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(8, 2),
        })
        .unwrap();
    }

    let leader = ServerProc::spawn(&leader_dir, &["--repl-addr", "127.0.0.1:0"]);
    let repl = leader.repl.expect("leader replication port");
    let follow = repl.to_string();
    let follower = ServerProc::spawn(&follower_dir, &["--follow", &follow]);
    let follower_addr = follower.addr;

    wait_for("divergence detection", || {
        json_field(&healthz(follower_addr), "diverged") == "true"
    });
    assert!(follower_dir.join("diverged.marker").exists());

    // The operator-facing repair command.
    let (ok, out) = mube(&["resync", &follower_addr.to_string()]);
    assert!(ok, "mube resync failed: {out}");
    assert!(out.contains("resyncing"), "{out}");

    // The healed follower converges to the leader's exact state.
    let leader_lsn = json_field(&healthz(leader.addr), "lsn");
    let leader_digest = json_field(&healthz(leader.addr), "digest");
    wait_for("post-resync convergence", || {
        let h = healthz(follower_addr);
        json_field(&h, "lsn") == leader_lsn
            && json_field(&h, "digest") == leader_digest
            && json_field(&h, "diverged") == "false"
    });
    assert!(!follower_dir.join("diverged.marker").exists());
    assert!(
        std::fs::read_dir(&follower_dir)
            .expect("read follower dir")
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().starts_with("quarantine-")),
        "the divergent journal must be archived as forensic evidence"
    );

    // Byte-for-byte: the follower's journal is the leader's journal.
    wait_for("journal byte convergence", || {
        std::fs::read(leader_dir.join("journal.wal")).expect("leader journal")
            == std::fs::read(follower_dir.join("journal.wal")).expect("follower journal")
    });

    // The heal survives a process restart.
    follower.kill();
    let follower2 = ServerProc::spawn(&follower_dir, &["--follow", &follow]);
    let follower2_addr = follower2.addr;
    wait_for("restart convergence", || {
        let h = healthz(follower2_addr);
        json_field(&h, "lsn") == leader_lsn && json_field(&h, "digest") == leader_digest
    });

    // And promotion eligibility is restored: kill the leader, promote.
    leader.kill();
    let (ok, out) = mube(&["promote", &follower2_addr.to_string()]);
    assert!(ok, "promote after resync failed: {out}");
    wait_for("promoted role", || {
        json_field(&healthz(follower2_addr), "role") == "leader"
    });
    assert_eq!(
        json_field(&healthz(follower2_addr), "digest"),
        leader_digest
    );

    follower2.kill();
}

#[test]
fn fsck_repairs_a_flipped_snapshot_byte_and_the_server_restarts_identically() {
    let dir = fresh_dir("fsck");

    // Seed offline with an aggressive snapshot cadence so `snapshot.wal`
    // exists: cadence 2 over five appends seals LSNs 1..=4 and leaves LSN 5
    // in the tail.
    {
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        for (id, seed) in [(1u64, 11u64), (2, 12), (3, 13), (4, 14), (5, 15)] {
            j.append(Event::CatalogCreate {
                id,
                text: catalog_text(6, seed),
            })
            .unwrap();
        }
    }
    assert!(dir.join("snapshot.wal").exists(), "seed did not compact");

    // Ground truth: what a healthy boot serves.
    let server = ServerProc::spawn(&dir, &[]);
    let digest = json_field(&healthz(server.addr), "digest");
    let lsn = json_field(&healthz(server.addr), "lsn");
    server.kill();

    // A clean directory passes fsck with exit 0.
    let (ok, out) = mube(&["fsck", &dir.display().to_string()]);
    assert!(ok, "clean dir failed fsck: {out}");
    assert!(out.contains("status: clean"), "{out}");

    // Disk rot: flip one bit inside the snapshot's header record.
    let snap_path = dir.join("snapshot.wal");
    let mut snap = std::fs::read(&snap_path).expect("read snapshot");
    snap[20] ^= 0x10;
    std::fs::write(&snap_path, &snap).expect("write corrupted snapshot");

    // fsck pinpoints the damage and exits nonzero.
    let (ok, out) = mube(&["fsck", &dir.display().to_string(), "--json"]);
    assert!(!ok, "fsck must fail on a corrupt snapshot: {out}");
    assert!(out.contains("\"clean\":false"), "{out}");
    assert!(out.contains("snapshot.wal"), "{out}");
    assert!(out.contains("CRC mismatch"), "{out}");

    // --repair rebuilds the snapshot (quarantining the evidence) and the
    // re-check comes back clean.
    let (ok, out) = mube(&["fsck", &dir.display().to_string(), "--repair", "--json"]);
    assert!(ok, "fsck --repair did not restore a clean dir: {out}");
    assert!(out.contains("\"clean\":true"), "{out}");
    assert!(out.contains("rebuilt snapshot.wal"), "{out}");

    // The restarted server replays to the exact pre-corruption state: the
    // flipped byte sat in the reconstructible snapshot header, so repair
    // loses nothing.
    let server = ServerProc::spawn(&dir, &[]);
    assert_eq!(json_field(&healthz(server.addr), "digest"), digest);
    assert_eq!(json_field(&healthz(server.addr), "lsn"), lsn);
    server.kill();
}

//! Chaos failover smoke against real `mube` binaries: a leader with a
//! replication port, a follower tailing it, live traffic, SIGKILL of the
//! leader, `mube promote` on the follower — and the promoted follower must
//! behave *byte-identically* to a crash-replayed twin booted from the dead
//! leader's own journal. Replication is exactly as trustworthy as crash
//! recovery, or it is wrong.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mube_core::catalog;
use mube_synth::{generate, SynthConfig};

/// A `mube serve` child bound to an ephemeral HTTP port, optionally with a
/// replication port.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
    repl: Option<SocketAddr>,
}

impl ServerProc {
    /// Spawns `mube serve --addr 127.0.0.1:0 --data-dir <dir> --fsync
    /// always <extra...>` and parses the bound addresses from the startup
    /// banner (line 1: HTTP, line 2 when replicating: replication port).
    fn spawn(data_dir: &Path, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mube"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--data-dir",
            ])
            .arg(data_dir)
            .args(["--fsync", "always"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mube serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a startup line")
            .expect("readable stdout");
        // "mube-serve listening on http://127.0.0.1:PORT (N worker threads)"
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable startup line: {banner:?}"));
        // "mube-serve replication on 127.0.0.1:PORT"
        let repl = if extra.contains(&"--repl-addr") {
            let line = lines
                .next()
                .expect("replication banner line")
                .expect("readable stdout");
            Some(
                line.rsplit(' ')
                    .next()
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| panic!("unparseable replication line: {line:?}")),
            )
        } else {
            None
        };
        ServerProc { child, addr, repl }
    }

    /// SIGKILL: no drain, no farewell frames — the follower sees a dead
    /// peer, exactly like a machine loss.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One HTTP request over a fresh connection; returns `(status, raw body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mube-failover-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test data dir");
    dir
}

/// Extracts `"key":value` (unquoted) or `"key":"value"` from a flat JSON
/// body without a parser dependency.
fn json_field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let rest = &body[body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + pat.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().unwrap_or_default().to_string()
    } else {
        rest.split([',', '}'])
            .next()
            .unwrap_or_default()
            .trim()
            .to_string()
    }
}

fn healthz(addr: SocketAddr) -> String {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    body
}

fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn killed_leader_fails_over_to_a_byte_identical_follower() {
    let leader_dir = fresh_dir("leader");
    let follower_dir = fresh_dir("follower");

    let leader = ServerProc::spawn(&leader_dir, &["--repl-addr", "127.0.0.1:0"]);
    let repl = leader.repl.expect("leader replication port");
    let follow = repl.to_string();
    let follower = ServerProc::spawn(&follower_dir, &["--follow", &follow]);

    // Live traffic on the leader: catalog, session, two solve+feedback
    // rounds. Every acknowledged write is fsynced and shipped.
    let text = catalog::to_text(&generate(&SynthConfig::small(10), 2007).universe);
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&text);
    j.end_obj();
    let (status, body) = request(leader.addr, "POST", "/catalogs", &j.finish());
    assert_eq!(status, 201, "{body}");
    let (status, body) = request(
        leader.addr,
        "POST",
        "/sessions",
        "{\"catalog\":1,\"seed\":7,\"max_sources\":4,\"beta\":1,\"theta\":0.75}",
    );
    assert_eq!(status, 201, "{body}");
    for i in 0..2 {
        let (status, body) = request(leader.addr, "POST", "/sessions/1/solve", "");
        assert_eq!(status, 200, "round {i}: {body}");
        let feedback = format!("{{\"actions\":[{{\"op\":\"pin\",\"source\":\"site000{i}\"}}]}}");
        let (status, body) = request(leader.addr, "POST", "/sessions/1/feedback", &feedback);
        assert_eq!(status, 200, "round {i}: {body}");
    }

    // Let the follower reach the leader's LSN, then SIGKILL the leader.
    let leader_lsn = json_field(&healthz(leader.addr), "lsn");
    let leader_digest = json_field(&healthz(leader.addr), "digest");
    let follower_addr = follower.addr;
    wait_for("follower catch-up", || {
        json_field(&healthz(follower_addr), "lsn") == leader_lsn
    });
    leader.kill();

    // Promote through the CLI.
    let output = Command::new(env!("CARGO_BIN_EXE_mube"))
        .args(["promote", &follower.addr.to_string()])
        .output()
        .expect("run mube promote");
    assert!(
        output.status.success(),
        "promote failed: {}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("promoted"), "{stdout}");
    wait_for("promoted role", || {
        json_field(&healthz(follower_addr), "role") == "leader"
    });

    // The promoted follower carries the dead leader's exact state.
    assert_eq!(json_field(&healthz(follower_addr), "lsn"), leader_lsn);
    assert_eq!(json_field(&healthz(follower_addr), "digest"), leader_digest);

    // A crash-replayed twin booted from the dead leader's own journal is
    // the ground truth; the promoted follower must match it byte for byte.
    let twin = ServerProc::spawn(&leader_dir, &[]);
    assert_eq!(json_field(&healthz(twin.addr), "digest"), leader_digest);
    let (status, twin_solve) = request(twin.addr, "POST", "/sessions/1/solve", "");
    assert_eq!(status, 200, "{twin_solve}");
    let (status, promoted_solve) = request(follower_addr, "POST", "/sessions/1/solve", "");
    assert_eq!(status, 200, "{promoted_solve}");
    assert_eq!(
        promoted_solve, twin_solve,
        "promoted follower diverged from the crash-replayed leader journal"
    );

    twin.kill();
    follower.kill();
}

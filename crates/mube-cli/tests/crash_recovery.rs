//! Crash-safety of the durable session journal, tested against the real
//! `mube` binary: a server killed with SIGKILL mid-session and restarted on the same
//! `--data-dir` must replay to *byte-identical* behaviour, and a corrupted
//! journal tail must be quarantined — never a boot failure.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mube_core::catalog;
use mube_synth::{generate, SynthConfig};

/// A `mube serve` child process bound to an ephemeral port.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawns `mube serve --addr 127.0.0.1:0 --data-dir <dir> --fsync always`
    /// and parses the bound address from its startup line. `--fsync always`
    /// makes every acknowledged request durable, so a SIGKILL at any point
    /// after a response loses nothing.
    fn spawn(data_dir: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mube"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--data-dir",
            ])
            .arg(data_dir)
            .args(["--fsync", "always"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mube serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a startup line")
            .expect("readable stdout");
        // "mube-serve listening on http://127.0.0.1:PORT (N worker threads)"
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable startup line: {banner:?}"));
        ServerProc { child, addr }
    }

    /// SIGKILL: no drain, no flush beyond what fsync already guaranteed.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One HTTP request over a fresh connection; returns `(status, raw body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A fresh per-test data directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mube-crash-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test data dir");
    dir
}

/// Uploads the deterministic test catalog; ids are assigned from 1, so the
/// same call sequence yields the same ids on every server.
fn upload_catalog(addr: SocketAddr) -> u64 {
    let synth = generate(&SynthConfig::small(10), 2007);
    let text = catalog::to_text(&synth.universe);
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&text);
    j.end_obj();
    let (status, body) = request(addr, "POST", "/catalogs", &j.finish());
    assert_eq!(status, 201, "{body}");
    1
}

fn create_session(addr: SocketAddr) -> u64 {
    let (status, body) = request(
        addr,
        "POST",
        "/sessions",
        "{\"catalog\":1,\"seed\":7,\"max_sources\":4,\"beta\":1,\"theta\":0.75}",
    );
    assert_eq!(status, 201, "{body}");
    1
}

/// Runs `rounds` solve+feedback iterations against session 1. The feedback
/// mutates real state (a pin and a re-weight) so replay has to restore more
/// than just solution history.
fn run_rounds(addr: SocketAddr, rounds: usize) {
    for i in 0..rounds {
        let (status, body) = request(addr, "POST", "/sessions/1/solve", "");
        assert_eq!(status, 200, "round {i}: {body}");
        let feedback = format!(
            "{{\"actions\":[{{\"op\":\"pin\",\"source\":\"site000{i}\"}},\
             {{\"op\":\"weight\",\"qef\":\"coverage\",\"value\":0.{}}}]}}",
            i + 3
        );
        let (status, body) = request(addr, "POST", "/sessions/1/feedback", &feedback);
        assert_eq!(status, 200, "round {i}: {body}");
    }
}

#[test]
fn sigkill_and_replay_is_byte_identical_to_an_uninterrupted_run() {
    const ROUNDS: usize = 2;

    // Reference: one server lives through the whole flow.
    let witness_dir = fresh_dir("witness");
    let witness = ServerProc::spawn(&witness_dir);
    upload_catalog(witness.addr);
    create_session(witness.addr);
    run_rounds(witness.addr, ROUNDS);
    let (status, expected) = request(witness.addr, "POST", "/sessions/1/solve", "");
    assert_eq!(status, 200, "{expected}");
    witness.kill();

    // Crash flow: same prefix, then SIGKILL with no warning — the next
    // solve was never issued, so the journal ends mid-session.
    let crash_dir = fresh_dir("crash");
    let doomed = ServerProc::spawn(&crash_dir);
    upload_catalog(doomed.addr);
    create_session(doomed.addr);
    run_rounds(doomed.addr, ROUNDS);
    doomed.kill();

    // Restart on the same data dir: replay must rebuild the session so
    // exactly that the next solve is byte-for-byte the witness's.
    let revived = ServerProc::spawn(&crash_dir);
    let (status, replayed) = request(revived.addr, "POST", "/sessions/1/solve", "");
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(
        replayed, expected,
        "post-crash solve diverged from the uninterrupted run"
    );
    revived.kill();
}

#[test]
fn corrupt_journal_tail_is_quarantined_and_the_server_still_boots() {
    let dir = fresh_dir("corrupt");
    let server = ServerProc::spawn(&dir);
    upload_catalog(server.addr);
    create_session(server.addr);
    let (status, body) = request(server.addr, "POST", "/sessions/1/solve", "");
    assert_eq!(status, 200, "{body}");
    server.kill();

    // Torn write, simulated: flip a byte inside the last record's payload
    // and tear off the final few bytes. Both the CRC mismatch and the
    // truncated frame fall in the corrupt suffix.
    let tail = dir.join("journal.wal");
    let mut bytes = std::fs::read(&tail).expect("read journal tail");
    assert!(
        bytes.len() > 40,
        "journal unexpectedly small: {}",
        bytes.len()
    );
    let mid = bytes.len() - 20;
    bytes[mid] ^= 0xFF;
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&tail, &bytes).expect("rewrite corrupted tail");

    // Boot must survive: the corrupt suffix is quarantined aside, the good
    // prefix replays, and the server serves.
    let revived = ServerProc::spawn(&dir);
    let (status, body) = request(revived.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(
        dir.join("quarantine-0.wal").exists(),
        "corrupt bytes must be preserved for forensics, not dropped"
    );
    // The replayed catalog is intact: a new session against it succeeds.
    let (status, body) = request(
        revived.addr,
        "POST",
        "/sessions",
        "{\"catalog\":1,\"seed\":9}",
    );
    assert_eq!(status, 201, "{body}");
    revived.kill();
}

//! A bounded worker thread pool over a shared job queue.
//!
//! `N` threads drain a `Mutex<VecDeque>` + `Condvar` queue — the classic
//! std-only construction. Shutdown is *draining*: workers finish every job
//! already queued (in-flight solves included) before exiting, which is what
//! gives the server its graceful-shutdown guarantee.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// A fixed-size worker pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mube-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) if the pool is
    /// already shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.shutdown {
            return false;
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.cv.notify_one();
        true
    }

    /// Jobs currently waiting (in-flight jobs not included).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Drains the queue and joins every worker. Jobs already enqueued run
    /// to completion; [`WorkerPool::execute`] refuses new ones.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Mirror shutdown() for pools dropped without an explicit call
        // (e.g. on a panic path), so worker threads never leak.
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.cv.wait(state).expect("pool lock poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_jobs_on_many_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        // One slow worker, many queued jobs: shutdown must wait for all.
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn execute_after_shutdown_is_refused() {
        let pool = WorkerPool::new(2);
        // Capture the shared handle the way the server does: a second pool
        // reference does not exist, so emulate by shutting down first.
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        let mut state = shared.state.lock().unwrap();
        assert!(state.shutdown);
        assert!(state.jobs.pop_front().is_none());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        pool.shutdown();
    }
}

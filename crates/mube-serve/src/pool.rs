//! A bounded worker thread pool over a shared job queue.
//!
//! `N` threads drain a `Mutex<VecDeque>` + `Condvar` queue — the classic
//! std-only construction. Shutdown is *draining*: workers finish every job
//! already queued (in-flight solves included) before exiting, which is what
//! gives the server its graceful-shutdown guarantee.
//!
//! Workers are *self-healing*: a job that panics kills its worker thread,
//! but a drop guard running during the unwind spawns a replacement (unless
//! the pool is already shutting down), so a single bad request can never
//! permanently sink pool capacity. Panics are counted and surfaced through
//! [`WorkerPool::panics`] so `/metrics` can report them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Jobs that panicked (each one cost a worker thread, since replaced).
    /// Behind its own `Arc` so observers (the server's `/metrics`) can
    /// keep reading it after the pool is consumed by shutdown.
    panics: Arc<AtomicU64>,
    /// High-water mark of the queue depth (how close the server came to
    /// shedding; admission control compares `queued()` to its threshold).
    peak_queued: AtomicU64,
    /// Handles of respawned workers, joined at shutdown after the originals.
    replacements: Mutex<Vec<JoinHandle<()>>>,
}

/// A fixed-size worker pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            panics: Arc::new(AtomicU64::new(0)),
            peak_queued: AtomicU64::new(0),
            replacements: Mutex::new(Vec::new()),
        });
        let workers = (0..threads.max(1))
            .map(|i| spawn_worker(Arc::clone(&shared), format!("mube-serve-worker-{i}")))
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads the pool was created with.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that have panicked over the pool's lifetime. Each panic killed
    /// a worker, which was immediately respawned.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::SeqCst)
    }

    /// A handle on the panic counter that outlives the pool (for metrics).
    pub fn panic_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.shared.panics)
    }

    /// Enqueues a job. Returns `false` (dropping the job) if the pool is
    /// already shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.shutdown {
            return false;
        }
        state.jobs.push_back(Box::new(job));
        let depth = state.jobs.len() as u64;
        drop(state);
        self.shared.peak_queued.fetch_max(depth, Ordering::SeqCst);
        self.shared.cv.notify_one();
        true
    }

    /// Jobs currently waiting (in-flight jobs not included).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Deepest the queue has ever been (jobs waiting at once).
    pub fn peak_queued(&self) -> u64 {
        self.shared.peak_queued.load(Ordering::SeqCst)
    }

    /// Drains the queue and joins every worker. Jobs already enqueued run
    /// to completion; [`WorkerPool::execute`] refuses new ones.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Replacements may themselves panic and respawn while draining, so
        // keep joining until the list stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut replacements = self
                    .shared
                    .replacements
                    .lock()
                    .expect("replacements lock poisoned");
                std::mem::take(&mut *replacements)
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Mirror shutdown() for pools dropped without an explicit call
        // (e.g. on a panic path), so worker threads never leak.
        self.shutdown_in_place();
    }
}

fn spawn_worker(shared: Arc<Shared>, name: String) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || worker_loop(shared, name))
        .expect("spawn worker thread")
}

/// Respawns the worker if its thread is unwinding from a job panic.
///
/// Dropped on every exit path of [`worker_loop`]; `std::thread::panicking`
/// distinguishes the clean shutdown return from a panicking job.
struct RespawnGuard {
    shared: Arc<Shared>,
    name: String,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        self.shared.panics.fetch_add(1, Ordering::SeqCst);
        let shutting_down = self
            .shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .shutdown;
        if shutting_down {
            return;
        }
        let handle = spawn_worker(Arc::clone(&self.shared), self.name.clone());
        self.shared
            .replacements
            .lock()
            .expect("replacements lock poisoned")
            .push(handle);
    }
}

fn worker_loop(shared: Arc<Shared>, name: String) {
    let _guard = RespawnGuard {
        shared: Arc::clone(&shared),
        name,
    };
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.cv.wait(state).expect("pool lock poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_jobs_on_many_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        // One slow worker, many queued jobs: shutdown must wait for all.
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The single worker can't keep up with a burst of 16, so the
        // high-water mark must have registered a real backlog.
        assert!(pool.peak_queued() >= 1, "peak {}", pool.peak_queued());
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn execute_after_shutdown_is_refused() {
        let pool = WorkerPool::new(2);
        // Capture the shared handle the way the server does: a second pool
        // reference does not exist, so emulate by shutting down first.
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        let mut state = shared.state.lock().unwrap();
        assert!(state.shutdown);
        assert!(state.jobs.pop_front().is_none());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        pool.shutdown();
    }

    #[test]
    fn panicking_job_respawns_worker_and_is_counted() {
        // A single-threaded pool: if the panicking job killed the only
        // worker for good, every later job would hang forever.
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("boom"));
        let (tx, rx) = mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            assert!(pool.execute(move || tx.send(i).unwrap()));
        }
        let mut got: Vec<u64> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.panics(), 1);
        pool.shutdown();
    }

    #[test]
    fn repeated_panics_never_sink_capacity() {
        let pool = WorkerPool::new(2);
        for _ in 0..5 {
            pool.execute(|| panic!("again"));
        }
        // Wait for all panics to land (each respawn is counted first).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.panics() < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.panics(), 5);
        let (tx, rx) = mpsc::channel();
        assert!(pool.execute(move || tx.send(42).unwrap()));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
        pool.shutdown();
    }
}

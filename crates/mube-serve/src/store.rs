//! Catalog and session storage shared by the worker threads.
//!
//! Two id-keyed maps behind `RwLock`s: uploaded catalogs (a universe plus
//! its *shared* name-interned similarity cache — built once per upload and
//! reused by every session and re-solve over that catalog) and live
//! sessions. Each session sits behind its own `Mutex`, which is the
//! per-session serialization guarantee: two solves on one session queue up,
//! solves on different sessions run in parallel.
//!
//! Capacity is bounded: at most `max_sessions` live sessions, with an
//! idle-eviction sweep (sessions untouched for `idle_ttl`) making room
//! before new creations are refused.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mube_core::session::Session;
use mube_core::source::Universe;
use mube_match::SimilarityCache;

/// An uploaded catalog: the universe and its shared similarity cache.
pub struct CatalogEntry {
    /// The parsed universe.
    pub universe: Arc<Universe>,
    /// Name-interned pairwise similarity cache, built once at upload time
    /// and shared (via [`mube_match::ClusterMatcher::with_cache`]) by every
    /// session over this catalog.
    pub cache: Arc<SimilarityCache>,
}

/// One live session.
pub struct SessionEntry {
    /// The session id.
    pub id: u64,
    /// The catalog the session runs over.
    pub catalog_id: u64,
    /// The session itself. Lock order: never hold two session locks at
    /// once (handlers only ever touch one session).
    pub session: Mutex<Session>,
    /// Last time a handler touched the session (for idle eviction).
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    /// Marks the session as just-used.
    pub fn touch(&self) {
        *self.last_used.lock().expect("last_used lock poisoned") = Instant::now();
    }

    /// Time since the session was last touched.
    pub fn idle_for(&self) -> Duration {
        self.last_used
            .lock()
            .expect("last_used lock poisoned")
            .elapsed()
    }
}

/// Why a session could not be created.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced catalog id does not exist.
    UnknownCatalog,
    /// The server is at `max_sessions` and nothing was idle enough to
    /// evict.
    TooManySessions {
        /// The configured cap.
        limit: usize,
    },
}

/// The shared store.
pub struct Store {
    catalogs: RwLock<HashMap<u64, Arc<CatalogEntry>>>,
    sessions: RwLock<HashMap<u64, Arc<SessionEntry>>>,
    next_catalog_id: AtomicU64,
    next_session_id: AtomicU64,
    max_sessions: usize,
    idle_ttl: Duration,
}

impl Store {
    /// An empty store with the given capacity policy.
    pub fn new(max_sessions: usize, idle_ttl: Duration) -> Self {
        Store {
            catalogs: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            next_catalog_id: AtomicU64::new(1),
            next_session_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
            idle_ttl,
        }
    }

    /// Registers an uploaded catalog, returning its id.
    pub fn insert_catalog(&self, universe: Arc<Universe>, cache: Arc<SimilarityCache>) -> u64 {
        // ordering: id allocator; fetch_add's atomicity guarantees
        // uniqueness, and the entry itself publishes via the RwLock.
        let id = self.next_catalog_id.fetch_add(1, Ordering::Relaxed);
        self.catalogs
            .write()
            .expect("catalogs lock poisoned")
            .insert(id, Arc::new(CatalogEntry { universe, cache }));
        id
    }

    /// Registers a catalog under a *specific* id — the journal-replay path,
    /// which must reproduce the ids the original run handed out. Bumps the
    /// id counter past `id` so post-replay uploads never collide.
    pub fn insert_catalog_with_id(
        &self,
        id: u64,
        universe: Arc<Universe>,
        cache: Arc<SimilarityCache>,
    ) {
        // ordering: raises the id floor during replay; only the atomic
        // max matters, not inter-thread ordering.
        self.next_catalog_id.fetch_max(id + 1, Ordering::Relaxed);
        self.catalogs
            .write()
            .expect("catalogs lock poisoned")
            .insert(id, Arc::new(CatalogEntry { universe, cache }));
    }

    /// Looks up a catalog.
    pub fn catalog(&self, id: u64) -> Option<Arc<CatalogEntry>> {
        self.catalogs
            .read()
            .expect("catalogs lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Number of registered catalogs.
    pub fn catalogs_len(&self) -> usize {
        self.catalogs.read().expect("catalogs lock poisoned").len()
    }

    /// Inserts a new session over `catalog_id`. At capacity, idle sessions
    /// are evicted first; if none qualify the creation is refused. Returns
    /// the new session id and the ids evicted to make room (so the caller
    /// can journal the deletions).
    pub fn insert_session(
        &self,
        catalog_id: u64,
        session: Session,
    ) -> Result<(u64, Vec<u64>), StoreError> {
        if self.catalog(catalog_id).is_none() {
            return Err(StoreError::UnknownCatalog);
        }
        let mut sessions = self.sessions.write().expect("sessions lock poisoned");
        let mut evicted = Vec::new();
        if sessions.len() >= self.max_sessions {
            let idle: Vec<u64> = sessions
                .iter()
                .filter(|(_, e)| Self::evictable(e, self.idle_ttl))
                .map(|(&id, _)| id)
                .collect();
            for id in idle {
                sessions.remove(&id);
                evicted.push(id);
                if sessions.len() < self.max_sessions {
                    break;
                }
            }
            if sessions.len() >= self.max_sessions {
                return Err(StoreError::TooManySessions {
                    limit: self.max_sessions,
                });
            }
        }
        // ordering: id allocator, same contract as `insert_catalog`.
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Arc::new(SessionEntry {
                id,
                catalog_id,
                session: Mutex::new(session),
                last_used: Mutex::new(Instant::now()),
            }),
        );
        Ok((id, evicted))
    }

    /// Inserts a session under a *specific* id — the journal-replay path.
    /// Skips capacity checks (replay precedes traffic and the journal never
    /// holds more live sessions than the cap allowed) and bumps the id
    /// counter past `id`.
    pub fn insert_session_with_id(
        &self,
        id: u64,
        catalog_id: u64,
        session: Session,
    ) -> Result<(), StoreError> {
        if self.catalog(catalog_id).is_none() {
            return Err(StoreError::UnknownCatalog);
        }
        // ordering: replay-time id floor, same contract as
        // `insert_catalog_with_id`.
        self.next_session_id.fetch_max(id + 1, Ordering::Relaxed);
        self.sessions
            .write()
            .expect("sessions lock poisoned")
            .insert(
                id,
                Arc::new(SessionEntry {
                    id,
                    catalog_id,
                    session: Mutex::new(session),
                    last_used: Mutex::new(Instant::now()),
                }),
            );
        Ok(())
    }

    /// Whether a session may be evicted: idle past the TTL *and* not
    /// currently locked by an in-flight handler. The contention probe
    /// closes a race where a long solve straddles the TTL — the session
    /// looked idle (handlers touch on lookup, before the solve), got
    /// evicted mid-solve, and the client's follow-up 404ed even though its
    /// request had succeeded. A held mutex means someone is working; skip.
    fn evictable(entry: &SessionEntry, ttl: Duration) -> bool {
        entry.idle_for() >= ttl && entry.session.try_lock().is_ok()
    }

    /// Looks up a session (does not touch it).
    pub fn session(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.sessions
            .read()
            .expect("sessions lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Removes a session, returning whether it existed.
    pub fn remove_session(&self, id: u64) -> bool {
        self.sessions
            .write()
            .expect("sessions lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// Number of live sessions.
    pub fn sessions_len(&self) -> usize {
        self.sessions.read().expect("sessions lock poisoned").len()
    }

    /// Drops every catalog and session. The replication follower calls
    /// this on a full-resync RESET before replaying the leader's complete
    /// frame set; id counters stay monotone so ids handed out after a
    /// resync never collide with journaled ones.
    pub fn clear(&self) {
        self.catalogs
            .write()
            .expect("catalogs lock poisoned")
            .clear();
        self.sessions
            .write()
            .expect("sessions lock poisoned")
            .clear();
    }

    /// Evicts every session idle for at least the TTL (and not held by an
    /// in-flight handler — see [`Store::evictable`]), returning the evicted
    /// ids. Called opportunistically by the server.
    pub fn sweep_idle(&self) -> Vec<u64> {
        let mut sessions = self.sessions.write().expect("sessions lock poisoned");
        let idle: Vec<u64> = sessions
            .iter()
            .filter(|(_, e)| Self::evictable(e, self.idle_ttl))
            .map(|(&id, _)| id)
            .collect();
        for &id in &idle {
            sessions.remove(&id);
        }
        idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_core::constraints::Constraints;
    use mube_core::matchop::IdentityMatcher;
    use mube_core::problem::Problem;
    use mube_core::qefs::data_only_qefs;
    use mube_core::schema::Schema;
    use mube_core::source::SourceSpec;
    use mube_match::JaccardNGram;
    use mube_opt::TabuSearch;

    fn universe() -> Arc<Universe> {
        let mut b = Universe::builder();
        for i in 0..4u32 {
            b.add_source(
                SourceSpec::new(format!("s{i}"), Schema::new(["x", "y"]))
                    .cardinality(100 + u64::from(i)),
            );
        }
        Arc::new(b.build().unwrap())
    }

    fn session(u: &Arc<Universe>) -> Session {
        let problem = Problem::new(
            Arc::clone(u),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(2).beta(1),
        )
        .unwrap();
        Session::new(problem, Box::new(TabuSearch::default()), 1)
    }

    fn store_with_catalog(max: usize, ttl: Duration) -> (Store, u64, Arc<Universe>) {
        let store = Store::new(max, ttl);
        let u = universe();
        let cache = Arc::new(SimilarityCache::build(&u, &JaccardNGram::trigram()));
        let id = store.insert_catalog(Arc::clone(&u), cache);
        (store, id, u)
    }

    #[test]
    fn catalog_roundtrip() {
        let (store, id, _u) = store_with_catalog(8, Duration::from_secs(60));
        assert_eq!(store.catalogs_len(), 1);
        let entry = store.catalog(id).unwrap();
        assert_eq!(entry.universe.len(), 4);
        assert!(store.catalog(id + 1).is_none());
    }

    #[test]
    fn session_lifecycle() {
        let (store, cid, u) = store_with_catalog(8, Duration::from_secs(60));
        let (sid, evicted) = store.insert_session(cid, session(&u)).unwrap();
        assert!(evicted.is_empty());
        assert_eq!(store.sessions_len(), 1);
        let entry = store.session(sid).unwrap();
        assert_eq!(entry.catalog_id, cid);
        entry.session.lock().unwrap().run().unwrap();
        assert!(store.remove_session(sid));
        assert!(!store.remove_session(sid));
        assert!(store.session(sid).is_none());
    }

    #[test]
    fn unknown_catalog_rejected() {
        let (store, cid, u) = store_with_catalog(8, Duration::from_secs(60));
        assert_eq!(
            store.insert_session(cid + 9, session(&u)),
            Err(StoreError::UnknownCatalog)
        );
    }

    #[test]
    fn cap_refuses_when_nothing_idle() {
        let (store, cid, u) = store_with_catalog(2, Duration::from_secs(3600));
        store.insert_session(cid, session(&u)).unwrap();
        store.insert_session(cid, session(&u)).unwrap();
        assert_eq!(
            store.insert_session(cid, session(&u)),
            Err(StoreError::TooManySessions { limit: 2 })
        );
        assert_eq!(store.sessions_len(), 2);
    }

    #[test]
    fn cap_evicts_idle_sessions() {
        let (store, cid, u) = store_with_catalog(2, Duration::from_millis(1));
        let (first, _) = store.insert_session(cid, session(&u)).unwrap();
        let (second, _) = store.insert_session(cid, session(&u)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let (third, evicted) = store.insert_session(cid, session(&u)).unwrap();
        assert!(!evicted.is_empty(), "evicted {evicted:?}");
        assert!(evicted.iter().all(|id| [first, second].contains(id)));
        assert!(store.session(third).is_some());
        // At least one of the old pair went.
        let survivors = [first, second]
            .iter()
            .filter(|&&id| store.session(id).is_some())
            .count();
        assert!(survivors < 2);
    }

    #[test]
    fn sweep_evicts_only_idle() {
        let (store, cid, u) = store_with_catalog(8, Duration::from_millis(20));
        let (old, _) = store.insert_session(cid, session(&u)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let (fresh, _) = store.insert_session(cid, session(&u)).unwrap();
        store.session(fresh).unwrap().touch();
        let evicted = store.sweep_idle();
        assert_eq!(evicted, vec![old]);
        assert!(store.session(old).is_none());
        assert!(store.session(fresh).is_some());
    }

    #[test]
    fn sweep_skips_sessions_with_in_flight_work() {
        // Regression: an idle-by-the-clock session whose mutex is held by a
        // long-running solve must NOT be evicted out from under the solve.
        let (store, cid, u) = store_with_catalog(8, Duration::from_millis(1));
        let (busy, _) = store.insert_session(cid, session(&u)).unwrap();
        let (idle, _) = store.insert_session(cid, session(&u)).unwrap();
        std::thread::sleep(Duration::from_millis(10));

        let busy_entry = store.session(busy).unwrap();
        let guard = busy_entry.session.lock().unwrap(); // simulated in-flight solve
        let evicted = store.sweep_idle();
        assert_eq!(evicted, vec![idle], "held session must survive the sweep");
        assert!(store.session(busy).is_some());
        drop(guard);

        // Once the handler releases the lock, the session is fair game.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(store.sweep_idle(), vec![busy]);
    }

    #[test]
    fn insert_at_cap_skips_locked_sessions() {
        let (store, cid, u) = store_with_catalog(1, Duration::from_millis(1));
        let (busy, _) = store.insert_session(cid, session(&u)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let busy_entry = store.session(busy).unwrap();
        let guard = busy_entry.session.lock().unwrap();
        // The only eviction candidate is locked → creation is refused
        // rather than yanking a session mid-solve.
        assert_eq!(
            store.insert_session(cid, session(&u)),
            Err(StoreError::TooManySessions { limit: 1 })
        );
        drop(guard);
        let (_, evicted) = store.insert_session(cid, session(&u)).unwrap();
        assert_eq!(evicted, vec![busy]);
    }

    #[test]
    fn clear_empties_both_maps_but_keeps_ids_monotone() {
        let (store, cid, u) = store_with_catalog(8, Duration::from_secs(60));
        let (sid, _) = store.insert_session(cid, session(&u)).unwrap();
        store.clear();
        assert_eq!(store.catalogs_len(), 0);
        assert_eq!(store.sessions_len(), 0);
        assert!(store.catalog(cid).is_none());
        assert!(store.session(sid).is_none());
        // Ids keep counting up — a post-clear upload never reuses cid.
        let cache = Arc::new(SimilarityCache::build(&u, &JaccardNGram::trigram()));
        let fresh = store.insert_catalog(Arc::clone(&u), cache);
        assert!(fresh > cid);
    }

    #[test]
    fn with_id_inserts_pin_ids_and_bump_counters() {
        let store = Store::new(8, Duration::from_secs(60));
        let u = universe();
        let cache = Arc::new(SimilarityCache::build(&u, &JaccardNGram::trigram()));
        store.insert_catalog_with_id(7, Arc::clone(&u), Arc::clone(&cache));
        assert!(store.catalog(7).is_some());
        // Fresh uploads continue past the replayed id.
        assert_eq!(store.insert_catalog(Arc::clone(&u), cache), 8);

        store.insert_session_with_id(42, 7, session(&u)).unwrap();
        assert_eq!(store.session(42).unwrap().catalog_id, 7);
        let (next, _) = store.insert_session(7, session(&u)).unwrap();
        assert_eq!(next, 43);
        assert_eq!(
            store.insert_session_with_id(1, 999, session(&u)),
            Err(StoreError::UnknownCatalog)
        );
    }
}

//! Leader/follower WAL replication with checked failover.
//!
//! The journal already gives one process crash safety; this module gives a
//! *pair* of processes availability. The leader ships every committed WAL
//! frame — the exact `[len][crc][lsn][tag][body]` bytes that hit its own
//! disk — over a TCP replication port. A follower (`mube serve --follow`)
//! applies each frame through the same replay handlers boot-time recovery
//! uses, persists it at the leader's LSN, and acks by LSN. Because replay
//! is byte-identical (PR 5), leader/follower state equality is *checkable*:
//! heartbeats carry a state digest (FNV-1a over the deleted-filtered live
//! event stream) and the follower verifies it whenever its applied LSN
//! matches the heartbeat's — a mismatch marks the follower **diverged**,
//! writes a quarantine marker, and permanently refuses promotion rather
//! than ever silently serving wrong state.
//!
//! ## Wire protocol
//!
//! The follower connects and sends a 16-byte hello: the magic
//! `b"MUBEREP1"` followed by its last applied LSN (u64 LE). The leader
//! responds with a stream of standard WAL frames:
//!
//! * event frames (tags 1–5) — verbatim journal bytes, in LSN order;
//! * heartbeat frames (tag 250, `lsn` = leader's last LSN, body = state
//!   digest as u64 LE) — sent every heartbeat interval and used for both
//!   liveness and the divergence check;
//! * a reset frame (tag 251, `lsn` 0, empty body) — sent when the
//!   follower's ack is behind the leader's compaction drop horizon, telling
//!   it to discard everything and take the full live set that follows.
//!
//! The follower writes 8-byte LE acked-LSN values back on the same socket.
//! An ack means the frame is durable (journaled **and** fsynced) on the
//! follower — that is the invariant `--repl-sync` builds on. A torn or
//! corrupt frame on the stream makes the follower drop the connection and
//! reconnect with its last good LSN, so corruption re-requests instead of
//! quarantining good state.
//!
//! Every blocking socket operation in this module carries an explicit
//! timeout (the `mube lint-src` MUBE107 invariant): a wedged peer can
//! stall a replication thread for at most one timeout, never forever.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::persist::{crc32, encode_frame, Event, Journal, MAX_RECORD_BYTES};
use crate::server::ServerState;

/// Replication hello magic (8 bytes, versioned).
pub(crate) const MAGIC: [u8; 8] = *b"MUBEREP1";

/// Heartbeat frame tag: `lsn` = leader's last LSN, body = state digest.
pub const TAG_HEARTBEAT: u8 = 250;

/// Reset frame tag: discard local state, a full resync follows.
pub const TAG_RESET: u8 = 251;

/// Roles a replicated server moves through. Stored in an `AtomicU8` on the
/// server state; transitions are FOLLOWER → CANDIDATE → LEADER only.
pub(crate) const ROLE_LEADER: u8 = 0;
/// See [`ROLE_LEADER`].
pub(crate) const ROLE_FOLLOWER: u8 = 1;
/// See [`ROLE_LEADER`].
pub(crate) const ROLE_CANDIDATE: u8 = 2;

/// The `/healthz` string for a role byte.
pub(crate) fn role_str(role: u8) -> &'static str {
    match role {
        ROLE_FOLLOWER => "follower",
        ROLE_CANDIDATE => "candidate",
        _ => "leader",
    }
}

/// Filename of the divergence quarantine marker in the data dir. Its
/// presence means this data dir failed a digest check against its leader
/// and must never be promoted without operator intervention.
pub(crate) const DIVERGED_MARKER: &str = "diverged.marker";

/// Delay between follower reconnect attempts.
const RECONNECT_DELAY: Duration = Duration::from_millis(200);

/// Connect timeout for the follower's dial to the leader.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a draining leader holds a follower socket open waiting for the
/// journal tip to be acked before closing it anyway.
const DRAIN_ACK_TIMEOUT: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// Incremental frame reader
// ---------------------------------------------------------------------------

/// One decoded replication frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's LSN (leader's last LSN for heartbeats, 0 for resets).
    pub lsn: u64,
    /// Record tag: 1–5 events, 250 heartbeat, 251 reset.
    pub tag: u8,
    /// The full payload (`[lsn][tag][body]`), for event decoding.
    pub payload: Vec<u8>,
}

impl Frame {
    /// The body after the 9-byte `[lsn][tag]` prefix.
    pub fn body(&self) -> &[u8] {
        &self.payload[9..]
    }
}

/// An incremental WAL-frame decoder over a byte stream. Feed it whatever
/// the socket yields; it emits complete frames and reports torn/corrupt
/// input as an error (the caller drops the connection and re-requests).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends bytes read from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived stream doesn't grow the buffer.
        if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Next complete frame: `Ok(None)` means more bytes are needed;
    /// `Err` means the stream is corrupt from here on.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, String> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if !(9..=MAX_RECORD_BYTES).contains(&len) {
            return Err(format!("implausible frame length {len}"));
        }
        let total = 8 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[8..total];
        if crc32(payload) != crc {
            return Err("frame CRC mismatch".to_string());
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let tag = payload[8];
        let frame = Frame {
            lsn,
            tag,
            payload: payload.to_vec(),
        };
        self.pos += total;
        Ok(Some(frame))
    }
}

/// Encodes a heartbeat frame for `(last_lsn, digest)`.
pub fn encode_heartbeat(lsn: u64, digest: u64) -> Vec<u8> {
    encode_frame(lsn, TAG_HEARTBEAT, &digest.to_le_bytes())
}

/// Encodes the reset frame that precedes a full resync.
pub fn encode_reset() -> Vec<u8> {
    encode_frame(0, TAG_RESET, &[])
}

// ---------------------------------------------------------------------------
// Leader side: the replication hub
// ---------------------------------------------------------------------------

/// One connected follower, as the leader sees it: an outbound frame queue
/// drained by a writer thread, and the ack state fed by a reader thread.
pub(crate) struct FollowerConn {
    queue: Mutex<VecDeque<Vec<u8>>>,
    cv: Condvar,
    acked: AtomicU64,
    last_ack: Mutex<Instant>,
    dead: AtomicBool,
}

impl FollowerConn {
    fn new() -> Self {
        FollowerConn {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            acked: AtomicU64::new(0),
            last_ack: Mutex::new(Instant::now()),
            dead: AtomicBool::new(false),
        }
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// The leader's fan-out point: every journal append publishes its frame
/// here; per-follower writer threads drain their queues; acks funnel back
/// for `--repl-sync` waits and `/metrics` lag reporting.
pub(crate) struct ReplHub {
    conns: Mutex<Vec<Arc<FollowerConn>>>,
    /// Highest LSN acked by *any* live follower (semi-sync needs one
    /// durable copy besides the leader's, not a quorum).
    ack: Mutex<u64>,
    ack_cv: Condvar,
    frames_shipped: AtomicU64,
    heartbeats_sent: AtomicU64,
    resets_sent: AtomicU64,
}

impl ReplHub {
    pub(crate) fn new() -> Self {
        ReplHub {
            conns: Mutex::new(Vec::new()),
            ack: Mutex::new(0),
            ack_cv: Condvar::new(),
            frames_shipped: AtomicU64::new(0),
            heartbeats_sent: AtomicU64::new(0),
            resets_sent: AtomicU64::new(0),
        }
    }

    /// Enqueues one committed frame for every live follower.
    pub(crate) fn publish(&self, frame: &[u8]) {
        let conns = self.conns.lock().expect("repl conns lock poisoned");
        for conn in conns.iter() {
            if conn.dead.load(Ordering::SeqCst) {
                continue;
            }
            conn.queue
                .lock()
                .expect("repl queue lock poisoned")
                .push_back(frame.to_vec());
            conn.cv.notify_one();
        }
    }

    /// Records a follower's ack and wakes semi-sync waiters.
    fn note_ack(&self, lsn: u64) {
        let mut acked = self.ack.lock().expect("repl ack lock poisoned");
        if lsn > *acked {
            *acked = lsn;
            self.ack_cv.notify_all();
        }
    }

    /// Blocks until some follower has durably acked `lsn`, or the timeout
    /// elapses. This is the `--repl-sync` gate: a mutating response is not
    /// sent until this returns `true`.
    pub(crate) fn wait_acked(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut acked = self.ack.lock().expect("repl ack lock poisoned");
        while *acked < lsn {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .ack_cv
                .wait_timeout(acked, deadline - now)
                .expect("repl ack lock poisoned");
            acked = guard;
        }
        true
    }

    /// `(live followers, max acked LSN, freshest ack age)`.
    fn ack_view(&self) -> (u64, u64, Option<Duration>) {
        let conns = self.conns.lock().expect("repl conns lock poisoned");
        let mut live = 0u64;
        let mut acked = 0u64;
        let mut age: Option<Duration> = None;
        for conn in conns.iter() {
            if conn.dead.load(Ordering::SeqCst) {
                continue;
            }
            live += 1;
            acked = acked.max(conn.acked.load(Ordering::SeqCst));
            let last = *conn.last_ack.lock().expect("repl ack-time lock poisoned");
            let a = last.elapsed();
            age = Some(age.map_or(a, |cur| cur.min(a)));
        }
        (live, acked, age)
    }

    fn register(&self, conn: Arc<FollowerConn>) {
        self.conns
            .lock()
            .expect("repl conns lock poisoned")
            .push(conn);
    }

    fn unregister(&self, conn: &Arc<FollowerConn>) {
        conn.mark_dead();
        self.conns
            .lock()
            .expect("repl conns lock poisoned")
            .retain(|c| !Arc::ptr_eq(c, conn));
    }

    /// Live follower connections (the drain path skips its final
    /// ship-and-wait when nobody is listening).
    pub(crate) fn live_followers(&self) -> u64 {
        self.ack_view().0
    }

    /// Wakes every writer thread (used at drain so they flush and exit).
    pub(crate) fn wake_all(&self) {
        let conns = self.conns.lock().expect("repl conns lock poisoned");
        for conn in conns.iter() {
            conn.cv.notify_all();
        }
    }
}

/// Accepts follower connections on the replication listener until the
/// server drains. One thread per follower pair (writer + ack reader).
pub(crate) fn run_leader_acceptor(listener: TcpListener, state: Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("mube-repl-conn".to_string())
            .spawn(move || serve_follower(stream, &state));
    }
}

/// Handles one follower connection on the leader: hello, backlog, then
/// stream frames + heartbeats while reading acks.
fn serve_follower(stream: TcpStream, state: &ServerState) {
    let Some(journal) = &state.journal else {
        return;
    };
    let Some(hub) = &state.repl_hub else { return };
    let config = &state.config;
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    // Hello: magic + the follower's last applied LSN.
    let mut hello = [0u8; 16];
    let mut rd = &stream;
    // deadline: read_timeout is set above, so a silent dialer can hold
    // this thread for at most one timeout.
    if rd.read_exact(&mut hello).is_err() || hello[..8] != MAGIC {
        return;
    }
    let follower_lsn = u64::from_le_bytes(hello[8..16].try_into().expect("8 bytes"));

    let conn = Arc::new(FollowerConn::new());
    hub.register(Arc::clone(&conn));
    // Registration happens *before* the backlog snapshot, so a frame
    // published in between appears both in the backlog and the queue; the
    // follower's `lsn <= applied` skip de-duplicates. Backlog goes to the
    // queue front to preserve LSN order past that race.
    {
        let mut q = conn.queue.lock().expect("repl queue lock poisoned");
        match journal.frames_after(follower_lsn) {
            Some(frames) => {
                for frame in frames.into_iter().rev() {
                    q.push_front(frame);
                }
            }
            None => {
                // The follower's ack horizon predates a dropping
                // compaction: catch-up frames are gone, full resync.
                for frame in journal.all_frames().into_iter().rev() {
                    q.push_front(frame);
                }
                q.push_front(encode_reset());
                hub.resets_sent.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    conn.cv.notify_one();

    // Ack reader: 8-byte LE LSNs, one per durable follower apply.
    let ack_conn = Arc::clone(&conn);
    let ack_hub = Arc::clone(hub);
    let ack_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            hub.unregister(&conn);
            return;
        }
    };
    let ack_reader = std::thread::Builder::new()
        .name("mube-repl-ack".to_string())
        .spawn(move || {
            let mut buf = [0u8; 8];
            let mut rd = &ack_stream;
            loop {
                // deadline: the socket read timeout (set at accept)
                // bounds each wait; timeouts mean "no acks right now",
                // which is fine between heartbeats.
                match rd.read_exact(&mut buf) {
                    Ok(()) => {
                        let lsn = u64::from_le_bytes(buf);
                        ack_conn.acked.store(lsn, Ordering::SeqCst);
                        *ack_conn
                            .last_ack
                            .lock()
                            .expect("repl ack-time lock poisoned") = Instant::now();
                        ack_hub.note_ack(lsn);
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if ack_conn.dead.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    Err(_) => {
                        ack_conn.mark_dead();
                        return;
                    }
                }
            }
        });

    // Writer loop: drain the queue; on idle ticks send a heartbeat with
    // the current (last_lsn, digest) pair for liveness + divergence checks.
    let mut wr = &stream;
    'writer: loop {
        let draining = state.draining.load(Ordering::SeqCst);
        let next = {
            let mut q = conn.queue.lock().expect("repl queue lock poisoned");
            if q.is_empty() && !draining && !conn.dead.load(Ordering::SeqCst) {
                let (guard, _) = conn
                    .cv
                    .wait_timeout(q, config.heartbeat_interval)
                    .expect("repl queue lock poisoned");
                q = guard;
            }
            q.pop_front()
        };
        if conn.dead.load(Ordering::SeqCst) {
            break;
        }
        match next {
            Some(frame) => {
                // deadline: write_timeout is set at accept; a stalled
                // follower fails the write instead of wedging the leader.
                if wr.write_all(&frame).is_err() {
                    break 'writer;
                }
                hub.frames_shipped.fetch_add(1, Ordering::SeqCst);
            }
            None => {
                let (lsn, digest) = journal.state_digest();
                if wr.write_all(&encode_heartbeat(lsn, digest)).is_err() {
                    break 'writer;
                }
                hub.heartbeats_sent.fetch_add(1, Ordering::SeqCst);
                if draining {
                    // Final frame batch + heartbeat are out. Hold the
                    // socket open — bounded — until the follower acks the
                    // tip: closing immediately would kill the ack channel
                    // the drain path's wait_acked depends on, and could cut
                    // off a follower still reading the shipped tail.
                    let tip = journal.last_lsn();
                    let deadline = Instant::now() + DRAIN_ACK_TIMEOUT;
                    while conn.acked.load(Ordering::SeqCst) < tip
                        && !conn.dead.load(Ordering::SeqCst)
                        && Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    break 'writer;
                }
            }
        }
    }
    hub.unregister(&conn);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    if let Ok(h) = ack_reader {
        let _ = h.join();
    }
}

// ---------------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------------

/// The follower's replication state, shared between the client thread,
/// the HTTP handlers (role gate, promote, healthz), and `/metrics`.
pub(crate) struct FollowerState {
    /// The leader's address (`--follow`), echoed as the 409 leader hint.
    pub(crate) leader: String,
    /// Last LSN durably applied locally.
    pub(crate) applied: AtomicU64,
    /// Last LSN at which a heartbeat digest check passed.
    pub(crate) verified: AtomicU64,
    /// Set when a digest check failed; never cleared at runtime.
    pub(crate) diverged: AtomicBool,
    /// Tells the client thread to stop (promotion or shutdown).
    pub(crate) stop: AtomicBool,
    /// Last successful contact with the leader (connect or frame).
    pub(crate) last_contact: Mutex<Option<Instant>>,
    pub(crate) frames_applied: AtomicU64,
    pub(crate) resyncs: AtomicU64,
    pub(crate) digest_checks: AtomicU64,
    pub(crate) digest_failures: AtomicU64,
}

impl FollowerState {
    pub(crate) fn new(leader: String, diverged: bool) -> Self {
        FollowerState {
            leader,
            applied: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            diverged: AtomicBool::new(diverged),
            stop: AtomicBool::new(false),
            last_contact: Mutex::new(None),
            frames_applied: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            digest_checks: AtomicU64::new(0),
            digest_failures: AtomicU64::new(0),
        }
    }

    fn touch_contact(&self) {
        *self
            .last_contact
            .lock()
            .expect("follower contact lock poisoned") = Some(Instant::now());
    }

    fn contact_age(&self) -> Option<Duration> {
        self.last_contact
            .lock()
            .expect("follower contact lock poisoned")
            .map(|t| t.elapsed())
    }
}

/// The follower client loop: connect to the leader, apply the frame
/// stream, ack durably applied LSNs, and — when the leader goes silent
/// past `--promote-timeout` — self-promote (digest-gated).
pub(crate) fn run_follower(state: Arc<ServerState>) {
    let Some(follower) = state.follower.clone() else {
        return;
    };
    follower.touch_contact(); // grace period starts at boot, not at epoch
    while !should_stop(&state, &follower) {
        match connect_leader(&follower.leader, &state) {
            Ok(stream) => {
                follower.touch_contact();
                if let Err(why) = serve_follow_stream(&stream, &state, &follower) {
                    if !why.is_empty() {
                        eprintln!("mube-serve: replication stream error: {why}");
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Err(_) => {
                // Leader unreachable; fall through to the promote check.
            }
        }
        if should_stop(&state, &follower) {
            break;
        }
        if maybe_auto_promote(&state, &follower) {
            return;
        }
        std::thread::sleep(RECONNECT_DELAY);
    }
}

fn should_stop(state: &ServerState, follower: &FollowerState) -> bool {
    follower.stop.load(Ordering::SeqCst)
        || follower.diverged.load(Ordering::SeqCst)
        || state.draining.load(Ordering::SeqCst)
}

/// Dials the leader with bounded connect + socket timeouts.
fn connect_leader(addr: &str, state: &ServerState) -> std::io::Result<TcpStream> {
    let sockaddr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
    // deadline: connect, reads, and writes are all individually bounded.
    let stream = TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(state.config.read_timeout))?;
    stream.set_write_timeout(Some(state.config.write_timeout))?;
    Ok(stream)
}

/// Applies one connection's worth of the leader's frame stream. Returns
/// `Err` with a reason on a corrupt stream (caller reconnects and the
/// hello's LSN re-requests from the last good frame) and `Ok` on an
/// orderly end (EOF, stop, drain).
fn serve_follow_stream(
    stream: &TcpStream,
    state: &ServerState,
    follower: &FollowerState,
) -> Result<(), String> {
    let Some(journal) = &state.journal else {
        return Err("follower requires a journal".to_string());
    };
    let mut wr = stream;
    let mut hello = Vec::with_capacity(16);
    hello.extend_from_slice(&MAGIC);
    hello.extend_from_slice(&follower.applied.load(Ordering::SeqCst).to_le_bytes());
    wr.write_all(&hello).map_err(|e| format!("hello: {e}"))?;

    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 8192];
    let mut rd = stream;
    loop {
        if should_stop(state, follower) {
            return Ok(());
        }
        // deadline: the socket read timeout bounds this; a timeout with a
        // silent leader feeds the missed-heartbeat promotion clock.
        let n = match rd.read(&mut chunk) {
            Ok(0) => return Ok(()), // leader closed (drain or death)
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // No heartbeat inside the read timeout: hand control back
                // so the outer loop can weigh auto-promotion.
                return Ok(());
            }
            Err(e) => return Err(format!("read: {e}")),
        };
        reader.feed(&chunk[..n]);
        let mut applied_any = false;
        let mut heartbeat: Option<(u64, u64)> = None;
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => match frame.tag {
                    TAG_HEARTBEAT => {
                        let body: [u8; 8] = frame
                            .body()
                            .try_into()
                            .map_err(|_| "heartbeat body must be 8 bytes".to_string())?;
                        heartbeat = Some((frame.lsn, u64::from_le_bytes(body)));
                    }
                    TAG_RESET => {
                        // Full resync: drop everything, take the live set.
                        state.store.clear();
                        journal.reset().map_err(|e| format!("reset: {e}"))?;
                        follower.applied.store(0, Ordering::SeqCst);
                        follower.verified.store(0, Ordering::SeqCst);
                        follower.resyncs.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {
                        let lsn = frame.lsn;
                        if lsn <= follower.applied.load(Ordering::SeqCst) {
                            continue; // duplicate from the backlog race
                        }
                        let (_, event) = Event::decode_frame_payload(&frame.payload)
                            .map_err(|e| format!("frame {lsn}: {e}"))?;
                        apply_event(state, journal, follower, lsn, event)?;
                        applied_any = true;
                    }
                },
                Ok(None) => break,
                Err(why) => {
                    // Corrupt stream: reconnect and re-request from the
                    // last good LSN. Nothing bad was applied (the CRC
                    // gate rejected the frame before decode).
                    follower.resyncs.fetch_add(1, Ordering::SeqCst);
                    return Err(why);
                }
            }
        }
        follower.touch_contact();
        // Ack once per read burst: everything applied above is already
        // durable (apply_event flushes), so one ack covers the batch.
        let applied = follower.applied.load(Ordering::SeqCst);
        if applied_any {
            // deadline: write timeout set at connect.
            wr.write_all(&applied.to_le_bytes())
                .map_err(|e| format!("ack: {e}"))?;
        }
        if let Some((hb_lsn, hb_digest)) = heartbeat {
            check_heartbeat(state, journal, follower, hb_lsn, hb_digest)?;
            // Heartbeat acks keep the leader's ack-age metric fresh even
            // when no frames flow.
            wr.write_all(&follower.applied.load(Ordering::SeqCst).to_le_bytes())
                .map_err(|e| format!("ack: {e}"))?;
        }
    }
}

/// Journals (durably), replays, and publishes one replicated event.
fn apply_event(
    state: &ServerState,
    journal: &crate::persist::Journal,
    follower: &FollowerState,
    lsn: u64,
    event: Event,
) -> Result<(), String> {
    let (_, frame) = journal
        .append_at(lsn, event.clone())
        .map_err(|e| format!("journal frame {lsn}: {e}"))?;
    // Ack implies durable: fsync regardless of policy, so `--repl-sync`
    // on the leader really means "a second durable copy exists".
    journal.flush().map_err(|e| format!("flush {lsn}: {e}"))?;
    if let Err(why) =
        crate::server::replay_event(&state.store, state.config.max_solve_evaluations, event)
    {
        // Same stance as boot replay: log and skip, keep the stream
        // moving. The digest check still covers us — the journaled bytes
        // are identical even if the in-memory apply was skipped, and a
        // skipped apply on one side only will surface as divergence.
        eprintln!("mube-serve: replication apply skipped an event: {why}");
    }
    follower.applied.store(lsn, Ordering::SeqCst);
    follower.frames_applied.fetch_add(1, Ordering::SeqCst);
    // Chaining: if this follower is itself a replication source
    // (`--repl-addr` set), forward the frame downstream.
    if let Some(hub) = &state.repl_hub {
        hub.publish(&frame);
    }
    Ok(())
}

/// Verifies a heartbeat's digest when the applied LSN matches. A mismatch
/// is divergence: quarantine (marker file), never promote, stop
/// replicating — serving stale-but-honest reads beats serving wrong state.
fn check_heartbeat(
    state: &ServerState,
    journal: &crate::persist::Journal,
    follower: &FollowerState,
    hb_lsn: u64,
    hb_digest: u64,
) -> Result<(), String> {
    let applied = follower.applied.load(Ordering::SeqCst);
    if applied != hb_lsn {
        // The heartbeat raced an append; a later one will line up.
        return Ok(());
    }
    let (local_lsn, local_digest) = journal.state_digest();
    if local_lsn != hb_lsn {
        return Ok(());
    }
    follower.digest_checks.fetch_add(1, Ordering::SeqCst);
    if local_digest == hb_digest {
        follower.verified.store(hb_lsn, Ordering::SeqCst);
        return Ok(());
    }
    follower.digest_failures.fetch_add(1, Ordering::SeqCst);
    follower.diverged.store(true, Ordering::SeqCst);
    if let Some(dir) = &state.config.data_dir {
        let marker = std::path::Path::new(dir).join(DIVERGED_MARKER);
        let _ = std::fs::write(
            &marker,
            format!(
                "state digest mismatch at lsn {hb_lsn}: leader {hb_digest:#018x}, \
                 local {local_digest:#018x}\n"
            ),
        );
    }
    Err(format!(
        "state digest mismatch at lsn {hb_lsn} (leader {hb_digest:#018x}, local \
         {local_digest:#018x}); follower quarantined"
    ))
}

/// Auto-promotion: if the leader has been silent past `--promote-timeout`
/// (0 disables), run the same checked promotion `POST /admin/promote`
/// does. Returns `true` when this follower became the leader.
fn maybe_auto_promote(state: &ServerState, follower: &FollowerState) -> bool {
    let timeout = state.config.promote_timeout;
    if timeout.is_zero() {
        return false;
    }
    let silent = follower.contact_age().is_none_or(|age| age >= timeout);
    if !silent {
        return false;
    }
    state.role.store(ROLE_CANDIDATE, Ordering::SeqCst);
    match promote(state) {
        Ok((lsn, digest)) => {
            eprintln!(
                "mube-serve: leader silent for {}ms; promoted to leader at lsn {lsn} \
                 (digest {digest:#018x})",
                timeout.as_millis()
            );
            true
        }
        Err(why) => {
            // Diverged: stay a candidate refusing writes; an operator
            // must intervene. Never serve wrong state.
            eprintln!("mube-serve: auto-promotion refused: {why}");
            follower.stop.store(true, Ordering::SeqCst);
            false
        }
    }
}

/// The checked promotion: refuses on a leader (`already_leader`) and on a
/// quarantined follower (`diverged`); otherwise stops the replication
/// client, flips the role, and returns the promoted `(lsn, digest)` pair
/// — the proof obligation the failover test compares against the old
/// leader's replayed data dir.
pub(crate) fn promote(state: &ServerState) -> Result<(u64, u64), &'static str> {
    let Some(follower) = &state.follower else {
        return Err("already_leader");
    };
    if state.role.load(Ordering::SeqCst) == ROLE_LEADER {
        return Err("already_leader");
    }
    if follower.diverged.load(Ordering::SeqCst) {
        return Err("diverged");
    }
    follower.stop.store(true, Ordering::SeqCst);
    state.role.store(ROLE_LEADER, Ordering::SeqCst);
    let (lsn, digest) = match &state.journal {
        Some(j) => j.state_digest(),
        None => (0, 0),
    };
    Ok((lsn, digest))
}

// ---------------------------------------------------------------------------
// Anti-entropy resync
// ---------------------------------------------------------------------------

/// Why a resync was refused or aborted.
#[derive(Debug)]
pub(crate) enum ResyncError {
    /// This node has no follower state (it is, or has become, a leader).
    NotFollower,
    /// The archive/reset phase failed; the node keeps its pre-resync
    /// state (nothing is wiped before archival succeeds).
    Io(std::io::Error),
}

/// What `/admin/resync` did.
#[derive(Debug)]
pub(crate) struct ResyncOutcome {
    /// Quarantine files holding the pre-resync journal, for forensics.
    pub(crate) archived: Vec<std::path::PathBuf>,
    /// Whether the node was under divergence quarantine when resynced.
    pub(crate) was_diverged: bool,
}

/// Un-quarantines a replica by rebuilding it from its leader. The order
/// matters:
///
/// 1. stop and join the replication thread (divergence already made it
///    exit; a live one stops within a read timeout) so nothing appends
///    while the journal is rebuilt;
/// 2. archive the local journal into quarantine files — `fs::copy`, not
///    rename, because [`Journal::reset`] truncates through its held file
///    handle and would hollow out a renamed archive;
/// 3. wipe: clear the store, reset the journal, drop the divergence
///    marker, rewind `applied`/`verified` to 0;
/// 4. rejoin: flip the role back to follower (auto-promotion may have
///    left it a candidate), un-fence reads/writes gated on `read_only`,
///    and spawn a fresh replication thread whose LSN-0 hello pulls the
///    leader's full history through the normal frame machinery.
///
/// Divergence is *not* required: resyncing a healthy follower is a
/// harmless (if wasteful) full re-pull, and an operator who distrusts a
/// replica should not have to wait for a digest round to fail.
pub(crate) fn resync(state: &Arc<ServerState>) -> Result<ResyncOutcome, ResyncError> {
    let follower = state.follower.as_ref().ok_or(ResyncError::NotFollower)?;
    if state.role.load(Ordering::SeqCst) == ROLE_LEADER {
        return Err(ResyncError::NotFollower);
    }
    let journal = state.journal.as_ref().ok_or(ResyncError::NotFollower)?;
    let dir = std::path::PathBuf::from(
        state
            .config
            .data_dir
            .as_ref()
            .ok_or(ResyncError::NotFollower)?,
    );
    let was_diverged = follower.diverged.load(Ordering::SeqCst);

    follower.stop.store(true, Ordering::SeqCst);
    let old_thread = state
        .follower_thread
        .lock()
        .expect("follower thread lock poisoned")
        .take();
    if let Some(handle) = old_thread {
        // Bounded: every socket read in run_follower carries a timeout,
        // so the thread observes `stop` within one timeout.
        let _ = handle.join();
    }

    // Make everything on disk durable first so the archive is a faithful
    // copy of what this replica believed.
    journal.flush().map_err(ResyncError::Io)?;
    let mut archived = Vec::new();
    for name in ["snapshot.wal", "journal.wal"] {
        let src = dir.join(name);
        let has_bytes = std::fs::metadata(&src).is_ok_and(|m| m.len() > 0);
        if has_bytes {
            let dst = crate::persist::quarantine_path(&dir);
            std::fs::copy(&src, &dst).map_err(ResyncError::Io)?;
            archived.push(dst);
        }
    }
    crate::persist::prune_quarantines(&dir, state.config.quarantine_keep);

    state.store.clear();
    journal.reset().map_err(ResyncError::Io)?;
    let _ = std::fs::remove_file(dir.join(DIVERGED_MARKER));
    follower.applied.store(0, Ordering::SeqCst);
    follower.verified.store(0, Ordering::SeqCst);
    follower.diverged.store(false, Ordering::SeqCst);
    follower.resyncs.fetch_add(1, Ordering::SeqCst);
    state.role.store(ROLE_FOLLOWER, Ordering::SeqCst);
    state.read_only.store(false, Ordering::SeqCst);
    follower.stop.store(false, Ordering::SeqCst);

    let st = Arc::clone(state);
    let handle = std::thread::Builder::new()
        .name("mube-repl-follower".to_string())
        .spawn(move || run_follower(st))
        .map_err(ResyncError::Io)?;
    *state
        .follower_thread
        .lock()
        .expect("follower thread lock poisoned") = Some(handle);
    Ok(ResyncOutcome {
        archived,
        was_diverged,
    })
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Replication counters for `/metrics`: role, LSN positions, lag, and the
/// health of the digest handshake.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplStats {
    /// `leader`, `follower`, or `candidate`.
    pub role: &'static str,
    /// Leader: last committed LSN. Follower: last applied LSN.
    pub last_lsn: u64,
    /// Live follower connections (leader side).
    pub followers: u64,
    /// Highest LSN acked by any live follower (leader side).
    pub acked_lsn: u64,
    /// Replication lag in LSNs: `last_lsn - acked_lsn` (leader side).
    pub lag: u64,
    /// Milliseconds since the freshest follower ack (leader side).
    pub ack_age_ms: Option<u64>,
    /// Frames shipped to followers since boot (leader side).
    pub frames_shipped: u64,
    /// Heartbeats sent (leader) or digest checks run (follower).
    pub heartbeats: u64,
    /// Full resyncs initiated (RESET frames sent or received).
    pub resets: u64,
    /// The upstream leader address (follower side).
    pub leader: Option<String>,
    /// Last digest-verified LSN (follower side).
    pub verified_lsn: u64,
    /// Digest checks that failed (any failure also sets `diverged`).
    pub digest_failures: u64,
    /// Whether this node is quarantined by a failed digest check.
    pub diverged: bool,
    /// Milliseconds since last leader contact (follower side).
    pub last_contact_ms: Option<u64>,
}

/// Builds the `/metrics` replication block; `None` when the server runs
/// unreplicated (no `--repl-addr`, no `--follow`).
pub(crate) fn repl_stats(state: &ServerState) -> Option<ReplStats> {
    if state.repl_hub.is_none() && state.follower.is_none() {
        return None;
    }
    let mut s = ReplStats {
        role: role_str(state.role.load(Ordering::SeqCst)),
        last_lsn: state.journal.as_ref().map_or(0, Journal::last_lsn),
        ..ReplStats::default()
    };
    if let Some(hub) = &state.repl_hub {
        let (live, acked, age) = hub.ack_view();
        s.followers = live;
        s.acked_lsn = acked;
        s.lag = s.last_lsn.saturating_sub(acked);
        s.ack_age_ms = age.map(|a| u64::try_from(a.as_millis()).unwrap_or(u64::MAX));
        s.frames_shipped = hub.frames_shipped.load(Ordering::SeqCst);
        s.heartbeats = hub.heartbeats_sent.load(Ordering::SeqCst);
        s.resets = hub.resets_sent.load(Ordering::SeqCst);
    }
    if let Some(f) = &state.follower {
        s.leader = Some(f.leader.clone());
        s.verified_lsn = f.verified.load(Ordering::SeqCst);
        s.heartbeats = s.heartbeats.max(f.digest_checks.load(Ordering::SeqCst));
        s.resets = s.resets.max(f.resyncs.load(Ordering::SeqCst));
        s.digest_failures = f.digest_failures.load(Ordering::SeqCst);
        s.diverged = f.diverged.load(Ordering::SeqCst);
        s.last_contact_ms = f
            .contact_age()
            .map(|a| u64::try_from(a.as_millis()).unwrap_or(u64::MAX));
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::encode_event_frame;

    fn ev(id: u64) -> Event {
        Event::CatalogCreate {
            id,
            text: format!("catalog {id}"),
        }
    }

    #[test]
    fn frame_reader_roundtrips_split_input() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_event_frame(1, &ev(1)));
        wire.extend_from_slice(&encode_heartbeat(1, 0xDEAD_BEEF));
        wire.extend_from_slice(&encode_reset());
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        // Feed one byte at a time: torn boundaries everywhere.
        for &b in &wire {
            reader.feed(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].lsn, 1);
        let (lsn, event) = Event::decode_frame_payload(&frames[0].payload).unwrap();
        assert_eq!((lsn, event), (1, ev(1)));
        assert_eq!(frames[1].tag, TAG_HEARTBEAT);
        assert_eq!(
            u64::from_le_bytes(frames[1].body().try_into().unwrap()),
            0xDEAD_BEEF
        );
        assert_eq!(frames[2].tag, TAG_RESET);
        assert!(frames[2].body().is_empty());
    }

    #[test]
    fn frame_reader_rejects_corrupt_and_implausible_frames() {
        // Bit flip inside the payload: CRC mismatch.
        let mut wire = encode_event_frame(1, &ev(1));
        let n = wire.len();
        wire[n - 1] ^= 0x01;
        let mut reader = FrameReader::new();
        reader.feed(&wire);
        assert!(reader.next_frame().unwrap_err().contains("CRC"));

        // Implausible length prefix.
        let mut reader = FrameReader::new();
        reader.feed(&[0xFF; 16]);
        assert!(reader.next_frame().unwrap_err().contains("implausible"));
    }

    #[test]
    fn frame_reader_consumes_good_prefix_before_corruption() {
        let mut wire = encode_event_frame(1, &ev(1));
        let mut bad = encode_event_frame(2, &ev(2));
        let n = bad.len();
        bad[n - 2] ^= 0x80;
        wire.extend_from_slice(&bad);
        let mut reader = FrameReader::new();
        reader.feed(&wire);
        let first = reader.next_frame().unwrap().expect("good frame");
        assert_eq!(first.lsn, 1);
        assert!(
            reader.next_frame().is_err(),
            "corruption after the good prefix"
        );
    }

    #[test]
    fn hub_acks_and_waits() {
        let hub = ReplHub::new();
        let conn = Arc::new(FollowerConn::new());
        hub.register(Arc::clone(&conn));
        assert!(!hub.wait_acked(5, Duration::from_millis(10)));
        conn.acked.store(5, Ordering::SeqCst);
        hub.note_ack(5);
        assert!(hub.wait_acked(5, Duration::from_millis(10)));
        assert!(hub.wait_acked(3, Duration::from_millis(10)), "monotone");
        let (live, acked, _) = hub.ack_view();
        assert_eq!((live, acked), (1, 5));
        hub.unregister(&conn);
        let (live, _, _) = hub.ack_view();
        assert_eq!(live, 0);
    }

    #[test]
    fn hub_publish_enqueues_per_follower() {
        let hub = ReplHub::new();
        let a = Arc::new(FollowerConn::new());
        let b = Arc::new(FollowerConn::new());
        hub.register(Arc::clone(&a));
        hub.register(Arc::clone(&b));
        b.mark_dead();
        hub.publish(&encode_event_frame(1, &ev(1)));
        assert_eq!(a.queue.lock().unwrap().len(), 1);
        assert_eq!(b.queue.lock().unwrap().len(), 0, "dead conns are skipped");
    }

    #[test]
    fn roles_render_stably() {
        assert_eq!(role_str(ROLE_LEADER), "leader");
        assert_eq!(role_str(ROLE_FOLLOWER), "follower");
        assert_eq!(role_str(ROLE_CANDIDATE), "candidate");
    }
}

//! Offline data-dir integrity checking and repair: the engine behind
//! `mube fsck [--repair] [--json]`.
//!
//! [`Journal::open`](crate::persist::Journal::open) already survives
//! corruption — it quarantines everything after the first bad byte and
//! boots with the clean prefix. That is the right *online* stance (never
//! refuse to start), but it silently forfeits every record *after* the
//! corruption, and it gives an operator no way to ask "what exactly is
//! wrong with this directory?" without starting a server on it.
//!
//! `fsck` is the offline complement:
//!
//! * **Check** — scans `snapshot.wal` and `journal.wal` record by record,
//!   verifying frame CRCs, LSN monotonicity, the snapshot header, and the
//!   snapshot/tail overlap; replays the recoverable prefix to the same
//!   FNV-1a state digest `/healthz` reports; counts quarantine files and
//!   reads the divergence marker. Every finding pinpoints the file, byte
//!   offset, and record index.
//! * **Salvage** — unlike boot recovery, fsck re-synchronizes *past* a
//!   corrupt record: frames are self-delimiting and CRC-checked, so it
//!   searches forward for the next valid frame boundary and recovers
//!   every intact record after the damage. A single flipped bit loses at
//!   most the one record it landed in — and if it landed in the snapshot
//!   *header* (which carries only the compaction horizon), nothing at all.
//! * **Repair** (`--repair`) — quarantines the corrupt byte ranges as
//!   forensic evidence, rebuilds a clean `snapshot.wal` from every
//!   recovered record (good prefix + salvage, deduplicated by LSN)
//!   atomically (temp + fsync + rename), truncates the tail, and prunes
//!   quarantine files past the retention cap. After a successful repair
//!   the directory scans clean and a server started on it replays to the
//!   reported digest.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::persist::{
    crc32, digest_events, encode_event_frame, encode_snapshot_header, prune_quarantines,
    quarantine_files, quarantine_path, scan_bytes, Event, Record, DEFAULT_QUARANTINE_KEEP,
    MAX_RECORD_BYTES, TAG_SNAPSHOT,
};
use crate::repl::DIVERGED_MARKER;
use mube_core::jsonw::JsonBuf;

/// What `fsck` should do beyond checking.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Quarantine corrupt ranges, rebuild the snapshot from everything
    /// recoverable, truncate the tail, and prune old quarantine files.
    pub repair: bool,
    /// Quarantine retention cap applied during repair.
    pub quarantine_keep: u64,
}

impl Default for FsckOptions {
    fn default() -> Self {
        FsckOptions {
            repair: false,
            quarantine_keep: DEFAULT_QUARANTINE_KEEP,
        }
    }
}

/// Per-file findings: `snapshot.wal` or `journal.wal`.
#[derive(Debug, Clone, Default)]
pub struct FsckFile {
    /// Whether the file exists.
    pub present: bool,
    /// Total file length in bytes.
    pub bytes: u64,
    /// Records in the clean prefix.
    pub records: u64,
    /// Byte length of the clean prefix (== `bytes` when clean).
    pub good_bytes: u64,
    /// Records recovered by re-synchronizing past the corruption.
    pub salvaged_records: u64,
    /// First corruption, with the record index and byte offset.
    pub corruption: Option<String>,
}

/// The full `mube fsck` report.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// The checked directory.
    pub dir: PathBuf,
    /// `snapshot.wal` findings.
    pub snapshot: FsckFile,
    /// `journal.wal` findings.
    pub journal: FsckFile,
    /// Compaction horizon from the snapshot header (0 when absent).
    pub through_lsn: u64,
    /// Live events a server booted on this dir would replay (clean-prefix
    /// semantics, i.e. without salvage).
    pub live_events: u64,
    /// Highest LSN recoverable from the clean prefixes.
    pub last_lsn: u64,
    /// FNV-1a state digest of the clean-prefix replay — comparable to the
    /// `digest` field in `/healthz`.
    pub replay_digest: u64,
    /// Tail records shadowed by the snapshot (the benign crash window
    /// between snapshot rename and tail truncation).
    pub overlap_events: u64,
    /// `quarantine-N.wal` files present.
    pub quarantine_files: u64,
    /// Contents of `diverged.marker`, when present (replication
    /// quarantine; `mube resync` is the road back, not `--repair`).
    pub diverged: Option<String>,
    /// Integrity findings; empty means the directory is clean.
    pub issues: Vec<String>,
    /// Repair actions taken (empty without `--repair`).
    pub repairs: Vec<String>,
    /// No issues found (after repair, when repairing).
    pub clean: bool,
}

/// Checks (and with `opts.repair`, repairs) the data directory.
///
/// Never run this against the data dir of a *live* server: fsck takes no
/// lock, and a concurrent append would race the rebuild. The server's
/// background scrubber covers the online case.
pub fn fsck(dir: &Path, opts: &FsckOptions) -> std::io::Result<FsckReport> {
    if !dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("data dir {} does not exist", dir.display()),
        ));
    }
    let mut report = check(dir)?;
    if opts.repair && !report.clean {
        let repairs = repair(dir, opts)?;
        // Re-check so the report reflects the repaired state; keep the
        // action log from the repair pass.
        report = check(dir)?;
        report.repairs = repairs;
    }
    Ok(report)
}

/// One file's worth of scanning: clean prefix, salvage, findings.
struct FileScan {
    file: FsckFile,
    data: Vec<u8>,
    /// Clean-prefix records.
    records: Vec<Record>,
    /// Records recovered past the corruption (empty when clean).
    salvaged: Vec<Record>,
}

fn scan_file(dir: &Path, name: &str) -> std::io::Result<FileScan> {
    let path = dir.join(name);
    let data = match fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(FileScan {
                file: FsckFile::default(),
                data: Vec::new(),
                records: Vec::new(),
                salvaged: Vec::new(),
            })
        }
        Err(e) => return Err(e),
    };
    let scan = scan_bytes(&data);
    let salvaged = match scan.corruption {
        Some(_) => salvage(&data, scan.good_len as usize + 1),
        None => Vec::new(),
    };
    let file = FsckFile {
        present: true,
        bytes: scan.file_len,
        records: scan.records.len() as u64,
        good_bytes: scan.good_len,
        salvaged_records: salvaged.len() as u64,
        corruption: scan.corruption.map(|why| {
            format!(
                "{name}: {why} in record {} at byte {}",
                scan.records.len(),
                scan.good_len
            )
        }),
    };
    Ok(FileScan {
        file,
        data,
        records: scan.records,
        salvaged,
    })
}

/// Tries to parse one valid frame at `pos`; `None` on anything torn,
/// implausible, CRC-bad, or undecodable.
fn parse_frame_at(data: &[u8], pos: usize) -> Option<(Record, usize)> {
    if pos + 8 > data.len() {
        return None;
    }
    let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
    if !(9..=MAX_RECORD_BYTES).contains(&len) {
        return None;
    }
    let end = pos + 8 + len as usize;
    if end > data.len() {
        return None;
    }
    let payload = &data[pos + 8..end];
    if crc32(payload) != crc {
        return None;
    }
    if payload[8] == TAG_SNAPSHOT {
        if payload.len() != 17 {
            return None;
        }
        let through_lsn = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        return Some((Record::Snapshot { through_lsn }, end));
    }
    let (lsn, event) = Event::decode_frame_payload(payload).ok()?;
    Some((Record::Event { lsn, event }, end))
}

/// Re-synchronizes past a corrupt record: slides forward byte by byte
/// until a valid frame parses, then resumes frame-at-a-time (sliding
/// again on any further damage). The CRC gate makes a false resync
/// vanishingly unlikely (~2^-32 per candidate offset), and every salvaged
/// record is individually checksummed and decodable.
fn salvage(data: &[u8], from: usize) -> Vec<Record> {
    let mut out = Vec::new();
    let mut pos = from;
    while pos < data.len() {
        match parse_frame_at(data, pos) {
            Some((rec, next)) => {
                out.push(rec);
                pos = next;
            }
            None => pos += 1,
        }
    }
    out
}

/// The check pass: scan both files, validate structure, replay to digest.
fn check(dir: &Path) -> std::io::Result<FsckReport> {
    let snap = scan_file(dir, "snapshot.wal")?;
    let tail = scan_file(dir, "journal.wal")?;
    let mut issues = Vec::new();
    if let Some(why) = &snap.file.corruption {
        issues.push(why.clone());
    }
    if let Some(why) = &tail.file.corruption {
        issues.push(why.clone());
    }

    // Snapshot structure: exactly one header, first, horizon ≥ every
    // member event, events in strictly increasing LSN order.
    let mut through_lsn = 0u64;
    let mut snap_events: Vec<(u64, Event)> = Vec::new();
    for (i, rec) in snap.records.iter().enumerate() {
        match rec {
            Record::Snapshot { through_lsn: t } => {
                if i != 0 {
                    issues.push(format!("snapshot.wal: stray snapshot header in record {i}"));
                } else {
                    through_lsn = *t;
                }
            }
            Record::Event { lsn, event } => {
                if i == 0 {
                    issues.push("snapshot.wal: missing snapshot header".to_string());
                }
                if *lsn > through_lsn && i != 0 {
                    issues.push(format!(
                        "snapshot.wal: record {i} has lsn {lsn} beyond the \
                         snapshot horizon {through_lsn}"
                    ));
                }
                if let Some(&(prev, _)) = snap_events.last() {
                    if *lsn <= prev {
                        issues.push(format!(
                            "snapshot.wal: record {i} breaks LSN monotonicity \
                             ({lsn} after {prev})"
                        ));
                    }
                }
                snap_events.push((*lsn, event.clone()));
            }
        }
    }

    // Tail structure: event records only, strictly increasing LSNs;
    // records at or below the snapshot horizon are the benign
    // rename-then-crash overlap, counted but not flagged.
    let mut overlap_events = 0u64;
    let mut tail_events: Vec<(u64, Event)> = Vec::new();
    let mut prev_tail_lsn: Option<u64> = None;
    for (i, rec) in tail.records.iter().enumerate() {
        match rec {
            Record::Snapshot { .. } => {
                issues.push(format!("journal.wal: snapshot header in record {i}"));
            }
            Record::Event { lsn, event } => {
                if let Some(prev) = prev_tail_lsn {
                    if *lsn <= prev {
                        issues.push(format!(
                            "journal.wal: record {i} breaks LSN monotonicity \
                             ({lsn} after {prev})"
                        ));
                    }
                }
                prev_tail_lsn = Some(*lsn);
                if *lsn <= through_lsn {
                    overlap_events += 1;
                } else {
                    tail_events.push((*lsn, event.clone()));
                }
            }
        }
    }

    // Clean-prefix replay — exactly what a server booted here would load.
    let mut live = snap_events;
    live.extend(tail_events);
    live.sort_by_key(|&(lsn, _)| lsn);
    let last_lsn = live
        .last()
        .map_or(through_lsn, |&(lsn, _)| lsn.max(through_lsn));
    let replay_digest = digest_events(&live);

    let diverged = match fs::read_to_string(dir.join(DIVERGED_MARKER)) {
        Ok(text) => Some(text.trim().to_string()),
        Err(_) => None,
    };
    let clean = issues.is_empty();
    Ok(FsckReport {
        dir: dir.to_path_buf(),
        snapshot: snap.file,
        journal: tail.file,
        through_lsn,
        live_events: live.len() as u64,
        last_lsn,
        replay_digest,
        overlap_events,
        quarantine_files: quarantine_files(dir).len() as u64,
        diverged,
        issues,
        repairs: Vec::new(),
        clean,
    })
}

/// The repair pass: quarantine corrupt ranges, rebuild the snapshot from
/// good prefix + salvage (deduplicated by LSN), truncate the tail, prune
/// quarantine files.
fn repair(dir: &Path, opts: &FsckOptions) -> std::io::Result<Vec<String>> {
    let snap = scan_file(dir, "snapshot.wal")?;
    let tail = scan_file(dir, "journal.wal")?;
    let mut repairs = Vec::new();

    // Evidence first: the corrupt suffixes, bit-for-bit, before anything
    // rewrites the files they came from.
    for (name, scan) in [("snapshot.wal", &snap), ("journal.wal", &tail)] {
        let good = scan.file.good_bytes as usize;
        if scan.file.corruption.is_some() && good < scan.data.len() {
            let qpath = quarantine_path(dir);
            fs::write(&qpath, &scan.data[good..])?;
            repairs.push(format!(
                "quarantined {} corrupt bytes of {name} to {}",
                scan.data.len() - good,
                qpath.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            ));
        }
    }

    // Everything recoverable, one record per LSN. Good-prefix records win
    // ties (salvage can only re-find identical frames, but be explicit).
    let mut through_lsn = 0u64;
    let mut live: Vec<(u64, Event)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let all = snap
        .records
        .iter()
        .chain(tail.records.iter())
        .chain(snap.salvaged.iter())
        .chain(tail.salvaged.iter());
    let mut salvaged_used = 0u64;
    for (i, rec) in all.enumerate() {
        let from_prefix = i < snap.records.len() + tail.records.len();
        match rec {
            Record::Snapshot { through_lsn: t } => {
                through_lsn = through_lsn.max(*t);
            }
            Record::Event { lsn, event } => {
                if seen.insert(*lsn) {
                    live.push((*lsn, event.clone()));
                    if !from_prefix {
                        salvaged_used += 1;
                    }
                }
            }
        }
    }
    live.sort_by_key(|&(lsn, _)| lsn);
    let last_lsn = live
        .last()
        .map_or(through_lsn, |&(lsn, _)| lsn.max(through_lsn));
    if salvaged_used > 0 {
        repairs.push(format!(
            "salvaged {salvaged_used} records past the corruption"
        ));
    }

    // Rebuild the snapshot atomically over everything recovered, then
    // empty the tail — the rebuilt snapshot covers it entirely.
    let tmp = dir.join("snapshot.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_snapshot_header(last_lsn))?;
        for (lsn, event) in &live {
            f.write_all(&encode_event_frame(*lsn, event))?;
        }
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join("snapshot.wal"))?;
    if let Ok(d) = File::open(dir) {
        // durability: best-effort directory sync, same stance as compaction —
        // losing the rename reverts to the pre-repair state, never corrupts.
        let _ = d.sync_all();
    }
    let f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(dir.join("journal.wal"))?;
    f.sync_all()?;
    repairs.push(format!(
        "rebuilt snapshot.wal with {} records through lsn {last_lsn}; \
         truncated journal.wal",
        live.len()
    ));

    let pruned = prune_quarantines(dir, opts.quarantine_keep);
    if pruned > 0 {
        repairs.push(format!(
            "pruned {pruned} quarantine files past the retention cap of {}",
            opts.quarantine_keep
        ));
    }
    Ok(repairs)
}

impl FsckReport {
    /// Renders the `--json` report (shape documented in PROTOCOL.md).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("dir").str_value(&self.dir.display().to_string());
        j.key("clean").bool_value(self.clean);
        j.key("last_lsn").uint_value(self.last_lsn);
        j.key("digest")
            .str_value(&format!("{:016x}", self.replay_digest));
        j.key("live_events").uint_value(self.live_events);
        for (name, f) in [("snapshot", &self.snapshot), ("journal", &self.journal)] {
            j.key(name).begin_obj();
            j.key("present").bool_value(f.present);
            j.key("bytes").uint_value(f.bytes);
            j.key("records").uint_value(f.records);
            j.key("good_bytes").uint_value(f.good_bytes);
            j.key("salvaged_records").uint_value(f.salvaged_records);
            match &f.corruption {
                Some(why) => j.key("corruption").str_value(why),
                None => j.key("corruption").null_value(),
            };
            j.end_obj();
        }
        j.key("through_lsn").uint_value(self.through_lsn);
        j.key("overlap_events").uint_value(self.overlap_events);
        j.key("quarantine_files").uint_value(self.quarantine_files);
        match &self.diverged {
            Some(text) => j.key("diverged").str_value(text),
            None => j.key("diverged").null_value(),
        };
        j.key("issues").begin_arr();
        for issue in &self.issues {
            j.str_value(issue);
        }
        j.end_arr();
        j.key("repairs").begin_arr();
        for r in &self.repairs {
            j.str_value(r);
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(&mut out, format!("fsck {}", self.dir.display()));
        for (name, f) in [
            ("snapshot.wal", &self.snapshot),
            ("journal.wal", &self.journal),
        ] {
            if !f.present {
                push(&mut out, format!("  {name}: absent"));
                continue;
            }
            push(
                &mut out,
                format!(
                    "  {name}: {} bytes, {} records clean{}",
                    f.bytes,
                    f.records,
                    match f.salvaged_records {
                        0 => String::new(),
                        n => format!(", {n} salvageable"),
                    }
                ),
            );
        }
        push(
            &mut out,
            format!(
                "  replay: {} live events through lsn {}, digest {:016x}",
                self.live_events, self.last_lsn, self.replay_digest
            ),
        );
        if self.overlap_events > 0 {
            push(
                &mut out,
                format!(
                    "  overlap: {} tail records shadowed by the snapshot (benign)",
                    self.overlap_events
                ),
            );
        }
        if self.quarantine_files > 0 {
            push(
                &mut out,
                format!("  quarantine: {} evidence files", self.quarantine_files),
            );
        }
        if let Some(why) = &self.diverged {
            push(&mut out, format!("  diverged: {why} (run `mube resync`)"));
        }
        for issue in &self.issues {
            push(&mut out, format!("  issue: {issue}"));
        }
        for r in &self.repairs {
            push(&mut out, format!("  repair: {r}"));
        }
        push(
            &mut out,
            if self.clean {
                "  status: clean".to_string()
            } else {
                "  status: CORRUPT (re-run with --repair to rebuild)".to_string()
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{FsyncPolicy, Journal, SolutionRecord};
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mube-fsck-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev_catalog(id: u64) -> Event {
        Event::CatalogCreate {
            id,
            text: format!("catalog-{id} text"),
        }
    }

    fn ev_solve(session: u64) -> Event {
        Event::Solve {
            session,
            solution: SolutionRecord {
                sources: vec![1, 2],
                quality_bits: 0.5_f64.to_bits(),
                evaluations: 10,
                timed_out: false,
                qef_scores: vec![("matching".into(), 1.0_f64.to_bits(), 0.9_f64.to_bits())],
                schema: vec![vec![(1, 0)]],
            },
        }
    }

    /// A dir with a snapshot (2 events) and a tail (2 events); returns
    /// the journal's digest for comparison.
    fn seeded_dir(tag: &str) -> (PathBuf, u64) {
        let dir = test_dir(tag);
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        j.append(ev_catalog(1)).unwrap();
        j.append(ev_catalog(2)).unwrap(); // compacts
        j.append(ev_solve(1)).unwrap();
        j.append(ev_solve(2)).unwrap(); // compacts again
        j.append(ev_catalog(3)).unwrap(); // tail
        let (_, digest) = j.state_digest();
        (dir, digest)
    }

    #[test]
    fn clean_dir_reports_clean_and_matches_server_digest() {
        let (dir, digest) = seeded_dir("clean");
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean, "{report:?}");
        assert!(report.issues.is_empty());
        assert_eq!(report.replay_digest, digest);
        assert_eq!(report.last_lsn, 5);
        assert_eq!(report.live_events, 5);
        assert!(report.snapshot.present);
        assert!(report.journal.present);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_error_and_empty_dir_is_clean() {
        let dir = test_dir("empty");
        assert!(fsck(&dir, &FsckOptions::default()).is_err());
        fs::create_dir_all(&dir).unwrap();
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean);
        assert!(!report.snapshot.present);
        assert_eq!(report.live_events, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_snapshot_header_is_pinpointed_and_fully_repaired() {
        let (dir, digest) = seeded_dir("header-flip");
        // Corrupt the snapshot *header* record (first 25 bytes): the only
        // payload it carries is the compaction horizon, which repair
        // reconstructs from the member LSNs — so nothing is lost.
        let snap = dir.join("snapshot.wal");
        let mut data = fs::read(&snap).unwrap();
        data[20] ^= 0x10;
        fs::write(&snap, &data).unwrap();

        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean);
        assert!(
            report
                .snapshot
                .corruption
                .as_deref()
                .unwrap()
                .contains("record 0"),
            "{report:?}"
        );
        assert!(report.snapshot.salvaged_records > 0, "{report:?}");

        let repaired = fsck(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(repaired.clean, "{repaired:?}");
        assert!(!repaired.repairs.is_empty());
        assert_eq!(
            repaired.replay_digest, digest,
            "header corruption must repair to the uncorrupted digest"
        );
        assert!(repaired.quarantine_files > 0, "evidence kept");

        // A server booted on the repaired dir replays to the same digest.
        let (j, _, rec) = Journal::open(&dir, FsyncPolicy::Never, 1000).unwrap();
        assert!(rec.corruption.is_none());
        assert_eq!(j.state_digest().1, digest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_an_event_record_loses_only_that_record() {
        let (dir, _) = seeded_dir("event-flip");
        // Flip a bit in the middle of the snapshot (an event record).
        let snap = dir.join("snapshot.wal");
        let mut data = fs::read(&snap).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        fs::write(&snap, &data).unwrap();

        let before = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(!before.clean);
        let repaired = fsck(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(repaired.clean, "{repaired:?}");
        // 5 events total; exactly one died with the flipped record.
        assert_eq!(repaired.live_events, 4, "{repaired:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_with_evidence() {
        let (dir, _) = seeded_dir("torn-tail");
        let path = dir.join("journal.wal");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 7]).unwrap();

        let before = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(!before.clean);
        assert!(
            before
                .journal
                .corruption
                .as_deref()
                .unwrap()
                .contains("torn"),
            "{before:?}"
        );
        let repaired = fsck(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(repaired.clean);
        assert_eq!(repaired.journal.bytes, 0, "tail truncated into snapshot");
        assert!(repaired.quarantine_files > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lsn_monotonicity_violations_are_flagged() {
        let dir = test_dir("monotonic");
        fs::create_dir_all(&dir).unwrap();
        let mut tail = Vec::new();
        tail.extend_from_slice(&encode_event_frame(3, &ev_catalog(1)));
        tail.extend_from_slice(&encode_event_frame(2, &ev_catalog(2)));
        fs::write(dir.join("journal.wal"), &tail).unwrap();
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean);
        assert!(
            report.issues.iter().any(|i| i.contains("monotonicity")),
            "{report:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diverged_marker_is_surfaced_not_repaired() {
        let (dir, _) = seeded_dir("diverged");
        fs::write(dir.join(DIVERGED_MARKER), "digest mismatch at lsn 9\n").unwrap();
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean, "a marker is not corruption");
        assert!(report.diverged.as_deref().unwrap().contains("lsn 9"));
        let json = report.to_json();
        assert!(json.contains("\"diverged\":\"digest mismatch"), "{json}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_renders_json_and_text() {
        let (dir, _) = seeded_dir("render");
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"digest\":\""), "{json}");
        assert!(json.contains("\"issues\":[]"), "{json}");
        let text = report.render();
        assert!(text.contains("status: clean"), "{text}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

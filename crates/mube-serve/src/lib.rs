//! `mube-serve` — a multi-threaded HTTP/JSON server for the `µBE` §6
//! feedback loop.
//!
//! The paper's workflow is a dialogue: solve, inspect, pin a source or
//! adopt a GA, re-solve. This crate puts that dialogue behind a small
//! HTTP/1.1 API so front ends and scripts can drive it:
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /catalogs` | upload a catalog (text format) |
//! | `POST /sessions` | start a session over a catalog |
//! | `POST /sessions/{id}/solve` | run one iteration |
//! | `POST /sessions/{id}/feedback` | pin/unpin, adopt GAs, re-weight, retune `m`/`θ`/`β` |
//! | `GET /sessions/{id}/explain` | leave-one-out contributions |
//! | `GET /sessions/{id}/lint` | `mube-audit` diagnostics for the session |
//! | `DELETE /sessions/{id}` | drop a session |
//! | `GET /metrics` | counters + latency histograms + replication stats |
//! | `GET /healthz` | liveness, drain state, role, applied LSN + digest |
//! | `POST /admin/promote` | checked failover: promote a follower to leader |
//! | `POST /admin/resync` | un-quarantine a diverged follower via full resync |
//!
//! With a journal (`data_dir`) the server can also replicate: a leader
//! (`repl_addr`) ships committed journal frames to followers (`follow`),
//! which apply them through the same replay handlers crash recovery
//! uses and serve read-only traffic — see [`repl`] and `PROTOCOL.md`
//! ("Replication & failover").
//!
//! Everything is hand-rolled on `std` (the workspace takes no external
//! dependencies): the HTTP parser in [`http`], the JSON reader in [`json`]
//! (the writer lives in `mube_core::jsonw`), a [`pool::WorkerPool`] for
//! concurrency, and the [`store::Store`] keeping per-session mutexes so
//! same-session requests serialize while sessions run in parallel.
//! Sessions over one catalog share a single
//! [`mube_match::SimilarityCache`], so re-solves never recompute name
//! similarities. See `PROTOCOL.md` at the repo root for the full wire
//! reference.

pub mod fsck;
pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod repl;
pub mod server;
pub mod store;

pub use fsck::{fsck, FsckFile, FsckOptions, FsckReport};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, Metrics, ScrubStats, ServerStats, BUCKETS};
pub use persist::{
    Event, FsyncPolicy, Journal, JournalStats, RecoveryReport, ScrubReport, SolutionRecord,
    DEFAULT_QUARANTINE_KEEP,
};
pub use pool::WorkerPool;
pub use repl::ReplStats;
pub use server::{ServeConfig, Server, ServerHandle};
pub use store::{CatalogEntry, SessionEntry, Store, StoreError};

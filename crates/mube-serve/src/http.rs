//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The server speaks just enough HTTP for a JSON API: one request per
//! connection (`Connection: close`), methods + paths + headers +
//! `Content-Length` bodies. Robustness over features: header and body sizes
//! are capped, reads are bounded by socket timeouts set by the caller, and
//! every malformed input maps to a structured [`HttpError`] (which the
//! server renders as a 4xx) instead of a panic or a hang.

use std::io::{Read, Write};

/// Upper bound on the request line + headers, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header lines. A head can fit thousands of
/// tiny headers under [`MAX_HEAD_BYTES`]; capping the count bounds the
/// per-request allocation independent of header sizes.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client; not normalized).
    pub method: String,
    /// The path, without query string.
    pub path: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body decoded as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("body is not UTF-8"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; the reason phrase to report.
    Malformed(&'static str),
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`] or
    /// [`MAX_HEADERS`] (rendered as 431).
    HeadTooLarge,
    /// Declared `Content-Length` exceeded the server's body cap.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Socket error or timeout mid-request.
    Io(std::io::Error),
    /// The peer closed before sending anything (not worth a response).
    EmptyConnection,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds cap {limit}")
            }
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::EmptyConnection => write!(f, "connection closed before request"),
        }
    }
}

/// Reads one request from `stream`. `max_body` caps the accepted
/// `Content-Length`. The caller is responsible for socket timeouts.
pub fn read_request<S: Read>(stream: &mut S, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head. Reading one chunk at
    // a time is fine here: requests are small and connections short-lived.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        // deadline: the caller wraps the stream in a deadline-bounded
        // reader (server::DeadlineStream) or sets socket timeouts, so this
        // read cannot block past the request deadline.
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::EmptyConnection);
            }
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    // Strip the query string; the API is body-driven.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    // Body bytes already read past the head, then the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        // deadline: same contract as the head read — the caller's
        // deadline-bounded stream caps the total time here.
        let n = stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` JSON response.
pub fn write_response<S: Write>(stream: &mut S, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// Like [`write_response`], with extra `(name, value)` headers interleaved
/// before the blank line (e.g. `Retry-After` on 429/503).
pub fn write_response_with<S: Write>(
    stream: &mut S,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        status,
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"seed\": 1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_utf8().unwrap(), "{\"seed\": 1}");
    }

    #[test]
    fn parses_get_without_body_and_strips_query() {
        let req = parse("GET /metrics?pretty=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            }
        ));
    }

    #[test]
    fn rejects_oversized_head() {
        let huge = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(32 * 1024));
        assert!(matches!(parse(&huge), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn rejects_too_many_headers() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("x-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse(""), Err(HttpError::EmptyConnection)));
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET / SMTP/1.0\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbad header line\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        // Truncated body: declared 10 bytes, got 2.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").is_err());
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "{\"error\":{}}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"error\":{}}"), "{text}");
    }

    #[test]
    fn response_with_extra_headers() {
        let mut out = Vec::new();
        write_response_with(&mut out, 429, &[("retry-after", "2")], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        // Extra headers land inside the head, before the blank line.
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("retry-after").unwrap() < head_end);
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}

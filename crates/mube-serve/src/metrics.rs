//! Server observability: request/solve counters and latency histograms.
//!
//! One [`Metrics`] lives for the server's lifetime; handlers record into it
//! and `GET /metrics` (or a test) takes a consistent [`ServerStats`]
//! snapshot. Buckets are fixed log-scale (powers of two of microseconds),
//! so histograms are tiny, mergeable, and never allocate on the hot path.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use mube_core::jsonw::JsonBuf;

use crate::persist::JournalStats;
use crate::repl::ReplStats;

/// Background-scrubber status, filled in by the server (the scrubber
/// owns these numbers). Present whenever a journal is configured, even
/// before the first scrub completes.
#[derive(Debug, Clone, Default)]
pub struct ScrubStats {
    /// Completed scrub passes.
    pub runs: u64,
    /// Passes that found corruption or a memory/disk digest mismatch.
    pub failures: u64,
    /// LSN covered by the last completed pass.
    pub last_lsn: u64,
    /// What the last failed pass found (`None` while healthy).
    pub last_error: Option<String>,
}

/// Number of log-scale buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is unbounded above
/// (≈ 2^19 µs ≈ 0.5 s and beyond).
pub const BUCKETS: usize = 20;

/// A fixed log-scale latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub counts: [u64; BUCKETS],
    /// Total observations.
    pub total: u64,
    /// Sum of all observed durations, in microseconds.
    pub sum_micros: u64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let bucket = if micros == 0 {
            0
        } else {
            (63 - u64::leading_zeros(micros) as usize).min(BUCKETS - 1)
        };
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Mean observed duration in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum_micros as f64 / self.total as f64
            }
        }
    }

    fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("total").uint_value(self.total);
        j.key("sum_micros").uint_value(self.sum_micros);
        j.key("buckets_micros_pow2").begin_arr();
        for &c in &self.counts {
            j.uint_value(c);
        }
        j.end_arr();
        j.end_obj();
    }
}

/// Everything the server counts, behind one lock (handlers touch it a few
/// times per request; contention is negligible next to a solve).
#[derive(Debug, Default)]
struct Inner {
    requests: BTreeMap<(String, u16), u64>,
    catalogs_created: u64,
    sessions_created: u64,
    sessions_evicted: u64,
    solves_run: u64,
    solves_timed_out: u64,
    requests_shed: u64,
    executions_run: u64,
    exec_fetch_attempts: u64,
    exec_fetch_failures: u64,
    exec_sources_failed: u64,
    exec_sources_degraded: u64,
    request_hist: Histogram,
    solve_hist: Histogram,
    exec_hist: Histogram,
}

/// Shared metrics sink.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

/// A consistent copy of the counters, for `/metrics` and tests.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// `(endpoint, status) → count`, endpoint being the normalized route
    /// (e.g. `POST /sessions/{id}/solve`).
    pub requests: BTreeMap<(String, u16), u64>,
    /// Catalogs uploaded.
    pub catalogs_created: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Sessions evicted by the idle policy.
    pub sessions_evicted: u64,
    /// Solve iterations run.
    pub solves_run: u64,
    /// Solves cut short by a deadline (answered with the best incumbent,
    /// flagged `timed_out`).
    pub solves_timed_out: u64,
    /// Connections shed by admission control (503 + Retry-After before a
    /// worker ever saw them).
    pub requests_shed: u64,
    /// Query executions run (`POST /sessions/{id}/execute`).
    pub executions_run: u64,
    /// Fetch attempts across all executions (retries included).
    pub exec_fetch_attempts: u64,
    /// Fetch attempts that failed (timeouts, unavailability, partials).
    pub exec_fetch_failures: u64,
    /// Sources that exhausted retries and contributed nothing.
    pub exec_sources_failed: u64,
    /// Sources that only contributed salvaged partial data.
    pub exec_sources_degraded: u64,
    /// Sessions alive at snapshot time (filled in by the server).
    pub sessions_live: u64,
    /// Pool workers lost to job panics and respawned (filled in by the
    /// server; the pool owns that number).
    pub worker_panics: u64,
    /// Portfolio member jobs lost to panics, process-wide (filled in by
    /// the server from `mube_opt::member_panics_total`).
    pub member_panics: u64,
    /// Journal counters, when the server persists sessions (filled in by
    /// the server; the journal owns these numbers).
    pub journal: Option<JournalStats>,
    /// Replication role/lag counters, when replication is configured
    /// (filled in by the server; the replication layer owns these).
    pub repl: Option<ReplStats>,
    /// Background-scrubber status, when a journal is configured (filled
    /// in by the server; the scrubber owns these).
    pub scrub: Option<ScrubStats>,
    /// Whether the node has fenced itself read-only (a failed scrub
    /// found disk disagreeing with served state).
    pub read_only: bool,
    /// Whole-request latency histogram.
    pub request_hist: Histogram,
    /// Solver-only latency histogram.
    pub solve_hist: Histogram,
    /// Execution-only (simulated makespan excluded) latency histogram.
    pub exec_hist: Histogram,
}

impl Metrics {
    /// A zeroed sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock poisoned")
    }

    /// Records one finished request.
    pub fn record_request(&self, endpoint: &str, status: u16, elapsed: Duration) {
        let mut m = self.locked();
        *m.requests
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
        m.request_hist.record(elapsed);
    }

    /// Records one finished solve and whether a deadline cut it short.
    pub fn record_solve(&self, elapsed: Duration, timed_out: bool) {
        let mut m = self.locked();
        m.solves_run += 1;
        if timed_out {
            m.solves_timed_out += 1;
        }
        m.solve_hist.record(elapsed);
    }

    /// Records one finished query execution and its health tallies:
    /// fetch attempts/failures from the execution's health registry, plus
    /// how many sources ended the run failed or degraded.
    pub fn record_execution(
        &self,
        fetch_attempts: u64,
        fetch_failures: u64,
        sources_failed: u64,
        sources_degraded: u64,
        elapsed: Duration,
    ) {
        let mut m = self.locked();
        m.executions_run += 1;
        m.exec_fetch_attempts += fetch_attempts;
        m.exec_fetch_failures += fetch_failures;
        m.exec_sources_failed += sources_failed;
        m.exec_sources_degraded += sources_degraded;
        m.exec_hist.record(elapsed);
    }

    /// Counts a catalog upload.
    pub fn catalog_created(&self) {
        self.locked().catalogs_created += 1;
    }

    /// Counts a session creation.
    pub fn session_created(&self) {
        self.locked().sessions_created += 1;
    }

    /// Counts idle-policy evictions.
    pub fn sessions_evicted(&self, n: u64) {
        self.locked().sessions_evicted += n;
    }

    /// Counts a connection shed by admission control.
    pub fn record_shed(&self) {
        self.locked().requests_shed += 1;
    }

    /// A consistent snapshot; `sessions_live`, `worker_panics`,
    /// `member_panics`, `journal`, and `repl` are supplied by the caller
    /// (the store, pool, solver layer, journal, and replication layer own
    /// those numbers).
    // Each argument is a distinct subsystem's self-reported state; a
    // params struct would just re-spell this signature with extra steps.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        sessions_live: u64,
        worker_panics: u64,
        member_panics: u64,
        journal: Option<JournalStats>,
        repl: Option<ReplStats>,
        scrub: Option<ScrubStats>,
        read_only: bool,
    ) -> ServerStats {
        let m = self.locked();
        ServerStats {
            requests: m.requests.clone(),
            catalogs_created: m.catalogs_created,
            sessions_created: m.sessions_created,
            sessions_evicted: m.sessions_evicted,
            solves_run: m.solves_run,
            solves_timed_out: m.solves_timed_out,
            requests_shed: m.requests_shed,
            executions_run: m.executions_run,
            exec_fetch_attempts: m.exec_fetch_attempts,
            exec_fetch_failures: m.exec_fetch_failures,
            exec_sources_failed: m.exec_sources_failed,
            exec_sources_degraded: m.exec_sources_degraded,
            sessions_live,
            worker_panics,
            member_panics,
            journal,
            repl,
            scrub,
            read_only,
            request_hist: m.request_hist.clone(),
            solve_hist: m.solve_hist.clone(),
            exec_hist: m.exec_hist.clone(),
        }
    }
}

impl ServerStats {
    /// Total requests across endpoints and statuses.
    pub fn total_requests(&self) -> u64 {
        self.requests.values().sum()
    }

    /// Requests counted for one endpoint across statuses.
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.requests
            .iter()
            .filter(|((e, _), _)| e == endpoint)
            .map(|(_, c)| c)
            .sum()
    }

    /// Renders the `/metrics` JSON document.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("requests").begin_arr();
        for ((endpoint, status), count) in &self.requests {
            j.begin_obj();
            j.key("endpoint").str_value(endpoint);
            j.key("status").uint_value(u64::from(*status));
            j.key("count").uint_value(*count);
            j.end_obj();
        }
        j.end_arr();
        j.key("catalogs_created").uint_value(self.catalogs_created);
        j.key("sessions_created").uint_value(self.sessions_created);
        j.key("sessions_evicted").uint_value(self.sessions_evicted);
        j.key("sessions_live").uint_value(self.sessions_live);
        j.key("solves_run").uint_value(self.solves_run);
        j.key("solves_timed_out").uint_value(self.solves_timed_out);
        j.key("worker_panics").uint_value(self.worker_panics);
        j.key("member_panics").uint_value(self.member_panics);
        j.key("requests_shed").uint_value(self.requests_shed);
        match &self.journal {
            Some(s) => {
                j.key("journal").begin_obj();
                j.key("appends").uint_value(s.appends);
                j.key("snapshots").uint_value(s.snapshots);
                j.key("live_events").uint_value(s.live_events);
                j.key("quarantined_bytes").uint_value(s.quarantined_bytes);
                j.key("quarantine_files").uint_value(s.quarantine_files);
                j.end_obj();
            }
            None => {
                j.key("journal").null_value();
            }
        }
        match &self.repl {
            Some(r) => {
                j.key("repl").begin_obj();
                j.key("role").str_value(r.role);
                j.key("last_lsn").uint_value(r.last_lsn);
                j.key("followers").uint_value(r.followers);
                j.key("acked_lsn").uint_value(r.acked_lsn);
                j.key("lag").uint_value(r.lag);
                match r.ack_age_ms {
                    Some(ms) => j.key("ack_age_ms").uint_value(ms),
                    None => j.key("ack_age_ms").null_value(),
                };
                j.key("frames_shipped").uint_value(r.frames_shipped);
                j.key("heartbeats").uint_value(r.heartbeats);
                j.key("resets").uint_value(r.resets);
                match &r.leader {
                    Some(addr) => j.key("leader").str_value(addr),
                    None => j.key("leader").null_value(),
                };
                j.key("verified_lsn").uint_value(r.verified_lsn);
                j.key("digest_failures").uint_value(r.digest_failures);
                j.key("diverged").bool_value(r.diverged);
                match r.last_contact_ms {
                    Some(ms) => j.key("last_contact_ms").uint_value(ms),
                    None => j.key("last_contact_ms").null_value(),
                };
                j.end_obj();
            }
            None => {
                j.key("repl").null_value();
            }
        }
        match &self.scrub {
            Some(s) => {
                j.key("scrub").begin_obj();
                j.key("runs").uint_value(s.runs);
                j.key("failures").uint_value(s.failures);
                j.key("last_lsn").uint_value(s.last_lsn);
                match &s.last_error {
                    Some(e) => j.key("last_error").str_value(e),
                    None => j.key("last_error").null_value(),
                };
                j.end_obj();
            }
            None => {
                j.key("scrub").null_value();
            }
        }
        j.key("read_only").bool_value(self.read_only);
        j.key("exec").begin_obj();
        j.key("executions_run").uint_value(self.executions_run);
        j.key("fetch_attempts").uint_value(self.exec_fetch_attempts);
        j.key("fetch_failures").uint_value(self.exec_fetch_failures);
        j.key("sources_failed").uint_value(self.exec_sources_failed);
        j.key("sources_degraded")
            .uint_value(self.exec_sources_degraded);
        j.end_obj();
        j.key("request_latency");
        self.request_hist.write_json(&mut j);
        j.key("solve_latency");
        self.solve_hist.write_json(&mut j);
        j.key("exec_latency");
        self.exec_hist.write_json(&mut j);
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_scale() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(2)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 1
        h.record(Duration::from_micros(1024)); // bucket 10
        h.record(Duration::from_secs(3600)); // clamped to last bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[10], 1);
        assert_eq!(h.counts[BUCKETS - 1], 1);
        assert_eq!(h.total, 6);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::default();
        assert_eq!(h.mean_micros(), 0.0);
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(30));
        assert!((h.mean_micros() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.record_request("GET /healthz", 200, Duration::from_micros(5));
        m.record_request("GET /healthz", 200, Duration::from_micros(7));
        m.record_request("POST /sessions", 422, Duration::from_micros(9));
        m.record_solve(Duration::from_millis(2), false);
        m.record_solve(Duration::from_millis(1), true);
        m.catalog_created();
        m.session_created();
        m.sessions_evicted(3);
        m.record_execution(9, 4, 2, 1, Duration::from_millis(1));
        m.record_shed();
        let s = m.snapshot(
            4,
            2,
            5,
            Some(JournalStats::default()),
            None,
            Some(ScrubStats::default()),
            false,
        );
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.requests_for("GET /healthz"), 2);
        assert_eq!(s.requests[&("POST /sessions".to_string(), 422)], 1);
        assert_eq!(s.solves_run, 2);
        assert_eq!(s.solves_timed_out, 1);
        assert_eq!(s.requests_shed, 1);
        assert_eq!(s.member_panics, 5);
        assert!(s.journal.is_some());
        assert!(s.scrub.is_some());
        assert!(!s.read_only);
        assert_eq!(s.sessions_evicted, 3);
        assert_eq!(s.sessions_live, 4);
        assert_eq!(s.worker_panics, 2);
        assert_eq!(s.executions_run, 1);
        assert_eq!(s.exec_fetch_attempts, 9);
        assert_eq!(s.exec_fetch_failures, 4);
        assert_eq!(s.exec_sources_failed, 2);
        assert_eq!(s.exec_sources_degraded, 1);
        assert_eq!(s.request_hist.total, 3);
        assert_eq!(s.solve_hist.total, 2);
        assert_eq!(s.exec_hist.total, 1);
    }

    #[test]
    fn stats_json_renders() {
        let m = Metrics::new();
        m.record_request("GET /metrics", 200, Duration::from_micros(3));
        m.record_execution(5, 1, 1, 0, Duration::from_micros(40));
        let json = m.snapshot(1, 0, 0, None, None, None, false).to_json();
        assert!(json.contains("\"endpoint\":\"GET /metrics\""), "{json}");
        assert!(json.contains("\"sessions_live\":1"), "{json}");
        assert!(json.contains("\"worker_panics\":0"), "{json}");
        assert!(json.contains("\"requests_shed\":0"), "{json}");
        assert!(json.contains("\"repl\":null"), "{json}");
        assert!(json.contains("\"scrub\":null"), "{json}");
        assert!(json.contains("\"read_only\":false"), "{json}");
        assert!(
            json.contains("\"exec\":{\"executions_run\":1,\"fetch_attempts\":5"),
            "{json}"
        );
        assert!(json.contains("\"exec_latency\""), "{json}");
        assert!(json.contains("\"buckets_micros_pow2\""), "{json}");
    }

    #[test]
    fn scrub_block_renders_status_and_fences_read_only() {
        let m = Metrics::new();
        let scrub = ScrubStats {
            runs: 7,
            failures: 1,
            last_lsn: 42,
            last_error: Some("snapshot.wal: CRC mismatch at byte 9".to_string()),
        };
        let json = m
            .snapshot(
                0,
                0,
                0,
                Some(JournalStats::default()),
                None,
                Some(scrub),
                true,
            )
            .to_json();
        assert!(
            json.contains("\"scrub\":{\"runs\":7,\"failures\":1,\"last_lsn\":42"),
            "{json}"
        );
        assert!(
            json.contains("\"last_error\":\"snapshot.wal: CRC mismatch"),
            "{json}"
        );
        assert!(json.contains("\"read_only\":true"), "{json}");
        assert!(json.contains("\"quarantine_files\":0"), "{json}");
    }
}

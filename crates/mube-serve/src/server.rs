//! The HTTP session server: configuration, routing, handlers, lifecycle.
//!
//! One acceptor thread hands connections to a [`WorkerPool`]; each worker
//! reads a request, routes it, and answers with JSON. Sessions live in the
//! [`Store`]; a solve locks its session's mutex for the duration, so
//! same-session requests serialize while different sessions run in
//! parallel across workers.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips the draining
//! flag (mutating endpoints start answering 503) and wakes the acceptor,
//! which stops accepting and drains the pool — every request already
//! accepted, including in-flight solves, completes before `run` returns.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mube_audit::Analyzer;
use mube_core::catalog;
use mube_core::constraints::Constraints;
use mube_core::explain;
use mube_core::jsonw::JsonBuf;
use mube_core::matchop::MatchOperator;
use mube_core::problem::Problem;
use mube_core::qefs::{data_only_qefs, paper_default_qefs};
use mube_core::session::Session;
use mube_core::source::Universe;
use mube_core::MubeError;
use mube_exec::{
    BreakerConfig, DataSourceBackend, Executor, FaultSpec, HealthRegistry, Query, RetryPolicy,
    SpanBackend, VirtualClock,
};
use mube_match::{ClusterMatcher, JaccardNGram, SimilarityCache};
use mube_opt::{
    CancelToken, ParticleSwarm, Portfolio, SimulatedAnnealing, StochasticLocalSearch, SubsetSolver,
    TabuSearch,
};

use crate::http::{self, HttpError, Request};
use crate::json::Json;
use crate::metrics::{Metrics, ServerStats};
use crate::persist::{Event, FsyncPolicy, Journal, SolutionRecord};
use crate::pool::WorkerPool;
use crate::repl::{self, FollowerState, ReplHub, ROLE_FOLLOWER, ROLE_LEADER};
use crate::store::{SessionEntry, Store, StoreError};

/// Server configuration. [`ServeConfig::default`] is suitable for tests
/// and local use (ephemeral port, 4 workers).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7207` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Request body cap in bytes; larger declared bodies get a 413.
    pub max_body_bytes: usize,
    /// Socket read timeout (a stalled client gets a 408).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Live-session cap; at the cap, idle sessions are evicted first and
    /// creation is refused (429) when nothing is idle.
    pub max_sessions: usize,
    /// Sessions untouched this long are eligible for eviction.
    pub idle_ttl: Duration,
    /// Per-solve budget, mapped onto the solver's objective-evaluation
    /// cutoff (tabu search honors it exactly; the other solvers keep
    /// their own default caps, which are of the same order).
    pub max_solve_evaluations: u64,
    /// Watchdog wall-clock ceiling per solve, in milliseconds. Every solve
    /// is deadline-bounded by this; a request's `time_budget_ms` can only
    /// shorten it. A cut-short solve still answers 200 with the best
    /// incumbent found, flagged `timed_out`.
    pub max_solve_millis: u64,
    /// Directory for the durable session journal; `None` keeps sessions
    /// in memory only (the pre-persistence behavior).
    pub data_dir: Option<String>,
    /// When journal appends reach stable storage (see
    /// [`FsyncPolicy`]). Ignored without `data_dir`.
    pub fsync: FsyncPolicy,
    /// Compact the journal into a snapshot every this many tail records.
    pub snapshot_every: u64,
    /// Run as a replication follower of this leader address (requires
    /// `data_dir`): apply its WAL stream, serve reads, refuse writes with
    /// a 409 + leader hint until promoted.
    pub follow: Option<String>,
    /// Serve the WAL replication stream to followers on this address
    /// (requires `data_dir`).
    pub repl_addr: Option<String>,
    /// Semi-sync replication: a mutating request is not acknowledged
    /// until a follower has durably applied its journal frame (or the
    /// response degrades to a 503 after `repl_sync_timeout`).
    pub repl_sync: bool,
    /// How long a semi-sync response waits for a follower ack.
    pub repl_sync_timeout: Duration,
    /// A follower self-promotes after the leader has been silent this
    /// long. Zero (the default) means promotion is manual-only
    /// (`POST /admin/promote`).
    pub promote_timeout: Duration,
    /// Leader heartbeat cadence on idle replication connections.
    pub heartbeat_interval: Duration,
    /// Admission control: when this many jobs are already waiting in the
    /// worker queue, new connections are shed with a 503 + `Retry-After`
    /// before they consume a worker. Zero disables shedding.
    pub queue_high_water: usize,
    /// Total wall-clock budget for reading one request (head + body). A
    /// slowloris trickling bytes cannot hold a worker past this.
    pub request_deadline: Duration,
    /// Background-scrub cadence: re-read the on-disk journal against the
    /// served state digest this often (requires `data_dir`). Zero
    /// disables the scrubber. A failed scrub fences the node read-only.
    pub scrub_interval: Duration,
    /// Quarantine retention: keep the newest this many
    /// `quarantine-N.wal` evidence files, prune the rest.
    pub quarantine_keep: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_sessions: 64,
            idle_ttl: Duration::from_secs(15 * 60),
            max_solve_evaluations: 20_000,
            max_solve_millis: 30_000,
            data_dir: None,
            fsync: FsyncPolicy::default(),
            snapshot_every: 256,
            follow: None,
            repl_addr: None,
            repl_sync: false,
            repl_sync_timeout: Duration::from_secs(5),
            promote_timeout: Duration::ZERO,
            heartbeat_interval: Duration::from_millis(500),
            queue_high_water: 128,
            request_deadline: Duration::from_secs(15),
            scrub_interval: Duration::from_secs(60),
            quarantine_keep: crate::persist::DEFAULT_QUARANTINE_KEEP,
        }
    }
}

/// Background-scrubber counters, updated by the scrub thread and read by
/// `/metrics` / `/healthz`.
#[derive(Debug, Default)]
pub(crate) struct ScrubState {
    /// Completed scrub passes.
    pub(crate) runs: AtomicU64,
    /// Passes that found corruption or a digest mismatch.
    pub(crate) failures: AtomicU64,
    /// LSN covered by the last completed pass.
    pub(crate) last_lsn: AtomicU64,
    /// What the last failed pass found (`None` while healthy).
    pub(crate) last_error: std::sync::Mutex<Option<String>>,
}

/// Shared state behind every worker: config, store, metrics, drain flag,
/// and — when replicated — the role byte and the replication endpoints.
pub(crate) struct ServerState {
    pub(crate) config: ServeConfig,
    pub(crate) store: Store,
    pub(crate) metrics: Metrics,
    pub(crate) draining: AtomicBool,
    /// The pool's panic counter (workers lost to job panics, respawned).
    pub(crate) worker_panics: Arc<AtomicU64>,
    /// The durable session journal, when `--data-dir` is configured.
    pub(crate) journal: Option<Journal>,
    /// This node's replication role (leader/follower/candidate).
    pub(crate) role: AtomicU8,
    /// Fan-out point for committed WAL frames, when `--repl-addr` is set.
    pub(crate) repl_hub: Option<Arc<ReplHub>>,
    /// Follower-side replication state, when `--follow` is set.
    pub(crate) follower: Option<Arc<FollowerState>>,
    /// The replication thread's handle, so `/admin/resync` can join the
    /// old incarnation before spawning a fresh one.
    pub(crate) follower_thread: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The bound replication listener address, when `--repl-addr` is set.
    pub(crate) repl_bound: Option<SocketAddr>,
    /// Background-scrubber status (meaningful only with a journal).
    pub(crate) scrub: ScrubState,
    /// Set by a failed scrub: the node stops accepting mutations (503)
    /// until an operator repairs the data dir or resyncs the replica.
    pub(crate) read_only: AtomicBool,
}

impl ServerState {
    fn stats(&self) -> ServerStats {
        let scrub = self.journal.as_ref().map(|_| crate::metrics::ScrubStats {
            runs: self.scrub.runs.load(Ordering::SeqCst),
            failures: self.scrub.failures.load(Ordering::SeqCst),
            last_lsn: self.scrub.last_lsn.load(Ordering::SeqCst),
            last_error: self
                .scrub
                .last_error
                .lock()
                .expect("scrub lock poisoned")
                .clone(),
        });
        self.metrics.snapshot(
            self.store.sessions_len() as u64,
            self.worker_panics.load(Ordering::SeqCst),
            mube_opt::member_panics_total(),
            self.journal.as_ref().map(Journal::stats),
            repl::repl_stats(self),
            scrub,
            self.read_only.load(Ordering::SeqCst),
        )
    }

    /// Appends to the journal if one is configured, publishing the
    /// committed frame to any connected followers. Append failures are
    /// logged, not fatal: the server keeps serving from memory (the same
    /// availability-over-durability stance as the quarantine path).
    fn journal_append(&self, event: Event) {
        if let Some(j) = &self.journal {
            match j.append_frame(event) {
                Ok((_, frame)) => {
                    if let Some(hub) = &self.repl_hub {
                        hub.publish(&frame);
                    }
                }
                Err(e) => eprintln!("mube-serve: journal append failed: {e}"),
            }
        }
    }

    /// Forces journaled events to disk — called before sessions become
    /// unreachable (deletion, eviction) so their final state survives a
    /// crash no matter the fsync policy.
    fn journal_flush(&self) {
        if let Some(j) = &self.journal {
            if let Err(e) = j.flush() {
                eprintln!("mube-serve: journal flush failed: {e}");
            }
        }
    }
}

/// A bound server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
}

/// A cloneable handle for observing and stopping a running server.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and spawns the worker pool. With a `data_dir`,
    /// opens the journal and replays the persisted sessions before serving
    /// (corrupt journal tails are quarantined, never fatal).
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        if (config.follow.is_some() || config.repl_addr.is_some()) && config.data_dir.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication (--follow / --repl-addr) requires --data-dir",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let repl_listener = match &config.repl_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let repl_bound = match &repl_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let pool = WorkerPool::new(config.threads);
        let store = Store::new(config.max_sessions, config.idle_ttl);
        let journal = match &config.data_dir {
            Some(dir) => {
                let (journal, events, report) = Journal::open_with(
                    Path::new(dir),
                    config.fsync,
                    config.snapshot_every,
                    config.quarantine_keep,
                )?;
                if let Some(why) = &report.corruption {
                    eprintln!(
                        "mube-serve: journal corruption in {dir} ({why}); quarantined {} bytes{}",
                        report.quarantined_bytes,
                        report
                            .quarantine_file
                            .as_ref()
                            .map(|p| format!(" to {}", p.display()))
                            .unwrap_or_default()
                    );
                }
                let summary = replay_events(&store, config.max_solve_evaluations, events);
                eprintln!(
                    "mube-serve: replayed {} catalogs, {} sessions, {} feedbacks, {} solves \
                     ({} deletes, {} skipped) from {dir}",
                    summary.catalogs,
                    summary.sessions,
                    summary.feedbacks,
                    summary.solves,
                    summary.deletes,
                    summary.skipped
                );
                Some(journal)
            }
            None => None,
        };
        let follower = config.follow.clone().map(|leader| {
            // A data dir quarantined by a past digest failure stays
            // quarantined across restarts until the operator removes the
            // marker: promotion from it must keep being refused.
            let diverged = config
                .data_dir
                .as_ref()
                .is_some_and(|d| Path::new(d).join(repl::DIVERGED_MARKER).exists());
            if diverged {
                eprintln!(
                    "mube-serve: data dir carries a divergence marker ({}); \
                     this follower will not be promotable",
                    repl::DIVERGED_MARKER
                );
            }
            let f = FollowerState::new(leader, diverged);
            // A restarted follower resumes from its replayed journal: the
            // hello re-requests from here, not from zero.
            f.applied.store(
                journal.as_ref().map_or(0, Journal::last_lsn),
                Ordering::SeqCst,
            );
            Arc::new(f)
        });
        let role = if follower.is_some() {
            ROLE_FOLLOWER
        } else {
            ROLE_LEADER
        };
        let state = Arc::new(ServerState {
            store,
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            worker_panics: pool.panic_counter(),
            journal,
            role: AtomicU8::new(role),
            repl_hub: repl_listener.as_ref().map(|_| Arc::new(ReplHub::new())),
            follower,
            follower_thread: std::sync::Mutex::new(None),
            repl_bound,
            scrub: ScrubState::default(),
            read_only: AtomicBool::new(false),
            config,
        });
        if let Some(repl_listener) = repl_listener {
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mube-repl-acceptor".to_string())
                .spawn(move || repl::run_leader_acceptor(repl_listener, st))?;
        }
        if state.follower.is_some() {
            let st = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name("mube-repl-follower".to_string())
                .spawn(move || repl::run_follower(st))?;
            *state
                .follower_thread
                .lock()
                .expect("follower thread lock poisoned") = Some(handle);
        }
        if state.journal.is_some() && !state.config.scrub_interval.is_zero() {
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mube-scrubber".to_string())
                .spawn(move || run_scrubber(&st))?;
        }
        Ok(Server {
            listener,
            state,
            pool,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound replication address, when `--repl-addr` is configured.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.state.repl_bound
    }

    /// A handle for stats and shutdown, usable from other threads.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            state: Arc::clone(&self.state),
        })
    }

    /// Binds and runs on a background thread; returns the handle and the
    /// join handle of the acceptor thread.
    pub fn spawn(
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(config)?;
        let handle = server.handle()?;
        let join = std::thread::Builder::new()
            .name("mube-serve-acceptor".to_string())
            .spawn(move || server.run())?;
        Ok((handle, join))
    }

    /// Accepts connections until [`ServerHandle::shutdown`], then drains
    /// the worker pool (in-flight and queued requests complete) and
    /// returns.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.state.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = conn else {
                // Transient accept error (e.g. the peer vanished between
                // accept and here); keep serving.
                continue;
            };
            // Admission control: past the queue high-water mark, shed the
            // connection here — a canned 503 written on the acceptor — so
            // overload never grows the queue without bound. The short
            // write timeout keeps a dead peer from stalling accepts.
            let high_water = self.state.config.queue_high_water;
            if high_water > 0 && self.pool.queued() >= high_water {
                self.state.metrics.record_shed();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let body = error_body("overloaded", "worker queue is full", |_| {});
                let _ = http::write_response_with(
                    &mut stream,
                    503,
                    &[("retry-after", RETRY_AFTER_SECS)],
                    &body,
                );
                self.state
                    .metrics
                    .record_request("SHED", 503, Duration::ZERO);
                continue;
            }
            let state = Arc::clone(&self.state);
            if !self.pool.execute(move || handle_connection(stream, &state)) {
                break;
            }
        }
        drop(self.listener);
        self.pool.shutdown();
        // All workers are done; make their final appends durable.
        self.state.journal_flush();
        // Graceful drain ships the final frame batch: wake the replication
        // writers (they flush their queues, then send a last heartbeat)
        // and wait — bounded — for a follower to ack the journal's tip.
        if let (Some(hub), Some(journal)) = (&self.state.repl_hub, &self.state.journal) {
            hub.wake_all();
            if hub.live_followers() > 0 {
                let _ = hub.wait_acked(journal.last_lsn(), Duration::from_secs(5));
            }
        }
        Ok(())
    }
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// A consistent counters snapshot (what `GET /metrics` serves).
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Starts a graceful shutdown: new mutating requests get 503, the
    /// acceptor stops, and queued work drains. Returns immediately; join
    /// the thread running [`Server::run`] to wait for the drain.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        // Wake the acceptor so it observes the flag even with no traffic.
        let _ = TcpStream::connect(self.addr);
        // Wake the replication acceptor the same way.
        if let Some(addr) = self.state.repl_bound {
            let _ = TcpStream::connect(addr);
        }
    }

    /// The bound replication address, when `--repl-addr` is configured.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.state.repl_bound
    }

    /// This node's current replication role (`leader`, `follower`, or
    /// `candidate`).
    pub fn role(&self) -> &'static str {
        repl::role_str(self.state.role.load(Ordering::SeqCst))
    }
}

// ---------------------------------------------------------------------
// Background scrubbing
// ---------------------------------------------------------------------

/// The background scrub loop: every `scrub_interval`, re-read the
/// on-disk snapshot + journal tail and compare their replay digest to
/// the digest of the state being served. A mismatch (or on-disk
/// corruption) fences the node read-only — serving stale-but-correct
/// reads beats accepting writes on top of state that can no longer be
/// made durable truthfully.
fn run_scrubber(state: &ServerState) {
    let interval = state.config.scrub_interval;
    loop {
        // Sleep in short slices so a drain stops the scrubber promptly.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if state.draining.load(Ordering::SeqCst) {
                return;
            }
            let slice = Duration::from_millis(50).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        let Some(journal) = &state.journal else {
            return;
        };
        state.scrub.runs.fetch_add(1, Ordering::SeqCst);
        match journal.scrub() {
            Ok(report) => {
                state
                    .scrub
                    .last_lsn
                    .store(report.last_lsn, Ordering::SeqCst);
                if report.ok {
                    *state.scrub.last_error.lock().expect("scrub lock poisoned") = None;
                } else {
                    let why = report.corruption.clone().unwrap_or_else(|| {
                        format!(
                            "state digest mismatch at lsn {}: memory {:#018x}, disk {:#018x}",
                            report.last_lsn, report.memory_digest, report.disk_digest
                        )
                    });
                    state.scrub.failures.fetch_add(1, Ordering::SeqCst);
                    *state.scrub.last_error.lock().expect("scrub lock poisoned") =
                        Some(why.clone());
                    if !state.read_only.swap(true, Ordering::SeqCst) {
                        eprintln!(
                            "mube-serve: SCRUB FAILURE: {why}; node is now read-only \
                             (stop it and run `mube fsck --repair` on the data dir)"
                        );
                    }
                }
            }
            Err(e) => {
                // An I/O error reading our own files is recorded but does
                // not fence the node: the served state is not implicated.
                state.scrub.failures.fetch_add(1, Ordering::SeqCst);
                *state.scrub.last_error.lock().expect("scrub lock poisoned") =
                    Some(format!("scrub I/O error: {e}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection handling and routing
// ---------------------------------------------------------------------

/// `Retry-After` value (seconds) sent with 429/503 back-pressure
/// responses.
const RETRY_AFTER_SECS: &str = "1";

/// A read adapter that bounds the *total* time spent reading one request.
///
/// Per-read socket timeouts alone do not stop a slowloris: a client
/// trickling one byte per interval resets the timer forever. Each read
/// through this wrapper re-arms the socket timeout to the smaller of the
/// per-read timeout and the remaining request budget, so the whole
/// head+body read is over within `request_deadline` no matter the drip
/// rate.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    per_read: Duration,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        self.stream
            .set_read_timeout(Some(remaining.min(self.per_read)))?;
        (&mut &*self.stream).read(buf)
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let start = Instant::now();
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let result = {
        let mut reader = DeadlineStream {
            stream: &stream,
            deadline: start + state.config.request_deadline,
            per_read: state.config.read_timeout,
        };
        http::read_request(&mut reader, state.config.max_body_bytes)
    };
    let mut stream = stream;
    match result {
        Ok(req) => {
            let label = endpoint_label(&req.method, &req.path);
            let (status, body) = route(state, &req);
            // Back-pressure responses tell the client when to come back:
            // 429 means a session slot may free up, 503 means the process
            // is draining and a fresh instance should be up shortly.
            let extra: &[(&str, &str)] = match status {
                429 | 503 => &[("retry-after", RETRY_AFTER_SECS)],
                _ => &[],
            };
            let _ = http::write_response_with(&mut stream, status, extra, &body);
            state
                .metrics
                .record_request(&label, status, start.elapsed());
        }
        // The shutdown wake-up and port scans land here; nothing to say.
        Err(HttpError::EmptyConnection) => {}
        Err(e) => {
            let (status, code) = match &e {
                HttpError::HeadTooLarge => (431, "headers_too_large"),
                HttpError::BodyTooLarge { .. } => (413, "payload_too_large"),
                HttpError::Io(_) => (408, "timeout"),
                _ => (400, "bad_request"),
            };
            let body = error_body(code, &e.to_string(), |_| {});
            let _ = http::write_response(&mut stream, status, &body);
            state
                .metrics
                .record_request("MALFORMED", status, start.elapsed());
        }
    }
}

/// Normalizes a request to a bounded-cardinality metrics label, e.g.
/// `POST /sessions/{id}/solve`.
fn endpoint_label(method: &str, path: &str) -> String {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let norm = match segs.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["catalogs"] => "/catalogs",
        ["sessions"] => "/sessions",
        ["sessions", _] => "/sessions/{id}",
        ["sessions", _, "solve"] => "/sessions/{id}/solve",
        ["sessions", _, "execute"] => "/sessions/{id}/execute",
        ["sessions", _, "feedback"] => "/sessions/{id}/feedback",
        ["sessions", _, "explain"] => "/sessions/{id}/explain",
        ["sessions", _, "lint"] => "/sessions/{id}/lint",
        ["admin", "promote"] => "/admin/promote",
        ["admin", "resync"] => "/admin/resync",
        _ => "/unknown",
    };
    format!("{method} {norm}")
}

/// A handler failure already rendered as a response.
struct ApiError {
    status: u16,
    body: String,
}

impl ApiError {
    fn new(status: u16, code: &str, message: &str) -> ApiError {
        ApiError {
            status,
            body: error_body(code, message, |_| {}),
        }
    }
}

impl From<MubeError> for ApiError {
    fn from(e: MubeError) -> Self {
        let (status, code) = engine_code(&e);
        ApiError::new(status, code, &e.to_string())
    }
}

/// `{"error":{"code":...,"message":...,<extra>}}`; `extra` appends
/// additional members to the error object.
fn error_body(code: &str, message: &str, extra: impl FnOnce(&mut JsonBuf)) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("error").begin_obj();
    j.key("code").str_value(code);
    j.key("message").str_value(message);
    extra(&mut j);
    j.end_obj();
    j.end_obj();
    j.finish()
}

/// Stable status + code for every engine error.
fn engine_code(e: &MubeError) -> (u16, &'static str) {
    match e {
        MubeError::StaleGaIndex { .. } => (409, "stale_ga_index"),
        MubeError::UnknownAttribute { .. } => (422, "unknown_name"),
        MubeError::UnknownSource { .. } => (422, "unknown_source"),
        MubeError::UnknownQef { .. } => (422, "unknown_qef"),
        MubeError::InvalidWeights { .. } => (422, "invalid_weights"),
        MubeError::InvalidParameter { .. } => (422, "invalid_parameter"),
        MubeError::ConstraintConflict { .. } => (422, "constraint_conflict"),
        _ => (422, "engine_error"),
    }
}

/// On a constraint conflict, asks the analyzer which `MUBE0xx` findings
/// explain it, so the response carries the same codes `mube lint` would.
fn conflict_error(e: &MubeError, universe: &Universe, constraints: &Constraints) -> ApiError {
    let (status, code) = engine_code(e);
    if !matches!(e, MubeError::ConstraintConflict { .. }) {
        return ApiError::new(status, code, &e.to_string());
    }
    let measure = JaccardNGram::trigram();
    let report = Analyzer::new(universe)
        .constraints(constraints)
        .similarity(&measure)
        .run();
    let codes: Vec<String> = report.errors().map(|d| d.code.to_string()).collect();
    ApiError {
        status,
        body: error_body(code, &e.to_string(), |j| {
            j.key("lint").begin_arr();
            for c in &codes {
                j.str_value(c);
            }
            j.end_arr();
        }),
    }
}

fn route(state: &Arc<ServerState>, req: &Request) -> (u16, String) {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let draining = state.draining.load(Ordering::SeqCst);
    if draining && req.method != "GET" {
        return (
            503,
            error_body("draining", "server is shutting down", |_| {}),
        );
    }
    // A failed scrub fences the node: reads keep flowing (memory state is
    // still self-consistent), mutations are refused because they could no
    // longer be made durable truthfully. Admin endpoints stay reachable —
    // they are the way out.
    if state.read_only.load(Ordering::SeqCst)
        && req.method != "GET"
        && segs.first() != Some(&"admin")
    {
        return (
            503,
            error_body(
                "read_only",
                "a scrub found disk disagreeing with served state; this node \
                 is fenced read-only until repaired",
                |_| {},
            ),
        );
    }
    // Followers (and candidates mid-promotion) are read-only replicas:
    // anything mutating is refused with a hint at who the leader is, so
    // clients behind a naive load balancer can redirect themselves.
    let role = state.role.load(Ordering::SeqCst);
    if role != ROLE_LEADER
        && req.method != "GET"
        && !matches!(segs.as_slice(), ["admin", "promote" | "resync"])
    {
        let leader = state.config.follow.clone();
        return (
            409,
            error_body("not_leader", "this node is a read-only replica", |j| {
                j.key("role").str_value(repl::role_str(role));
                match &leader {
                    Some(addr) => j.key("leader").str_value(addr),
                    None => j.key("leader").null_value(),
                };
            }),
        );
    }
    let result = match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(state, draining)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("POST", ["catalogs"]) => create_catalog(state, req),
        ("POST", ["sessions"]) => create_session(state, req),
        ("POST", ["sessions", id, "solve"]) => with_session(state, id, |e| solve(state, e, req)),
        ("POST", ["sessions", id, "execute"]) => {
            with_session(state, id, |e| execute_session(state, e, req))
        }
        ("POST", ["sessions", id, "feedback"]) => {
            with_session(state, id, |e| feedback(state, e, req))
        }
        ("GET", ["sessions", id, "explain"]) => with_session(state, id, explain_session),
        ("GET", ["sessions", id, "lint"]) => with_session(state, id, lint_session),
        ("DELETE", ["sessions", id]) => delete_session(state, id),
        ("POST", ["admin", "promote"]) => admin_promote(state),
        ("POST", ["admin", "resync"]) => admin_resync(state),
        (
            _,
            ["healthz"]
            | ["metrics"]
            | ["catalogs"]
            | ["sessions"]
            | ["sessions", _]
            | ["sessions", _, "solve" | "execute" | "feedback" | "explain" | "lint"]
            | ["admin", "promote" | "resync"],
        ) => Err(ApiError::new(
            405,
            "method_not_allowed",
            &format!("{} is not supported on {}", req.method, req.path),
        )),
        _ => Err(ApiError::new(
            404,
            "not_found",
            &format!("no route for {}", req.path),
        )),
    };
    let (status, body) = match result {
        Ok(ok) => ok,
        Err(e) => (e.status, e.body),
    };
    // Semi-sync replication: a mutating request only succeeds once a
    // follower has durably applied its journal event. On timeout the
    // write is still locally durable, but the client learns replication
    // lagged instead of being handed an unreplicated success.
    if state.config.repl_sync && req.method != "GET" && (200..300).contains(&status) {
        if let (Some(hub), Some(journal)) = (&state.repl_hub, &state.journal) {
            if !hub.wait_acked(journal.last_lsn(), state.config.repl_sync_timeout) {
                return (
                    503,
                    error_body(
                        "replication_timeout",
                        "write is locally durable but no follower acked in time",
                        |_| {},
                    ),
                );
            }
        }
    }
    (status, body)
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    if req.body.is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    let text = req
        .body_utf8()
        .map_err(|e| ApiError::new(400, "bad_request", &e.to_string()))?;
    Json::parse(text).map_err(|e| ApiError::new(400, "bad_json", &e.to_string()))
}

fn with_session(
    state: &ServerState,
    id: &str,
    f: impl FnOnce(&Arc<SessionEntry>) -> Result<(u16, String), ApiError>,
) -> Result<(u16, String), ApiError> {
    let entry = id
        .parse::<u64>()
        .ok()
        .and_then(|id| state.store.session(id))
        .ok_or_else(|| ApiError::new(404, "unknown_session", &format!("no session `{id}`")))?;
    entry.touch();
    f(&entry)
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

fn healthz(state: &ServerState, draining: bool) -> (u16, String) {
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("status").str_value("ok");
    j.key("draining").bool_value(draining);
    j.key("sessions")
        .uint_value(state.store.sessions_len() as u64);
    j.key("role")
        .str_value(repl::role_str(state.role.load(Ordering::SeqCst)));
    j.key("read_only")
        .bool_value(state.read_only.load(Ordering::SeqCst));
    if let Some(journal) = &state.journal {
        let (lsn, digest) = journal.state_digest();
        j.key("lsn").uint_value(lsn);
        j.key("digest").str_value(&format!("{digest:016x}"));
        j.key("quarantine_files")
            .uint_value(journal.stats().quarantine_files);
        let failures = state.scrub.failures.load(Ordering::SeqCst);
        j.key("scrub").begin_obj();
        j.key("runs")
            .uint_value(state.scrub.runs.load(Ordering::SeqCst));
        j.key("failures").uint_value(failures);
        j.key("last_lsn")
            .uint_value(state.scrub.last_lsn.load(Ordering::SeqCst));
        j.key("ok").bool_value(
            state
                .scrub
                .last_error
                .lock()
                .expect("scrub lock poisoned")
                .is_none(),
        );
        j.end_obj();
    }
    if let Some(follower) = &state.follower {
        j.key("follower").begin_obj();
        j.key("leader").str_value(&follower.leader);
        j.key("applied")
            .uint_value(follower.applied.load(Ordering::SeqCst));
        j.key("diverged")
            .bool_value(follower.diverged.load(Ordering::SeqCst));
        j.end_obj();
    }
    j.end_obj();
    (200, j.finish())
}

/// `POST /admin/promote`: checked failover. Refuses when this node is
/// already the leader or has been quarantined by a digest mismatch;
/// otherwise stops following, flips the role, and reports the state
/// digest the operator can compare against the old leader's replay.
fn admin_promote(state: &ServerState) -> Result<(u16, String), ApiError> {
    match repl::promote(state) {
        Ok((lsn, digest)) => {
            let verified = state
                .follower
                .as_ref()
                .map_or(0, |f| f.verified.load(Ordering::SeqCst));
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("promoted").bool_value(true);
            j.key("role").str_value("leader");
            j.key("lsn").uint_value(lsn);
            j.key("digest").str_value(&format!("{digest:016x}"));
            j.key("verified_lsn").uint_value(verified);
            j.end_obj();
            Ok((200, j.finish()))
        }
        Err("diverged") => Err(ApiError::new(
            409,
            "diverged",
            "follower state diverged from the leader and is quarantined; \
             refusing to promote",
        )),
        Err(_) => Err(ApiError::new(
            409,
            "already_leader",
            "this node is already the leader",
        )),
    }
}

/// `POST /admin/resync`: anti-entropy repair for a quarantined (or
/// merely suspect) follower. Archives the local journal for forensics,
/// wipes the replica's state, clears the divergence marker, and rejoins
/// the leader from LSN 0 — the full history streams back through the
/// normal frame machinery, after which the digest rounds prove the copy
/// and promotion eligibility is restored.
fn admin_resync(state: &Arc<ServerState>) -> Result<(u16, String), ApiError> {
    match repl::resync(state) {
        Ok(outcome) => {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("resync").bool_value(true);
            j.key("role").str_value("follower");
            j.key("was_diverged").bool_value(outcome.was_diverged);
            j.key("archived").begin_arr();
            for p in &outcome.archived {
                j.str_value(&p.display().to_string());
            }
            j.end_arr();
            j.end_obj();
            Ok((200, j.finish()))
        }
        Err(repl::ResyncError::NotFollower) => Err(ApiError::new(
            409,
            "not_follower",
            "resync only applies to a replica (--follow); this node is a leader",
        )),
        Err(repl::ResyncError::Io(e)) => Err(ApiError::new(
            500,
            "resync_failed",
            &format!("resync aborted: {e}"),
        )),
    }
}

fn metrics(state: &ServerState) -> (u16, String) {
    (200, state.stats().to_json())
}

fn create_catalog(state: &ServerState, req: &Request) -> Result<(u16, String), ApiError> {
    let body = parse_body(req)?;
    let text = body
        .get("catalog")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "bad_request", "missing string field `catalog`"))?;
    let universe = Arc::new(catalog::from_text(text)?);
    let cache = Arc::new(SimilarityCache::build(&universe, &JaccardNGram::trigram()));
    let distinct = cache.distinct_names();
    let id = state.store.insert_catalog(Arc::clone(&universe), cache);
    state.metrics.catalog_created();
    state.journal_append(Event::CatalogCreate {
        id,
        text: text.to_string(),
    });
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("catalog").uint_value(id);
    j.key("sources").uint_value(universe.len() as u64);
    j.key("attributes")
        .uint_value(universe.total_attrs() as u64);
    j.key("distinct_names").uint_value(distinct as u64);
    j.end_obj();
    Ok((201, j.finish()))
}

fn make_solver(name: &str, max_evaluations: u64) -> Box<dyn SubsetSolver> {
    match name {
        "sls" => Box::new(StochasticLocalSearch::default()),
        "annealing" => Box::new(SimulatedAnnealing::default()),
        "pso" => Box::new(ParticleSwarm::default()),
        _ => Box::new(TabuSearch {
            max_evaluations,
            ..TabuSearch::default()
        }),
    }
}

/// Upper bounds on the compute one `POST /sessions` may reserve. Exceeding
/// any of them is a 422 `invalid_parameter` carrying lint code `MUBE015`
/// (see PROTOCOL.md).
const MAX_THREADS: usize = 64;
/// Cap on `restarts`.
const MAX_RESTARTS: usize = 64;
/// Cap on total portfolio members (`|portfolio| × restarts`).
const MAX_PORTFOLIO_MEMBERS: usize = 256;

/// 422 for a parameter that exceeds a server resource bound, tagged with
/// the stable `MUBE015` lint code.
fn bound_error(field: &str, value: usize, max: usize) -> ApiError {
    ApiError {
        status: 422,
        body: error_body(
            "invalid_parameter",
            &format!("`{field}` = {value} exceeds the server bound of {max}"),
            |j| {
                j.key("lint").begin_arr();
                j.str_value(mube_core::DiagCode::ResourceBoundExceeded.code());
                j.end_arr();
            },
        ),
    }
}

/// Everything `POST /sessions` builds before touching the store.
struct BuiltSession {
    catalog_id: u64,
    session: Session,
    solver_name: String,
    seed: u64,
    pruned: Option<PruneStats>,
}

/// What the optional `prune` block did, echoed in the 201 response.
struct PruneStats {
    /// Sources in the uploaded catalog.
    catalog_sources: usize,
    /// Survivors of the relevance stage.
    survivors: usize,
    /// LSH near-duplicate clusters over the survivors.
    clusters: usize,
    /// Sources in the session's working universe after (optional) dedup.
    kept: usize,
}

/// Applies the `prune: {…}` block: one relevance pass keeps the `top_k`
/// best-scoring sources (pinned names are always kept), then MinHash/LSH
/// blocking groups near-duplicates; with `"dedup": true` only each
/// cluster's best-scoring member (plus pinned members) survives. Returns
/// the reduced universe the session's problem is built over.
fn prune_universe(
    universe: &Universe,
    spec: &Json,
    pins: Option<&Json>,
) -> Result<(Universe, PruneStats), ApiError> {
    use mube_scale::{block, top_k, LshConfig, RelevanceQuery, ScoringTable, UniverseStream};

    if spec.as_object().is_none() {
        return Err(ApiError::new(
            400,
            "bad_request",
            "`prune` must be an object",
        ));
    }
    let k = match spec.get("top_k") {
        Some(v) => v.as_usize().filter(|&n| n >= 1).ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                "`prune.top_k` must be a positive integer",
            )
        })?,
        None => 1_500,
    };
    let keywords = match spec.get("keywords") {
        Some(v) => {
            let arr = v.as_array().ok_or_else(|| {
                ApiError::new(400, "bad_request", "`prune.keywords` must be an array")
            })?;
            let mut out = Vec::new();
            for w in arr {
                out.push(
                    w.as_str()
                        .ok_or_else(|| {
                            ApiError::new(
                                400,
                                "bad_request",
                                "`prune.keywords` entries must be strings",
                            )
                        })?
                        .to_string(),
                );
            }
            out
        }
        None => Vec::new(),
    };
    let dedup = match spec.get("dedup") {
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ApiError::new(400, "bad_request", "`prune.dedup` must be a boolean"))?,
        None => false,
    };
    // Pinned names are force-kept; unknown names surface as 422s when the
    // pins resolve against the pruned universe below.
    let pin_names: Vec<String> = pins
        .and_then(Json::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|p| p.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();

    let stream = UniverseStream::new(universe);
    let query = RelevanceQuery {
        keywords,
        prefer_characteristics: vec!["mttf".to_string()],
    };
    let survivors = top_k(&stream, &query, &ScoringTable::default(), k, &pin_names);
    let scores: Vec<f64> = survivors.iter().map(|s| s.score).collect();
    let records: Vec<mube_scale::SourceRecord> = survivors.into_iter().map(|s| s.record).collect();
    let blocks = block(&records, &LshConfig::default());

    let kept: Vec<usize> = if dedup {
        let mut kept = Vec::new();
        for members in &blocks.clusters {
            let mut best = members[0];
            for &m in members {
                if scores[m] > scores[best] {
                    best = m;
                }
            }
            kept.push(best);
            for &m in members {
                if m != best && pin_names.iter().any(|n| *n == records[m].name) {
                    kept.push(m);
                }
            }
        }
        kept.sort_unstable();
        kept
    } else {
        (0..records.len()).collect()
    };

    let stats = PruneStats {
        catalog_sources: universe.len(),
        survivors: records.len(),
        clusters: blocks.clusters.len(),
        kept: kept.len(),
    };
    let mut builder = Universe::builder();
    for &p in &kept {
        builder.add_source(records[p].clone().into_spec());
    }
    let pruned = builder.build().map_err(|e| {
        ApiError::new(
            422,
            "invalid_parameter",
            &format!("pruning left no usable catalog: {e}"),
        )
    })?;
    Ok((pruned, stats))
}

/// Parses and validates a session-creation body into a ready [`Session`].
/// Shared verbatim by the HTTP handler and journal replay, so a replayed
/// session passes through exactly the validation its original request did.
fn build_session_from_body(
    store: &Store,
    max_solve_evaluations: u64,
    body: &Json,
) -> Result<BuiltSession, ApiError> {
    let catalog_id = body
        .get("catalog")
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::new(400, "bad_request", "missing integer field `catalog`"))?;
    let entry = store.catalog(catalog_id).ok_or_else(|| {
        ApiError::new(
            404,
            "unknown_catalog",
            &format!("no catalog `{catalog_id}`"),
        )
    })?;
    let universe = Arc::clone(&entry.universe);

    // Optional pruning front end (see PROTOCOL.md `prune`): reduce the
    // catalog to a relevant, deduplicated candidate set before the problem
    // is built. Runs inside this shared builder, so journal replay
    // re-prunes deterministically from the recorded request body.
    let mut pruned_stats: Option<PruneStats> = None;
    let universe = match body.get("prune") {
        Some(spec) => {
            let (pruned, stats) = prune_universe(&universe, spec, body.get("pins"))?;
            pruned_stats = Some(stats);
            Arc::new(pruned)
        }
        None => universe,
    };

    let max_sources = match body.get("max_sources") {
        Some(v) => v.as_usize().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                "`max_sources` must be a non-negative integer",
            )
        })?,
        None => universe.len(),
    };
    let mut constraints = Constraints::with_max_sources(max_sources);
    if let Some(v) = body.get("theta") {
        constraints =
            constraints
                .theta(v.as_f64().ok_or_else(|| {
                    ApiError::new(400, "bad_request", "`theta` must be a number")
                })?);
    }
    if let Some(v) = body.get("beta") {
        constraints = constraints.beta(v.as_usize().ok_or_else(|| {
            ApiError::new(400, "bad_request", "`beta` must be a non-negative integer")
        })?);
    }
    if let Some(pins) = body.get("pins") {
        let pins = pins
            .as_array()
            .ok_or_else(|| ApiError::new(400, "bad_request", "`pins` must be an array"))?;
        for pin in pins {
            let name = pin.as_str().ok_or_else(|| {
                ApiError::new(400, "bad_request", "`pins` entries must be source names")
            })?;
            let id = universe
                .source_by_name(name)
                .map(mube_core::Source::id)
                .ok_or_else(|| ApiError::new(422, "unknown_name", &format!("source `{name}`")))?;
            constraints.required_sources.insert(id);
        }
    }

    let has_mttf = universe
        .sources()
        .any(|s| s.characteristic("mttf").is_some());
    let mut qefs = if has_mttf {
        paper_default_qefs("mttf")
    } else {
        data_only_qefs()
    };
    if let Some(weights) = body.get("weights") {
        let members = weights
            .as_object()
            .ok_or_else(|| ApiError::new(400, "bad_request", "`weights` must be an object"))?;
        for (name, value) in members {
            let w = value.as_f64().ok_or_else(|| {
                ApiError::new(
                    400,
                    "bad_request",
                    &format!("weight `{name}` must be a number"),
                )
            })?;
            qefs = qefs.reweighted(name, w)?;
        }
    }

    // The catalog entry's similarity cache was interned over the *full*
    // universe; a pruned session gets a fresh matcher over its own subset.
    let matcher: Arc<dyn MatchOperator> = if pruned_stats.is_some() {
        Arc::new(ClusterMatcher::new(
            Arc::clone(&universe),
            JaccardNGram::trigram(),
        ))
    } else {
        Arc::new(ClusterMatcher::with_cache(
            &universe,
            Arc::clone(&entry.cache),
        ))
    };
    let problem = Problem::new(Arc::clone(&universe), matcher, qefs, constraints.clone())
        .map_err(|e| conflict_error(&e, &universe, &constraints))?;

    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let solver_name = body
        .get("solver")
        .and_then(Json::as_str)
        .unwrap_or("tabu")
        .to_string();

    // Portfolio mode: `portfolio` names the members; `threads` alone (or
    // `restarts` > 1) engages the default spec so thread-count comparisons
    // exercise the same code path.
    let threads = match body.get("threads") {
        Some(v) => {
            let n = v.as_usize().filter(|&n| n >= 1).ok_or_else(|| {
                ApiError::new(400, "bad_request", "`threads` must be a positive integer")
            })?;
            if n > MAX_THREADS {
                return Err(bound_error("threads", n, MAX_THREADS));
            }
            Some(n)
        }
        None => None,
    };
    let restarts = match body.get("restarts") {
        Some(v) => v.as_usize().filter(|&n| n >= 1).ok_or_else(|| {
            ApiError::new(400, "bad_request", "`restarts` must be a positive integer")
        })?,
        None => 1,
    };
    if restarts > MAX_RESTARTS {
        return Err(bound_error("restarts", restarts, MAX_RESTARTS));
    }
    let mut portfolio_spec = match body.get("portfolio") {
        Some(v) => {
            let spec = v.as_str().ok_or_else(|| {
                ApiError::new(400, "bad_request", "`portfolio` must be a spec string")
            })?;
            Some(spec.to_string())
        }
        None => None,
    };
    if portfolio_spec.is_none() && (threads.is_some() || restarts > 1) {
        portfolio_spec = Some("tabu,sls,anneal,pso".to_string());
    }
    let (solver, solver_name): (Box<dyn SubsetSolver>, String) = match portfolio_spec {
        Some(spec) => {
            // Members carry the server's per-solve evaluation cap, same as
            // single-solver sessions, so portfolio solves stay bounded.
            let names = mube_opt::parse_portfolio_spec(&spec)
                .map_err(|e| ApiError::new(422, "invalid_parameter", &e))?;
            let total_members = names.len() * restarts;
            if total_members > MAX_PORTFOLIO_MEMBERS {
                return Err(bound_error(
                    "portfolio members (|portfolio| × restarts)",
                    total_members,
                    MAX_PORTFOLIO_MEMBERS,
                ));
            }
            let mut members: Vec<Box<dyn SubsetSolver>> = Vec::new();
            for _ in 0..restarts {
                for name in &names {
                    members.push(
                        mube_opt::budgeted_member(name, max_solve_evaluations)
                            .expect("spec names are canonical"),
                    );
                }
            }
            let pf = Portfolio::new(members).threads(threads.unwrap_or(1));
            let label = pf.name().to_string();
            (Box::new(pf), label)
        }
        None => (
            make_solver(&solver_name, max_solve_evaluations),
            solver_name,
        ),
    };
    let mut session = Session::new(problem, solver, seed);
    if body.get("continuity").and_then(Json::as_bool) == Some(true) {
        session = session.with_continuity();
    }
    Ok(BuiltSession {
        catalog_id,
        session,
        solver_name,
        seed,
        pruned: pruned_stats,
    })
}

fn create_session(state: &ServerState, req: &Request) -> Result<(u16, String), ApiError> {
    let body = parse_body(req)?;
    let built = build_session_from_body(&state.store, state.config.max_solve_evaluations, &body)?;
    let catalog_id = built.catalog_id;

    // Make room: sweep idle sessions first, then let the insert evict
    // more if the cap still binds.
    let swept = state.store.sweep_idle();
    let (id, evicted) = state
        .store
        .insert_session(catalog_id, built.session)
        .map_err(|e| match e {
            StoreError::UnknownCatalog => ApiError::new(
                404,
                "unknown_catalog",
                &format!("no catalog `{catalog_id}`"),
            ),
            StoreError::TooManySessions { limit } => ApiError::new(
                429,
                "too_many_sessions",
                &format!("{limit} sessions are live and none is idle"),
            ),
        })?;
    state.metrics.session_created();
    let evicted_total = (swept.len() + evicted.len()) as u64;
    state.metrics.sessions_evicted(evicted_total);

    // Journal the creation (raw body, so replay re-runs this handler's
    // exact validation) and the evictions it caused; flush so the evicted
    // sessions' final state is durable before they become unreachable.
    state.journal_append(Event::SessionCreate {
        id,
        catalog_id,
        body: req.body_utf8().unwrap_or("{}").to_string(),
    });
    for &session in swept.iter().chain(evicted.iter()) {
        state.journal_append(Event::SessionDelete { session });
    }
    if evicted_total > 0 {
        state.journal_flush();
    }

    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("session").uint_value(id);
    j.key("catalog").uint_value(catalog_id);
    j.key("seed").uint_value(built.seed);
    j.key("solver").str_value(&built.solver_name);
    j.key("evicted").uint_value(evicted_total);
    if let Some(p) = &built.pruned {
        j.key("pruned").begin_obj();
        j.key("catalog_sources")
            .uint_value(p.catalog_sources as u64);
        j.key("survivors").uint_value(p.survivors as u64);
        j.key("clusters").uint_value(p.clusters as u64);
        j.key("kept").uint_value(p.kept as u64);
        j.end_obj();
    }
    j.end_obj();
    Ok((201, j.finish()))
}

fn source_name(universe: &Universe, id: mube_core::SourceId) -> String {
    universe
        .get(id)
        .map_or_else(|| id.to_string(), |s| s.name().to_string())
}

fn solve(
    state: &ServerState,
    entry: &Arc<SessionEntry>,
    req: &Request,
) -> Result<(u16, String), ApiError> {
    let body = parse_body(req)?;
    let requested = match body.get("time_budget_ms") {
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                "`time_budget_ms` must be a non-negative integer",
            )
        })?),
        None => None,
    };
    // The watchdog is always armed: every solve is bounded by the server's
    // `max_solve_millis`; a request budget can only shorten the deadline.
    let budget_ms = requested
        .unwrap_or(state.config.max_solve_millis)
        .min(state.config.max_solve_millis);
    let cancel = CancelToken::after(Duration::from_millis(budget_ms));

    let mut session = entry.session.lock().expect("session lock poisoned");
    let t0 = Instant::now();
    let result = session.run_cancel(&cancel);
    let elapsed = t0.elapsed();
    if let Err(e) = result {
        let constraints = session.constraints().clone();
        return Err(conflict_error(&e, session.universe(), &constraints));
    }
    let latest = session.latest().expect("run succeeded");
    let timed_out = latest.timed_out;
    state.metrics.record_solve(elapsed, timed_out);
    state.journal_append(Event::Solve {
        session: entry.id,
        solution: SolutionRecord::from_solution(latest),
    });
    let universe = session.universe();
    let solution_json = session.latest().expect("run succeeded").to_json(universe);
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("session").uint_value(entry.id);
    j.key("iteration").uint_value(session.iterations() as u64);
    j.key("timed_out").bool_value(timed_out);
    j.key("solution").raw_value(&solution_json);
    match session.last_diff() {
        Some(diff) => {
            j.key("diff").begin_obj();
            j.key("sources_added").begin_arr();
            for &id in &diff.sources_added {
                j.str_value(&source_name(universe, id));
            }
            j.end_arr();
            j.key("sources_removed").begin_arr();
            for &id in &diff.sources_removed {
                j.str_value(&source_name(universe, id));
            }
            j.end_arr();
            j.key("gas_changed").uint_value(diff.gas_changed as u64);
            j.end_obj();
        }
        None => {
            j.key("diff").null_value();
        }
    }
    j.end_obj();
    Ok((200, j.finish()))
}

/// `POST /sessions/{id}/execute`: runs the session's latest solution as a
/// simulated query execution over a span backend, optionally injecting
/// faults (`"faults"`: a spec like `rate=0.3` or `auto`, `"fault_seed"`,
/// `"query"`: `{"start","end"}`). Returns the executor's degradation
/// report plus the health registry's per-source view, and folds the
/// attempt/failure tallies into `/metrics`.
fn execute_session(
    state: &ServerState,
    entry: &Arc<SessionEntry>,
    req: &Request,
) -> Result<(u16, String), ApiError> {
    let body = parse_body(req)?;
    let (lo, hi) = match body.get("query") {
        None => (0, u64::MAX),
        Some(q) => {
            let lo = q.get("start").and_then(Json::as_u64).unwrap_or(0);
            let hi = q.get("end").and_then(Json::as_u64).unwrap_or(u64::MAX);
            if lo > hi {
                return Err(ApiError::new(
                    400,
                    "bad_request",
                    "`query.start` must not exceed `query.end`",
                ));
            }
            (lo, hi)
        }
    };
    let fault_seed = body.get("fault_seed").and_then(Json::as_u64).unwrap_or(1);
    let spec = match body.get("faults") {
        None => None,
        Some(v) => {
            let text = v.as_str().ok_or_else(|| {
                ApiError::new(400, "bad_request", "`faults` must be a spec string")
            })?;
            Some(FaultSpec::parse(text).map_err(|e| ApiError::new(422, "invalid_parameter", &e))?)
        }
    };

    let session = entry.session.lock().expect("session lock poisoned");
    let solution = session
        .latest()
        .ok_or_else(|| ApiError::new(409, "no_solution", "no iteration has run in this session"))?;
    let universe = Arc::clone(session.problem().universe());

    let backend: Box<dyn DataSourceBackend> = match &spec {
        None => Box::new(SpanBackend::from_universe(&universe)),
        Some(spec) => Box::new(mube_exec::FaultInjector::new(
            SpanBackend::from_universe(&universe),
            &universe,
            spec,
            fault_seed,
        )),
    };
    let clock: Arc<dyn mube_exec::Clock> = Arc::new(VirtualClock::default());
    let registry = Arc::new(HealthRegistry::new(
        BreakerConfig::default(),
        Arc::clone(&clock),
    ));
    let executor = Executor::new(Arc::clone(&universe), backend)
        .with_policy(RetryPolicy::default().with_jitter_seed(fault_seed))
        .with_registry(Arc::clone(&registry))
        .with_clock(clock);

    let t0 = Instant::now();
    let report = executor.execute(&solution.sources, &Query::range(lo, hi));
    let elapsed = t0.elapsed();
    let totals = registry.totals();
    state.metrics.record_execution(
        totals.attempts,
        totals.failures,
        report.degradation.failed.len() as u64,
        report.degradation.degraded.len() as u64,
        elapsed,
    );

    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("session").uint_value(entry.id);
    j.key("iteration").uint_value(session.iterations() as u64);
    j.key("report").raw_value(&report.to_json(&universe));
    j.key("health").begin_obj();
    j.key("attempts").uint_value(totals.attempts);
    j.key("successes").uint_value(totals.successes);
    j.key("failures").uint_value(totals.failures);
    j.key("tripped").uint_value(totals.tripped);
    j.key("sources").begin_arr();
    for s in registry.snapshots() {
        j.begin_obj();
        j.key("source").str_value(&source_name(&universe, s.source));
        j.key("attempts").uint_value(s.attempts);
        j.key("availability").num_value(s.availability);
        j.key("state").str_value(s.state.as_str());
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.end_obj();
    Ok((200, j.finish()))
}

/// Applies one feedback action; the error carries the failing action's
/// engine error so the caller can report its index.
fn apply_action(session: &mut Session, action: &Json) -> Result<(), ApiError> {
    let op = action
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "bad_request", "action missing string field `op`"))?;
    let need_str = |field: &str| {
        action.get(field).and_then(Json::as_str).ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                &format!("`{op}` action needs string field `{field}`"),
            )
        })
    };
    let need_f64 = |field: &str| {
        action.get(field).and_then(Json::as_f64).ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                &format!("`{op}` action needs numeric field `{field}`"),
            )
        })
    };
    let need_usize = |field: &str| {
        action.get(field).and_then(Json::as_usize).ok_or_else(|| {
            ApiError::new(
                400,
                "bad_request",
                &format!("`{op}` action needs non-negative integer field `{field}`"),
            )
        })
    };
    match op {
        "pin" => session.pin_source_by_name(need_str("source")?)?,
        "unpin" => session.unpin_source_by_name(need_str("source")?)?,
        "adopt_ga" => session.adopt_ga(need_usize("index")?)?,
        "require_ga" => {
            let attrs = action
                .get("attrs")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    ApiError::new(400, "bad_request", "`require_ga` needs array field `attrs`")
                })?;
            let mut pairs = Vec::with_capacity(attrs.len());
            for a in attrs {
                let source = a.get("source").and_then(Json::as_str);
                let attr = a.get("attr").and_then(Json::as_str);
                match (source, attr) {
                    (Some(s), Some(at)) => pairs.push((s, at)),
                    _ => {
                        return Err(ApiError::new(
                            400,
                            "bad_request",
                            "`attrs` entries need string fields `source` and `attr`",
                        ))
                    }
                }
            }
            session.require_ga_by_names(&pairs)?;
        }
        "clear_gas" => session.clear_ga_constraints()?,
        "weight" => session.set_weight(need_str("qef")?, need_f64("value")?)?,
        "theta" => session.set_theta(need_f64("value")?)?,
        "beta" => session.set_beta(need_usize("value")?)?,
        "max_sources" => session.set_max_sources(need_usize("value")?)?,
        other => {
            return Err(ApiError::new(
                400,
                "bad_request",
                &format!("unknown feedback op `{other}`"),
            ))
        }
    }
    Ok(())
}

fn feedback(
    state: &ServerState,
    entry: &Arc<SessionEntry>,
    req: &Request,
) -> Result<(u16, String), ApiError> {
    let body = parse_body(req)?;
    let actions = body
        .get("actions")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::new(400, "bad_request", "missing array field `actions`"))?;
    let mut session = entry.session.lock().expect("session lock poisoned");
    for (i, action) in actions.iter().enumerate() {
        // Attach the failing index: actions apply in order, so the caller
        // knows everything before `i` took effect.
        apply_action(&mut session, action).map_err(|e| ApiError {
            status: e.status,
            body: {
                // Re-wrap the already-rendered error with the index. The
                // body is a flat error object; splice `"action":i` in by
                // re-rendering from its parsed form.
                match Json::parse(&e.body) {
                    Ok(v) => {
                        let code = v
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Json::as_str)
                            .unwrap_or("engine_error")
                            .to_string();
                        let message = v
                            .get("error")
                            .and_then(|e| e.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string();
                        error_body(&code, &message, |j| {
                            j.key("action").uint_value(i as u64);
                        })
                    }
                    Err(_) => e.body,
                }
            },
        })?;
    }
    // Journal only after every action applied: replay applies the whole
    // batch the same way, so a half-failed batch is never persisted.
    state.journal_append(Event::Feedback {
        session: entry.id,
        body: req.body_utf8().unwrap_or("{}").to_string(),
    });
    let constraints = session.constraints();
    let universe = session.universe();
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("applied").uint_value(actions.len() as u64);
    j.key("constraints").begin_obj();
    j.key("max_sources")
        .uint_value(constraints.max_sources as u64);
    j.key("theta").num_value(constraints.theta);
    j.key("beta").uint_value(constraints.beta as u64);
    j.key("pinned").begin_arr();
    for &id in &constraints.required_sources {
        j.str_value(&source_name(universe, id));
    }
    j.end_arr();
    j.key("required_gas")
        .uint_value(constraints.required_gas.len() as u64);
    j.end_obj();
    j.end_obj();
    Ok((200, j.finish()))
}

fn explain_session(entry: &Arc<SessionEntry>) -> Result<(u16, String), ApiError> {
    let session = entry.session.lock().expect("session lock poisoned");
    let solution = session
        .latest()
        .ok_or_else(|| ApiError::new(409, "no_solution", "no iteration has run in this session"))?;
    let explanation = explain::explain(session.problem(), solution);
    let universe = session.universe();
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("session").uint_value(entry.id);
    j.key("iteration").uint_value(session.iterations() as u64);
    j.key("contributions").begin_arr();
    for c in &explanation.contributions {
        j.begin_obj();
        j.key("source").str_value(&source_name(universe, c.source));
        j.key("removal_infeasible").bool_value(c.removal_infeasible);
        // `num_value` renders the +∞ of a required source as null.
        j.key("quality_delta").num_value(c.quality_delta);
        j.key("qefs").begin_arr();
        for (name, delta) in &c.qef_deltas {
            j.begin_obj();
            j.key("name").str_value(name);
            j.key("delta").num_value(*delta);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    Ok((200, j.finish()))
}

fn lint_session(entry: &Arc<SessionEntry>) -> Result<(u16, String), ApiError> {
    let session = entry.session.lock().expect("session lock poisoned");
    let universe = session.universe();
    let measure = JaccardNGram::trigram();
    let report = Analyzer::new(universe)
        .constraints(session.constraints())
        .similarity(&measure)
        .run();
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("session").uint_value(entry.id);
    j.key("clean").bool_value(report.is_clean());
    j.key("errors").bool_value(report.has_errors());
    j.key("diagnostics").raw_value(&report.to_json(universe));
    j.end_obj();
    Ok((200, j.finish()))
}

fn delete_session(state: &ServerState, id: &str) -> Result<(u16, String), ApiError> {
    let parsed = id.parse::<u64>().ok();
    let removed = parsed.is_some_and(|id| state.store.remove_session(id));
    if !removed {
        return Err(ApiError::new(
            404,
            "unknown_session",
            &format!("no session `{id}`"),
        ));
    }
    state.journal_append(Event::SessionDelete {
        session: parsed.expect("removed implies parsed"),
    });
    state.journal_flush();
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("deleted").bool_value(true);
    j.end_obj();
    Ok((200, j.finish()))
}

// ---------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------

/// What boot-time replay rebuilt, for the startup log line.
#[derive(Debug, Default)]
struct ReplaySummary {
    catalogs: u64,
    sessions: u64,
    feedbacks: u64,
    solves: u64,
    deletes: u64,
    /// Events that failed to apply (logged and skipped; a skipped event
    /// never aborts the boot).
    skipped: u64,
}

/// Rebuilds the store from journaled events, in LSN order. Individual
/// failures are logged and skipped — recovering most sessions beats
/// refusing to start.
fn replay_events(store: &Store, max_solve_evaluations: u64, events: Vec<Event>) -> ReplaySummary {
    let mut summary = ReplaySummary::default();
    for event in events {
        let counter = match &event {
            Event::CatalogCreate { .. } => &mut summary.catalogs,
            Event::SessionCreate { .. } => &mut summary.sessions,
            Event::Feedback { .. } => &mut summary.feedbacks,
            Event::Solve { .. } => &mut summary.solves,
            Event::SessionDelete { .. } => &mut summary.deletes,
        };
        match replay_event(store, max_solve_evaluations, event) {
            Ok(()) => *counter += 1,
            Err(why) => {
                eprintln!("mube-serve: replay skipped an event: {why}");
                summary.skipped += 1;
            }
        }
    }
    summary
}

pub(crate) fn replay_event(
    store: &Store,
    max_solve_evaluations: u64,
    event: Event,
) -> Result<(), String> {
    match event {
        Event::CatalogCreate { id, text } => {
            let universe =
                Arc::new(catalog::from_text(&text).map_err(|e| format!("catalog {id}: {e}"))?);
            let cache = Arc::new(SimilarityCache::build(&universe, &JaccardNGram::trigram()));
            store.insert_catalog_with_id(id, universe, cache);
        }
        Event::SessionCreate { id, body, .. } => {
            let json = Json::parse(&body).map_err(|e| format!("session {id}: {e}"))?;
            let built = build_session_from_body(store, max_solve_evaluations, &json)
                .map_err(|e| format!("session {id}: {}", e.body))?;
            store
                .insert_session_with_id(id, built.catalog_id, built.session)
                .map_err(|_| format!("session {id}: catalog {} missing", built.catalog_id))?;
        }
        Event::Feedback { session, body } => {
            let entry = store
                .session(session)
                .ok_or_else(|| format!("feedback for missing session {session}"))?;
            let json = Json::parse(&body).map_err(|e| format!("session {session}: {e}"))?;
            let actions = json
                .get("actions")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("session {session}: feedback without actions"))?;
            let mut s = entry.session.lock().expect("session lock poisoned");
            for action in actions {
                apply_action(&mut s, action)
                    .map_err(|e| format!("session {session}: {}", e.body))?;
            }
        }
        Event::Solve { session, solution } => {
            let entry = store
                .session(session)
                .ok_or_else(|| format!("solve for missing session {session}"))?;
            let sol = solution
                .into_solution()
                .map_err(|e| format!("session {session}: {e}"))?;
            entry
                .session
                .lock()
                .expect("session lock poisoned")
                .restore_solution(sol)
                .map_err(|e| format!("session {session}: {e}"))?;
        }
        Event::SessionDelete { session } => {
            store.remove_session(session);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("GET", "/healthz"), "GET /healthz");
        assert_eq!(
            endpoint_label("POST", "/sessions/42/solve"),
            "POST /sessions/{id}/solve"
        );
        assert_eq!(
            endpoint_label("DELETE", "/sessions/7"),
            "DELETE /sessions/{id}"
        );
        assert_eq!(
            endpoint_label("POST", "/admin/resync"),
            "POST /admin/resync"
        );
        assert_eq!(endpoint_label("GET", "/x/y/z/w"), "GET /unknown");
    }

    #[test]
    fn error_body_shape() {
        let body = error_body("bad_json", "oops \"quoted\"", |j| {
            j.key("action").uint_value(3);
        });
        let v = Json::parse(&body).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("bad_json"));
        assert_eq!(
            e.get("message").and_then(Json::as_str),
            Some("oops \"quoted\"")
        );
        assert_eq!(e.get("action").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn engine_codes_are_stable() {
        assert_eq!(
            engine_code(&MubeError::StaleGaIndex {
                index: 3,
                available: 1
            }),
            (409, "stale_ga_index")
        );
        assert_eq!(
            engine_code(&MubeError::ConstraintConflict { detail: "x".into() }),
            (422, "constraint_conflict")
        );
        assert_eq!(
            engine_code(&MubeError::UnknownQef { name: "x".into() }),
            (422, "unknown_qef")
        );
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.threads >= 1);
        assert!(c.max_body_bytes >= 64 * 1024);
        assert!(c.max_sessions >= 1);
    }
}

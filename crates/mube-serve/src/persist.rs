//! Durable session journal: a crash-safe write-ahead log for the [`Store`].
//!
//! `µBE`'s value is the *iterative* feedback loop — a session accumulates
//! user guidance (pins, adopted GAs, reweights) over many solve rounds, and
//! losing it to a process crash throws that work away. This module journals
//! every state-changing session event to an append-only, CRC32-checksummed,
//! length-prefixed WAL, periodically compacted into a snapshot, so a server
//! restarted with the same `--data-dir` replays its sessions byte-
//! identically.
//!
//! ## On-disk format
//!
//! Two files live in the data directory:
//!
//! * `journal.wal` — the append-only tail. Each record is a frame:
//!
//!   ```text
//!   [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//!   payload = [lsn: u64 LE] [tag: u8] [body]
//!   ```
//!
//!   `crc` is IEEE CRC-32 over the payload. `lsn` is a monotonically
//!   increasing log sequence number shared by both files.
//!
//! * `snapshot.wal` — a compacted prefix of the log. Its first record is a
//!   snapshot header (`tag 0`) carrying `through_lsn`; the rest are the
//!   *live* events (deleted sessions dropped) with their original LSNs.
//!   Snapshots are written to a temp file, fsynced, and atomically renamed,
//!   so a crash never leaves a half snapshot. After a snapshot lands, the
//!   tail is truncated; a crash *between* those two steps is benign because
//!   boot skips tail records with `lsn <= through_lsn`.
//!
//! Torn or bit-flipped tail records are **quarantined, not fatal**: the
//! corrupt suffix is copied to `quarantine-N.wal`, the tail is truncated to
//! the last good record, and the server boots with everything up to that
//! point. Durability of the suffix depends on the [`FsyncPolicy`].
//!
//! Solve events record the *resulting solution* (bit-exact f64s), not the
//! solve parameters: a deadline-cut solve is not reproducible from its seed,
//! but installing the recorded incumbent keeps the session history — and
//! therefore every future seed derivation and warm start — byte-identical.

use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mube_core::{AttrId, GlobalAttribute, MediatedSchema, Solution, SourceId};

/// Records larger than this are treated as corruption (a torn length
/// prefix would otherwise ask for gigabytes).
pub(crate) const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Snapshot-header record tag (never appears in [`Event`]).
pub(crate) const TAG_SNAPSHOT: u8 = 0;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `data` (the classic zlib/`cksum -o 3` polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "record truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn bool(&mut self) -> DecodeResult<bool> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 in record: {e}"))
    }
    fn done(&self) -> DecodeResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after record body",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A bit-exact, self-contained record of one solve's outcome: everything
/// needed to rebuild the [`Solution`] on replay without re-running the
/// solver (floats are stored as raw bit patterns so replay is byte-
/// identical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionRecord {
    /// Selected source ids.
    pub sources: Vec<u32>,
    /// `Q(S)` as `f64::to_bits`.
    pub quality_bits: u64,
    /// Objective evaluations spent.
    pub evaluations: u64,
    /// Whether the solve was deadline-cut.
    pub timed_out: bool,
    /// Per-QEF `(name, weight bits, score bits)`.
    pub qef_scores: Vec<(String, u64, u64)>,
    /// Mediated schema: one inner vec per GA, each attr as
    /// `(source id, attr index)`.
    pub schema: Vec<Vec<(u32, u32)>>,
}

impl SolutionRecord {
    /// Captures a solution for journaling.
    pub fn from_solution(sol: &Solution) -> Self {
        SolutionRecord {
            sources: sol.sources.iter().map(|s| s.0).collect(),
            quality_bits: sol.quality.to_bits(),
            evaluations: sol.evaluations,
            timed_out: sol.timed_out,
            qef_scores: sol
                .qef_scores
                .iter()
                .map(|(n, w, s)| (n.clone(), w.to_bits(), s.to_bits()))
                .collect(),
            schema: sol
                .schema
                .gas()
                .iter()
                .map(|ga| ga.attrs().iter().map(|a| (a.source.0, a.index)).collect())
                .collect(),
        }
    }

    /// Rebuilds the solution. Fails only on a structurally invalid record
    /// (e.g. an empty GA), which indicates corruption that slipped past the
    /// CRC or a foreign writer.
    pub fn into_solution(self) -> Result<Solution, String> {
        let sources: BTreeSet<SourceId> = self.sources.iter().map(|&s| SourceId(s)).collect();
        let mut gas = Vec::with_capacity(self.schema.len());
        for attrs in &self.schema {
            let ga = GlobalAttribute::try_new(
                attrs
                    .iter()
                    .map(|&(s, i)| AttrId::new(SourceId(s), i))
                    .collect::<Vec<_>>(),
            )
            .map_err(|e| format!("invalid GA in solve record: {e}"))?;
            gas.push(ga);
        }
        Ok(Solution {
            sources,
            schema: MediatedSchema::new(gas),
            quality: f64::from_bits(self.quality_bits),
            qef_scores: self
                .qef_scores
                .into_iter()
                .map(|(n, w, s)| (n, f64::from_bits(w), f64::from_bits(s)))
                .collect(),
            evaluations: self.evaluations,
            timed_out: self.timed_out,
        })
    }
}

/// One journaled state change. Everything the boot-time replay needs to
/// rebuild the `Store` is in here; requests are stored as their raw JSON
/// bodies so replay reuses the exact handler validation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A catalog upload (`POST /catalogs`), with the full catalog text.
    CatalogCreate {
        /// Assigned catalog id.
        id: u64,
        /// The raw catalog text as uploaded.
        text: String,
    },
    /// A session creation (`POST /sessions`), with the raw request body.
    SessionCreate {
        /// Assigned session id.
        id: u64,
        /// The owning catalog.
        catalog_id: u64,
        /// The raw JSON request body.
        body: String,
    },
    /// A feedback batch (`POST /sessions/{id}/feedback`), raw request body.
    Feedback {
        /// The session the feedback applied to.
        session: u64,
        /// The raw JSON request body.
        body: String,
    },
    /// A completed solve and its exact outcome.
    Solve {
        /// The session that solved.
        session: u64,
        /// The resulting solution, bit-exact.
        solution: SolutionRecord,
    },
    /// A session deletion (explicit `DELETE` or idle eviction).
    SessionDelete {
        /// The deleted session.
        session: u64,
    },
}

impl Event {
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Event::CatalogCreate { .. } => 1,
            Event::SessionCreate { .. } => 2,
            Event::Feedback { .. } => 3,
            Event::Solve { .. } => 4,
            Event::SessionDelete { .. } => 5,
        }
    }

    fn encode_body(&self, e: &mut Enc) {
        match self {
            Event::CatalogCreate { id, text } => {
                e.u64(*id);
                e.str(text);
            }
            Event::SessionCreate {
                id,
                catalog_id,
                body,
            } => {
                e.u64(*id);
                e.u64(*catalog_id);
                e.str(body);
            }
            Event::Feedback { session, body } => {
                e.u64(*session);
                e.str(body);
            }
            Event::Solve { session, solution } => {
                e.u64(*session);
                e.u32(solution.sources.len() as u32);
                for &s in &solution.sources {
                    e.u32(s);
                }
                e.u64(solution.quality_bits);
                e.u64(solution.evaluations);
                e.bool(solution.timed_out);
                e.u32(solution.qef_scores.len() as u32);
                for (name, w, s) in &solution.qef_scores {
                    e.str(name);
                    e.u64(*w);
                    e.u64(*s);
                }
                e.u32(solution.schema.len() as u32);
                for ga in &solution.schema {
                    e.u32(ga.len() as u32);
                    for &(src, idx) in ga {
                        e.u32(src);
                        e.u32(idx);
                    }
                }
            }
            Event::SessionDelete { session } => {
                e.u64(*session);
            }
        }
    }

    pub fn decode_frame_payload(payload: &[u8]) -> Result<(u64, Event), String> {
        if payload.len() < 9 {
            return Err(format!("payload too short: {} bytes", payload.len()));
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let event = Event::decode_body(payload[8], &mut Dec::new(&payload[9..]))?;
        Ok((lsn, event))
    }

    fn decode_body(tag: u8, d: &mut Dec<'_>) -> DecodeResult<Event> {
        let event = match tag {
            1 => Event::CatalogCreate {
                id: d.u64()?,
                text: d.str()?,
            },
            2 => Event::SessionCreate {
                id: d.u64()?,
                catalog_id: d.u64()?,
                body: d.str()?,
            },
            3 => Event::Feedback {
                session: d.u64()?,
                body: d.str()?,
            },
            4 => {
                let session = d.u64()?;
                let n_sources = d.u32()? as usize;
                let mut sources = Vec::with_capacity(n_sources.min(65_536));
                for _ in 0..n_sources {
                    sources.push(d.u32()?);
                }
                let quality_bits = d.u64()?;
                let evaluations = d.u64()?;
                let timed_out = d.bool()?;
                let n_qefs = d.u32()? as usize;
                let mut qef_scores = Vec::with_capacity(n_qefs.min(65_536));
                for _ in 0..n_qefs {
                    qef_scores.push((d.str()?, d.u64()?, d.u64()?));
                }
                let n_gas = d.u32()? as usize;
                let mut schema = Vec::with_capacity(n_gas.min(65_536));
                for _ in 0..n_gas {
                    let n_attrs = d.u32()? as usize;
                    let mut ga = Vec::with_capacity(n_attrs.min(65_536));
                    for _ in 0..n_attrs {
                        ga.push((d.u32()?, d.u32()?));
                    }
                    schema.push(ga);
                }
                Event::Solve {
                    session,
                    solution: SolutionRecord {
                        sources,
                        quality_bits,
                        evaluations,
                        timed_out,
                        qef_scores,
                        schema,
                    },
                }
            }
            5 => Event::SessionDelete { session: d.u64()? },
            other => return Err(format!("unknown record tag {other}")),
        };
        d.done()?;
        Ok(event)
    }

    /// The session this event belongs to, if session-scoped.
    pub(crate) fn session_id(&self) -> Option<u64> {
        match self {
            Event::CatalogCreate { .. } => None,
            Event::SessionCreate { id, .. } => Some(*id),
            Event::Feedback { session, .. }
            | Event::Solve { session, .. }
            | Event::SessionDelete { session } => Some(*session),
        }
    }
}

/// Encodes one frame: `[len][crc][lsn][tag][body]`.
pub(crate) fn encode_frame(lsn: u64, tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

pub fn encode_event_frame(lsn: u64, event: &Event) -> Vec<u8> {
    let mut enc = Enc::new();
    event.encode_body(&mut enc);
    encode_frame(lsn, event.tag(), &enc.buf)
}

pub(crate) fn encode_snapshot_header(through_lsn: u64) -> Vec<u8> {
    encode_frame(
        through_lsn.wrapping_add(1),
        TAG_SNAPSHOT,
        &through_lsn.to_le_bytes(),
    )
}

// ---------------------------------------------------------------------------
// File scanning
// ---------------------------------------------------------------------------

/// One decoded record.
pub(crate) enum Record {
    Snapshot { through_lsn: u64 },
    Event { lsn: u64, event: Event },
}

/// Result of scanning a WAL file up to the first corruption.
pub(crate) struct Scan {
    pub(crate) records: Vec<Record>,
    /// Byte offset of the first corrupt record (== file length when clean).
    pub(crate) good_len: u64,
    /// Total file length.
    pub(crate) file_len: u64,
    /// Human-readable description of the corruption, if any.
    pub(crate) corruption: Option<String>,
}

/// Scans a WAL file, stopping at the first torn or corrupt record.
pub(crate) fn scan_wal(path: &Path) -> std::io::Result<Scan> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Scan {
                records: Vec::new(),
                good_len: 0,
                file_len: 0,
                corruption: None,
            })
        }
        Err(e) => return Err(e),
    };
    Ok(scan_bytes(&data))
}

/// [`scan_wal`] over an in-memory image — shared with `mube fsck`, which
/// holds the raw bytes anyway (it quarantines and salvages suffixes).
pub(crate) fn scan_bytes(data: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut corruption = None;
    while pos < data.len() {
        if pos + 8 > data.len() {
            corruption = Some("torn frame header".into());
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if !(9..=MAX_RECORD_BYTES).contains(&len) {
            corruption = Some(format!("implausible record length {len}"));
            break;
        }
        let body_end = pos + 8 + len as usize;
        if body_end > data.len() {
            corruption = Some("torn record body".into());
            break;
        }
        let payload = &data[pos + 8..body_end];
        if crc32(payload) != crc {
            corruption = Some("CRC mismatch".into());
            break;
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let tag = payload[8];
        let body = &payload[9..];
        if tag == TAG_SNAPSHOT {
            let mut d = Dec::new(body);
            match d.u64().and_then(|v| d.done().map(|()| v)) {
                Ok(through_lsn) => records.push(Record::Snapshot { through_lsn }),
                Err(e) => {
                    corruption = Some(format!("bad snapshot header: {e}"));
                    break;
                }
            }
        } else {
            match Event::decode_body(tag, &mut Dec::new(body)) {
                Ok(event) => records.push(Record::Event { lsn, event }),
                Err(e) => {
                    corruption = Some(format!("undecodable record: {e}"));
                    break;
                }
            }
        }
        pos = body_end;
    }
    Scan {
        records,
        good_len: pos as u64,
        file_len: data.len() as u64,
        corruption,
    }
}

// ---------------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------------

/// When journal appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: no acknowledged event is ever lost, at a
    /// per-request latency cost.
    Always,
    /// `fsync` at most once per interval (plus on eviction, deletion, and
    /// shutdown). A crash loses at most the last interval's events.
    Interval(Duration),
    /// Never `fsync` explicitly; the OS flushes when it pleases. Fastest,
    /// weakest.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(100))
    }
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval`, or `interval:<ms>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::default()),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("invalid fsync interval `{ms}` (expected milliseconds)")),
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected always, interval[:ms], or never)"
                )),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// What boot-time recovery found in the data directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Events restored from the snapshot.
    pub snapshot_events: u64,
    /// Events restored from the journal tail.
    pub tail_events: u64,
    /// Bytes of corrupt suffix moved to a quarantine file (0 = clean).
    pub quarantined_bytes: u64,
    /// Path of the quarantine file, when corruption was found.
    pub quarantine_file: Option<PathBuf>,
    /// Description of the corruption, when found.
    pub corruption: Option<String>,
}

/// Counters exposed through `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Events appended since boot.
    pub appends: u64,
    /// Snapshots written since boot.
    pub snapshots: u64,
    /// Events currently live (after compaction).
    pub live_events: u64,
    /// Bytes quarantined at boot.
    pub quarantined_bytes: u64,
    /// `quarantine-N.wal` files currently on disk (after retention).
    pub quarantine_files: u64,
}

/// Default retention for `quarantine-N.wal` evidence files (newest kept).
pub const DEFAULT_QUARANTINE_KEEP: u64 = 8;

/// One background-scrub pass over the on-disk files, compared against the
/// in-memory journal mirror. `ok` is the only field the caller must act
/// on: `false` means the disk no longer replays to the state being served.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// LSN of the in-memory journal at scrub time.
    pub last_lsn: u64,
    /// Digest of the in-memory live event stream.
    pub memory_digest: u64,
    /// Digest of the live event stream re-read from disk.
    pub disk_digest: u64,
    /// First corruption found re-reading the files, if any.
    pub corruption: Option<String>,
    /// Whether the disk matches the served state.
    pub ok: bool,
}

struct JournalInner {
    tail: File,
    policy: FsyncPolicy,
    last_sync: Instant,
    next_lsn: u64,
    /// In-memory mirror of every live event (snapshot + tail), in LSN
    /// order. Kept under the same lock as the tail file so compaction
    /// never needs any other lock — handlers append and move on.
    live: Vec<(u64, Event)>,
    tail_records: u64,
    snapshot_every: u64,
    appends: u64,
    snapshots: u64,
    quarantined_bytes: u64,
    /// `through_lsn` of the most recent compaction that actually *dropped*
    /// events. A replication follower whose ack is behind this horizon can
    /// no longer be caught up frame-by-frame (the dropped frames are gone)
    /// and must full-resync instead.
    last_drop_through: u64,
}

/// The durable session journal. One per server; `append` is safe from any
/// handler thread.
pub struct Journal {
    dir: PathBuf,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Opens (or creates) the journal in `dir`, replaying the snapshot and
    /// tail. Returns the journal, the live events in LSN order (for the
    /// caller to rebuild its store from), and a recovery report. Corrupt
    /// tail suffixes are quarantined, never fatal.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot_every: u64,
    ) -> std::io::Result<(Journal, Vec<Event>, RecoveryReport)> {
        Journal::open_with(dir, policy, snapshot_every, DEFAULT_QUARANTINE_KEEP)
    }

    /// [`Journal::open`] with an explicit quarantine retention cap (keep
    /// the newest `quarantine_keep` evidence files, prune the rest).
    pub fn open_with(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot_every: u64,
        quarantine_keep: u64,
    ) -> std::io::Result<(Journal, Vec<Event>, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let mut report = RecoveryReport::default();

        // Snapshot: atomically written, so corruption here is unexpected —
        // but tolerated the same way (good prefix wins).
        let snap_scan = scan_wal(&dir.join("snapshot.wal"))?;
        let mut through_lsn = 0u64;
        let mut live: Vec<(u64, Event)> = Vec::new();
        for rec in snap_scan.records {
            match rec {
                Record::Snapshot { through_lsn: t } => through_lsn = t,
                Record::Event { lsn, event } => {
                    report.snapshot_events += 1;
                    live.push((lsn, event));
                }
            }
        }
        if let Some(why) = &snap_scan.corruption {
            report.corruption = Some(format!("snapshot: {why}"));
        }

        // Tail: skip records already covered by the snapshot (the crash
        // window between snapshot rename and tail truncation), quarantine
        // anything after the first corrupt byte.
        let tail_path = dir.join("journal.wal");
        let tail_scan = scan_wal(&tail_path)?;
        let mut tail_records = 0u64;
        for rec in tail_scan.records {
            if let Record::Event { lsn, event } = rec {
                if lsn <= through_lsn {
                    continue;
                }
                report.tail_events += 1;
                tail_records += 1;
                live.push((lsn, event));
            }
        }
        if let Some(why) = tail_scan.corruption {
            let bad = tail_scan.file_len - tail_scan.good_len;
            let qpath = quarantine_path(dir);
            let data = fs::read(&tail_path)?;
            fs::write(&qpath, &data[tail_scan.good_len as usize..])?;
            let f = OpenOptions::new().write(true).open(&tail_path)?;
            f.set_len(tail_scan.good_len)?;
            f.sync_all()?;
            report.quarantined_bytes = bad;
            report.quarantine_file = Some(qpath);
            report.corruption = Some(format!("tail: {why}"));
        }
        // Bound the corruption-evidence footprint: keep the newest few
        // quarantine files, prune the rest.
        prune_quarantines(dir, quarantine_keep);

        live.sort_by_key(|&(lsn, _)| lsn);
        let next_lsn = live
            .last()
            .map_or(through_lsn, |&(lsn, _)| lsn.max(through_lsn))
            + 1;
        let events: Vec<Event> = live.iter().map(|(_, e)| e.clone()).collect();

        let tail = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&tail_path)?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            inner: Mutex::new(JournalInner {
                tail,
                policy,
                last_sync: Instant::now(),
                next_lsn,
                live,
                tail_records,
                snapshot_every: snapshot_every.max(1),
                appends: 0,
                snapshots: 0,
                quarantined_bytes: report.quarantined_bytes,
                // Conservative: an on-disk snapshot may have dropped events
                // before this boot, so treat its horizon as the drop line.
                last_drop_through: through_lsn,
            }),
        };
        Ok((journal, events, report))
    }

    /// Appends one event, applying the fsync policy, and compacts into a
    /// fresh snapshot once the tail exceeds the snapshot cadence.
    pub fn append(&self, event: Event) -> std::io::Result<()> {
        self.append_frame(event).map(|_| ())
    }

    /// Like [`Journal::append`], but also returns the assigned LSN and the
    /// encoded wire frame, so a replication hub can ship the exact bytes
    /// that hit the local disk.
    pub fn append_frame(&self, event: Event) -> std::io::Result<(u64, Vec<u8>)> {
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        let lsn = inner.next_lsn;
        self.append_locked(&mut inner, lsn, event)
    }

    /// Appends one event at an *explicit* LSN — the follower apply path,
    /// which must preserve the leader's numbering so state digests are
    /// computed over identical `(lsn, event)` streams. `lsn` must be at
    /// least `next_lsn`; gaps are allowed (the leader may have compacted),
    /// regressions are not.
    pub fn append_at(&self, lsn: u64, event: Event) -> std::io::Result<(u64, Vec<u8>)> {
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        if lsn < inner.next_lsn {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "replicated LSN {lsn} regresses below local next LSN {}",
                    inner.next_lsn
                ),
            ));
        }
        self.append_locked(&mut inner, lsn, event)
    }

    fn append_locked(
        &self,
        inner: &mut JournalInner,
        lsn: u64,
        event: Event,
    ) -> std::io::Result<(u64, Vec<u8>)> {
        inner.next_lsn = lsn + 1;
        let frame = encode_event_frame(lsn, &event);
        inner.tail.write_all(&frame)?;
        match inner.policy {
            FsyncPolicy::Always => {
                inner.tail.sync_data()?;
                inner.last_sync = Instant::now();
            }
            FsyncPolicy::Interval(iv) => {
                if inner.last_sync.elapsed() >= iv {
                    inner.tail.sync_data()?;
                    inner.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        inner.live.push((lsn, event));
        inner.tail_records += 1;
        inner.appends += 1;
        if inner.tail_records >= inner.snapshot_every {
            self.compact_locked(inner)?;
        }
        Ok((lsn, frame))
    }

    /// The highest LSN assigned so far (0 when the journal is empty).
    pub fn last_lsn(&self) -> u64 {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner.next_lsn - 1
    }

    /// A deterministic digest of the replayed store: FNV-1a 64 over the
    /// live `(lsn, tag, body)` stream *after* dropping deleted sessions'
    /// events. The filter makes the digest invariant under compaction
    /// timing — leader and follower agree at a common LSN no matter when
    /// each of them last compacted — and because the store is a pure
    /// function of these events (byte-identical replay), equal digests at
    /// equal LSNs mean byte-identical stores. Returns `(last_lsn, digest)`.
    pub fn state_digest(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("journal lock poisoned");
        (inner.next_lsn - 1, digest_events(&inner.live))
    }

    /// Encoded wire frames for every live event with `lsn > after`, in LSN
    /// order — the catch-up backlog for a follower acked at `after`.
    /// Returns `None` when `after` is behind the drop horizon of a past
    /// compaction: frames the follower never saw are gone, so it must
    /// full-resync instead.
    pub fn frames_after(&self, after: u64) -> Option<Vec<Vec<u8>>> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        if after < inner.last_drop_through {
            return None;
        }
        Some(
            inner
                .live
                .iter()
                .filter(|&&(lsn, _)| lsn > after)
                .map(|(lsn, event)| encode_event_frame(*lsn, event))
                .collect(),
        )
    }

    /// Encoded wire frames for the entire live set — the full-resync
    /// payload sent after a `RESET`.
    pub fn all_frames(&self) -> Vec<Vec<u8>> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner
            .live
            .iter()
            .map(|(lsn, event)| encode_event_frame(*lsn, event))
            .collect()
    }

    /// Discards all local state (live events, tail, snapshot) ahead of a
    /// full resync from the leader. The caller must clear its store too.
    pub fn reset(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        inner.live.clear();
        inner.next_lsn = 1;
        inner.tail_records = 0;
        inner.last_drop_through = 0;
        let snap = self.dir.join("snapshot.wal");
        if snap.exists() {
            fs::remove_file(&snap)?;
        }
        inner.tail.set_len(0)?;
        inner.tail.seek(SeekFrom::Start(0))?;
        inner.tail.sync_all()?;
        inner.last_sync = Instant::now();
        Ok(())
    }

    /// Forces buffered appends to stable storage — called before dropping
    /// evicted sessions, on deletion, and at shutdown.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        inner.tail.sync_data()?;
        inner.last_sync = Instant::now();
        Ok(())
    }

    /// Current counters for `/metrics`.
    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock().expect("journal lock poisoned");
        JournalStats {
            appends: inner.appends,
            snapshots: inner.snapshots,
            live_events: inner.live.len() as u64,
            quarantined_bytes: inner.quarantined_bytes,
            quarantine_files: quarantine_files(&self.dir).len() as u64,
        }
    }

    /// One scrub pass: re-reads `snapshot.wal` and `journal.wal` from disk,
    /// rebuilds the live event stream exactly as boot recovery would, and
    /// compares its digest against the in-memory mirror. Runs under the
    /// journal lock, so the files are quiescent for the duration (appends
    /// briefly queue behind it) and the comparison is exact, not racy.
    ///
    /// This is the detection half of the self-healing story: a bit flip
    /// that lands *after* boot — when the snapshot is otherwise only ever
    /// read again at the next restart — is caught here while the node is
    /// still serving, instead of at the next crash.
    pub fn scrub(&self) -> std::io::Result<ScrubReport> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        let snap_scan = scan_wal(&self.dir.join("snapshot.wal"))?;
        let tail_scan = scan_wal(&self.dir.join("journal.wal"))?;
        let mut corruption: Option<String> = None;
        if let Some(why) = &snap_scan.corruption {
            corruption = Some(format!(
                "snapshot.wal: {why} at byte {}",
                snap_scan.good_len
            ));
        } else if let Some(why) = &tail_scan.corruption {
            corruption = Some(format!("journal.wal: {why} at byte {}", tail_scan.good_len));
        }
        let mut through_lsn = 0u64;
        let mut disk: Vec<(u64, Event)> = Vec::new();
        for rec in snap_scan.records {
            match rec {
                Record::Snapshot { through_lsn: t } => through_lsn = t,
                Record::Event { lsn, event } => disk.push((lsn, event)),
            }
        }
        for rec in tail_scan.records {
            if let Record::Event { lsn, event } = rec {
                if lsn > through_lsn {
                    disk.push((lsn, event));
                }
            }
        }
        disk.sort_by_key(|&(lsn, _)| lsn);
        let disk_digest = digest_events(&disk);
        let memory_digest = digest_events(&inner.live);
        let ok = corruption.is_none() && disk_digest == memory_digest;
        Ok(ScrubReport {
            last_lsn: inner.next_lsn - 1,
            memory_digest,
            disk_digest,
            corruption,
            ok,
        })
    }

    /// Drops deleted sessions' events, writes a fresh snapshot atomically,
    /// and truncates the tail. Caller holds the journal lock; no other lock
    /// is touched, so compaction can never deadlock against handlers.
    fn compact_locked(&self, inner: &mut JournalInner) -> std::io::Result<()> {
        let deleted: std::collections::HashSet<u64> = inner
            .live
            .iter()
            .filter_map(|(_, e)| match e {
                Event::SessionDelete { session } => Some(*session),
                _ => None,
            })
            .collect();
        let before = inner.live.len();
        inner.live.retain(|(_, e)| match e.session_id() {
            Some(s) => !deleted.contains(&s),
            None => true,
        });
        let through_lsn = inner.next_lsn - 1;
        if inner.live.len() < before {
            // Events are gone for good: followers acked before this horizon
            // can no longer catch up incrementally.
            inner.last_drop_through = through_lsn;
        }
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&encode_snapshot_header(through_lsn))?;
            for (lsn, event) in &inner.live {
                f.write_all(&encode_event_frame(*lsn, event))?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join("snapshot.wal"))?;
        if let Ok(d) = File::open(&self.dir) {
            // durability: directory sync is best-effort — some filesystems
            // refuse fsync on a directory handle, and losing only the rename
            // is the benign crash window below (boot replays the tail).
            let _ = d.sync_all();
        }
        // Crash window here is benign: boot skips tail LSNs <= through_lsn.
        inner.tail.set_len(0)?;
        inner.tail.seek(SeekFrom::Start(0))?;
        inner.tail.sync_all()?;
        inner.last_sync = Instant::now();
        inner.tail_records = 0;
        inner.snapshots += 1;
        Ok(())
    }
}

/// FNV-1a 64 over the deleted-filtered `(lsn, tag, body)` stream — the
/// shared digest kernel behind [`Journal::state_digest`], the background
/// scrubber, and `mube fsck`. Equal digests over equal LSN ranges mean
/// byte-identical replayed stores.
pub(crate) fn digest_events(live: &[(u64, Event)]) -> u64 {
    let deleted: std::collections::HashSet<u64> = live
        .iter()
        .filter_map(|(_, e)| match e {
            Event::SessionDelete { session } => Some(*session),
            _ => None,
        })
        .collect();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut enc = Enc::new();
    for (lsn, event) in live {
        if event.session_id().is_some_and(|s| deleted.contains(&s)) {
            continue;
        }
        enc.buf.clear();
        event.encode_body(&mut enc);
        fnv(&lsn.to_le_bytes());
        fnv(&[event.tag()]);
        fnv(&enc.buf);
    }
    hash
}

/// First unused `quarantine-N.wal` path in `dir`.
pub(crate) fn quarantine_path(dir: &Path) -> PathBuf {
    for n in 0.. {
        let p = dir.join(format!("quarantine-{n}.wal"));
        if !p.exists() {
            return p;
        }
    }
    unreachable!("u64 quarantine indices exhausted")
}

/// The `quarantine-N.wal` files currently in `dir`, sorted by `N`.
pub(crate) fn quarantine_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("quarantine-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push((n, entry.path()));
        }
    }
    out.sort_by_key(|&(n, _)| n);
    out
}

/// Retention cap on quarantined corruption evidence: keeps the newest
/// `keep` `quarantine-N.wal` files (highest `N`), deletes the rest, and
/// returns how many were pruned. Unbounded corruption on a flapping disk
/// must not eat the volume that also holds the live journal.
pub(crate) fn prune_quarantines(dir: &Path, keep: u64) -> u64 {
    let files = quarantine_files(dir);
    let excess = files.len().saturating_sub(keep as usize);
    let mut pruned = 0u64;
    for (_, path) in files.into_iter().take(excess) {
        if fs::remove_file(&path).is_ok() {
            pruned += 1;
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "mube-persist-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev_catalog(id: u64) -> Event {
        Event::CatalogCreate {
            id,
            text: format!("catalog-{id} text"),
        }
    }

    fn ev_session(id: u64, catalog: u64) -> Event {
        Event::SessionCreate {
            id,
            catalog_id: catalog,
            body: format!("{{\"catalog\":{catalog},\"seed\":{id}}}"),
        }
    }

    fn ev_solve(session: u64) -> Event {
        Event::Solve {
            session,
            solution: SolutionRecord {
                sources: vec![1, 4, 7],
                quality_bits: 0.731_f64.to_bits(),
                evaluations: 1234,
                timed_out: session.is_multiple_of(2),
                qef_scores: vec![("matching".into(), 0.25_f64.to_bits(), 0.9_f64.to_bits())],
                schema: vec![vec![(1, 0), (4, 2)], vec![(7, 1)]],
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn event_roundtrip_through_frames() {
        let events = [
            ev_catalog(1),
            ev_session(1, 1),
            Event::Feedback {
                session: 1,
                body: "{\"actions\":[{\"op\":\"pin\",\"source\":\"s1\"}]}".into(),
            },
            ev_solve(1),
            Event::SessionDelete { session: 1 },
        ];
        for (i, event) in events.iter().enumerate() {
            let frame = encode_event_frame(i as u64 + 1, event);
            let payload = &frame[8..];
            assert_eq!(
                crc32(payload),
                u32::from_le_bytes(frame[4..8].try_into().unwrap())
            );
            let decoded = Event::decode_body(payload[8], &mut Dec::new(&payload[9..])).unwrap();
            assert_eq!(&decoded, event);
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = test_dir("roundtrip");
        let written = vec![ev_catalog(1), ev_session(1, 1), ev_solve(1)];
        {
            let (j, replayed, report) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
            assert!(replayed.is_empty());
            assert!(report.corruption.is_none());
            for e in &written {
                j.append(e.clone()).unwrap();
            }
        }
        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        assert_eq!(replayed, written);
        assert_eq!(report.tail_events, 3);
        assert_eq!(report.quarantined_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_drops_deleted_sessions() {
        let dir = test_dir("compact");
        {
            let (j, _, _) = Journal::open(&dir, FsyncPolicy::Never, 4).unwrap();
            j.append(ev_catalog(1)).unwrap();
            j.append(ev_session(1, 1)).unwrap();
            j.append(ev_solve(1)).unwrap();
            j.append(Event::SessionDelete { session: 1 }).unwrap(); // triggers compaction
            assert_eq!(j.stats().snapshots, 1);
            assert_eq!(j.stats().live_events, 1, "only the catalog survives");
            j.append(ev_session(2, 1)).unwrap();
            j.flush().unwrap();
        }
        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Never, 4).unwrap();
        assert_eq!(replayed, vec![ev_catalog(1), ev_session(2, 1)]);
        assert_eq!(report.snapshot_events, 1);
        assert_eq!(report.tail_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_survives_snapshot_plus_tail_lsn_overlap() {
        // Simulate the crash window: snapshot written, tail NOT truncated.
        let dir = test_dir("overlap");
        fs::create_dir_all(&dir).unwrap();
        // Tail holds events with LSN 1..=3.
        let mut tail = Vec::new();
        tail.extend_from_slice(&encode_event_frame(1, &ev_catalog(1)));
        tail.extend_from_slice(&encode_event_frame(2, &ev_session(1, 1)));
        tail.extend_from_slice(&encode_event_frame(3, &ev_solve(1)));
        fs::write(dir.join("journal.wal"), &tail).unwrap();
        // Snapshot covers LSN <= 2 and already contains those events.
        let mut snap = encode_snapshot_header(2);
        snap.extend_from_slice(&encode_event_frame(1, &ev_catalog(1)));
        snap.extend_from_slice(&encode_event_frame(2, &ev_session(1, 1)));
        fs::write(dir.join("snapshot.wal"), &snap).unwrap();

        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Never, 1000).unwrap();
        assert_eq!(
            replayed,
            vec![ev_catalog(1), ev_session(1, 1), ev_solve(1)],
            "overlapping tail records must not replay twice"
        );
        assert_eq!(report.snapshot_events, 2);
        assert_eq!(report.tail_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_quarantined_not_fatal() {
        let dir = test_dir("corrupt");
        {
            let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
            j.append(ev_catalog(1)).unwrap();
            j.append(ev_session(1, 1)).unwrap();
            j.append(ev_solve(1)).unwrap();
        }
        // Flip a bit inside the last record's body.
        let path = dir.join("journal.wal");
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 3] ^= 0x40;
        fs::write(&path, &data).unwrap();

        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        assert_eq!(replayed, vec![ev_catalog(1), ev_session(1, 1)]);
        assert!(report.corruption.as_deref().unwrap().contains("CRC"));
        assert!(report.quarantined_bytes > 0);
        let qfile = report.quarantine_file.clone().unwrap();
        assert!(qfile.exists());
        assert_eq!(
            fs::metadata(&qfile).unwrap().len(),
            report.quarantined_bytes
        );

        // The journal stays usable: append after recovery, replay again.
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        j.append(ev_solve(1)).unwrap();
        drop(j);
        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        assert_eq!(replayed.len(), 3);
        assert!(report.corruption.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_quarantined_not_fatal() {
        let dir = test_dir("torn");
        {
            let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
            j.append(ev_catalog(1)).unwrap();
            j.append(ev_solve(7)).unwrap();
        }
        let path = dir.join("journal.wal");
        let data = fs::read(&path).unwrap();
        // Tear the last record in half.
        fs::write(&path, &data[..data.len() - 11]).unwrap();

        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        assert_eq!(replayed, vec![ev_catalog(1)]);
        assert!(report.corruption.as_deref().unwrap().contains("torn"));
        assert!(report.quarantine_file.unwrap().exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn solution_record_roundtrips_bit_exactly() {
        let rec = SolutionRecord {
            sources: vec![0, 3, 9],
            quality_bits: 0.123_456_789_f64.to_bits(),
            evaluations: 999,
            timed_out: true,
            qef_scores: vec![
                ("matching".into(), 0.25_f64.to_bits(), 0.91_f64.to_bits()),
                ("coverage".into(), 0.75_f64.to_bits(), 0.33_f64.to_bits()),
            ],
            schema: vec![vec![(0, 1), (3, 0)]],
        };
        let sol = rec.clone().into_solution().unwrap();
        assert_eq!(sol.quality.to_bits(), rec.quality_bits);
        assert!(sol.timed_out);
        assert_eq!(SolutionRecord::from_solution(&sol), rec);
    }

    #[test]
    fn empty_ga_in_solve_record_is_rejected() {
        let rec = SolutionRecord {
            sources: vec![0],
            quality_bits: 0,
            evaluations: 0,
            timed_out: false,
            qef_scores: vec![],
            schema: vec![vec![]],
        };
        assert!(rec.into_solution().is_err());
    }

    #[test]
    fn state_digest_is_invariant_under_compaction_timing() {
        // Two journals fed the same event stream, one compacting eagerly
        // (every 2 appends) and one never, must agree on (lsn, digest).
        let d1 = test_dir("digest-eager");
        let d2 = test_dir("digest-lazy");
        let (eager, _, _) = Journal::open(&d1, FsyncPolicy::Never, 2).unwrap();
        let (lazy, _, _) = Journal::open(&d2, FsyncPolicy::Never, 100_000).unwrap();
        let stream = [
            ev_catalog(1),
            ev_session(1, 1),
            ev_solve(1),
            ev_session(2, 1),
            Event::SessionDelete { session: 1 },
            ev_solve(2),
        ];
        for e in &stream {
            eager.append(e.clone()).unwrap();
            lazy.append(e.clone()).unwrap();
        }
        assert_eq!(eager.state_digest(), lazy.state_digest());
        assert_eq!(eager.last_lsn(), stream.len() as u64);
        fs::remove_dir_all(&d1).unwrap();
        fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn state_digest_differs_on_divergent_streams() {
        let d1 = test_dir("digest-a");
        let d2 = test_dir("digest-b");
        let (a, _, _) = Journal::open(&d1, FsyncPolicy::Never, 1000).unwrap();
        let (b, _, _) = Journal::open(&d2, FsyncPolicy::Never, 1000).unwrap();
        a.append(ev_catalog(1)).unwrap();
        b.append(ev_catalog(2)).unwrap();
        assert_eq!(a.last_lsn(), b.last_lsn());
        assert_ne!(a.state_digest().1, b.state_digest().1);
        fs::remove_dir_all(&d1).unwrap();
        fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn append_at_preserves_leader_lsns_and_rejects_regression() {
        let dir = test_dir("append-at");
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Never, 1000).unwrap();
        j.append_at(3, ev_catalog(1)).unwrap();
        j.append_at(7, ev_session(1, 1)).unwrap(); // gap: leader compacted
        assert_eq!(j.last_lsn(), 7);
        assert!(j.append_at(5, ev_solve(1)).is_err(), "LSN regression");
        // Digest covers the *leader's* LSNs, not a local renumbering.
        let (lsn, _) = j.state_digest();
        assert_eq!(lsn, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frames_after_returns_backlog_or_demands_resync() {
        let dir = test_dir("frames-after");
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Never, 3).unwrap();
        j.append(ev_catalog(1)).unwrap();
        j.append(ev_session(1, 1)).unwrap();
        let frames = j.frames_after(1).unwrap();
        assert_eq!(frames.len(), 1);
        let (lsn, event) = Event::decode_frame_payload(&frames[0][8..]).unwrap();
        assert_eq!(lsn, 2);
        assert_eq!(event, ev_session(1, 1));
        // Trigger a dropping compaction (delete makes the 3rd tail record).
        j.append(Event::SessionDelete { session: 1 }).unwrap();
        assert!(
            j.frames_after(1).is_none(),
            "acks behind the drop horizon must force a resync"
        );
        assert_eq!(j.frames_after(3).unwrap().len(), 0);
        assert_eq!(j.all_frames().len(), 1, "only the catalog survives");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_clears_journal_for_full_resync() {
        let dir = test_dir("reset");
        {
            let (j, _, _) = Journal::open(&dir, FsyncPolicy::Never, 2).unwrap();
            j.append(ev_catalog(1)).unwrap();
            j.append(ev_session(1, 1)).unwrap(); // compacts -> snapshot.wal
            j.append(ev_solve(1)).unwrap();
            j.reset().unwrap();
            assert_eq!(j.last_lsn(), 0);
            assert!(!dir.join("snapshot.wal").exists());
            // Usable immediately after reset, at leader-assigned LSNs.
            j.append_at(4, ev_catalog(9)).unwrap();
            j.flush().unwrap();
        }
        let (_, replayed, report) = Journal::open(&dir, FsyncPolicy::Never, 2).unwrap();
        assert_eq!(replayed, vec![ev_catalog(9)]);
        assert!(report.corruption.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_passes_on_a_healthy_journal_and_catches_bit_flips() {
        let dir = test_dir("scrub");
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        j.append(ev_catalog(1)).unwrap();
        j.append(ev_session(1, 1)).unwrap(); // compacts -> snapshot.wal
        j.append(ev_solve(1)).unwrap(); // lives in the tail
        let clean = j.scrub().unwrap();
        assert!(clean.ok, "healthy dir must scrub clean: {clean:?}");
        assert_eq!(clean.memory_digest, clean.disk_digest);
        assert_eq!(clean.last_lsn, 3);

        // Flip one bit inside the sealed snapshot — the file a running
        // server would otherwise never read again before its next boot.
        let snap = dir.join("snapshot.wal");
        let mut data = fs::read(&snap).unwrap();
        let n = data.len();
        data[n - 3] ^= 0x20;
        fs::write(&snap, &data).unwrap();
        let dirty = j.scrub().unwrap();
        assert!(!dirty.ok);
        assert!(
            dirty
                .corruption
                .as_deref()
                .unwrap()
                .contains("snapshot.wal"),
            "{dirty:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_catches_tail_corruption() {
        let dir = test_dir("scrub-tail");
        let (j, _, _) = Journal::open(&dir, FsyncPolicy::Always, 1000).unwrap();
        j.append(ev_catalog(1)).unwrap();
        j.append(ev_solve(1)).unwrap();
        let path = dir.join("journal.wal");
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x01;
        fs::write(&path, &data).unwrap();
        let report = j.scrub().unwrap();
        assert!(!report.ok);
        assert!(
            report
                .corruption
                .as_deref()
                .unwrap()
                .contains("journal.wal"),
            "{report:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_retention_keeps_newest_k() {
        let dir = test_dir("quarantine-cap");
        fs::create_dir_all(&dir).unwrap();
        for n in 0..6 {
            fs::write(dir.join(format!("quarantine-{n}.wal")), [n as u8]).unwrap();
        }
        assert_eq!(prune_quarantines(&dir, 2), 4);
        let left = quarantine_files(&dir);
        assert_eq!(
            left.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![4, 5],
            "newest files survive"
        );
        // Opening a journal applies the cap too.
        for n in 6..10 {
            fs::write(dir.join(format!("quarantine-{n}.wal")), [n as u8]).unwrap();
        }
        let (j, _, _) = Journal::open_with(&dir, FsyncPolicy::Never, 1000, 3).unwrap();
        assert_eq!(j.stats().quarantine_files, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::default()
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
    }
}

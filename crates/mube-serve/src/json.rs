//! A minimal JSON *reader* (the writer half lives in [`mube_core::jsonw`]).
//!
//! Hand-rolled recursive-descent parser over the request body: the server
//! needs objects, arrays, strings, numbers, booleans, and null — nothing
//! exotic — but it must survive hostile input, so parsing is bounded by a
//! nesting-depth cap and never panics on malformed text.

use std::fmt;

/// Maximum nesting depth accepted before parsing fails (stack safety
/// against `[[[[...` bombs).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Member lookup on an object (last duplicate wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives, and values beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndé😀");
    }

    #[test]
    fn writer_reader_roundtrip() {
        // What jsonw emits, this parser must accept.
        let mut j = mube_core::jsonw::JsonBuf::new();
        j.begin_obj();
        j.key("weird \"name\"\n").num_value(0.5);
        j.key("n").null_value();
        j.end_obj();
        let text = j.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("weird \"name\"\n").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "\"\u{1}\"",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_depth_bomb() {
        let bomb = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&bomb).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
    }
}

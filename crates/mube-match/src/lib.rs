//! # mube-match — attribute similarity and constrained clustering
//!
//! The reference implementation of `µBE`'s `Match(S)` operator (§3 of the
//! paper): **greedy constrained similarity clustering** over the attributes
//! of a candidate source set, seeded by user GA constraints ("matching by
//! example").
//!
//! * [`similarity`] — the pluggable attribute-similarity measure trait with
//!   the paper's choice (Jaccard coefficient over 3-grams of the attribute
//!   names) plus normalized-edit-distance and token-Dice alternatives;
//! * [`cache`] — a universe-wide pairwise similarity cache, deduplicated by
//!   attribute *name* (Internet-scale universes repeat names heavily, so
//!   the cache stays small even with thousands of sources);
//! * [`cluster`] — Algorithm 1 and the [`ClusterMatcher`] implementing
//!   [`mube_core::MatchOperator`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mube_core::{Constraints, MatchOperator, MatchOutcome, Schema, Universe};
//! use mube_core::source::SourceSpec;
//! use mube_match::similarity::JaccardNGram;
//! use mube_match::ClusterMatcher;
//!
//! let mut b = Universe::builder();
//! b.add_source(SourceSpec::new("a", Schema::new(["book title", "author name"])));
//! b.add_source(SourceSpec::new("b", Schema::new(["title of book", "author"])));
//! let universe = Arc::new(b.build().unwrap());
//!
//! let matcher = ClusterMatcher::new(Arc::clone(&universe), JaccardNGram::trigram());
//! let sources = universe.source_ids().collect();
//! let outcome = matcher.match_sources(
//!     &universe, &sources, &Constraints::with_max_sources(2).theta(0.3));
//! match outcome {
//!     MatchOutcome::Matched { schema, quality } => {
//!         assert_eq!(schema.len(), 2); // {book title, title of book}, {author name, author}
//!         assert!(quality >= 0.3);
//!     }
//!     MatchOutcome::Infeasible => unreachable!(),
//! }
//! ```

pub mod cache;
pub mod cluster;
pub mod compound;
pub mod ensemble;
pub mod similarity;

pub use cache::{theta_upper_bound, SimilarityCache};
pub use cluster::ClusterMatcher;
pub use compound::{CompoundGa, CompoundSchema, Compounding, Derived};
pub use ensemble::{Combine, Ensemble};
pub use similarity::{JaccardNGram, NormalizedLevenshtein, Similarity, TokenDice};

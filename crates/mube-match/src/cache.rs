//! Universe-wide pairwise similarity cache.
//!
//! The clustering matcher runs once per objective evaluation inside the
//! optimizer's inner loop, so attribute similarities must be cheap. Two
//! observations make a precomputed cache practical at Internet scale:
//!
//! 1. similarity is a function of the *names* only, and
//! 2. names repeat massively across sources (the paper's 700 schemas are
//!    perturbed copies of 50 base schemas).
//!
//! So the cache interns every distinct attribute name once and stores a
//! dense `distinct × distinct` matrix of `f32` similarities. A universe
//! with thousands of sources but a few hundred distinct names costs well
//! under a megabyte.

use std::collections::HashMap;

use mube_core::ids::AttrId;
use mube_core::source::Universe;

use crate::similarity::Similarity;

/// A precomputed similarity oracle for all attributes of one universe.
pub struct SimilarityCache {
    /// `name_ids[source][attr_index]` → interned name id.
    name_ids: Vec<Vec<u32>>,
    /// Number of distinct names.
    distinct: usize,
    /// Dense row-major `distinct × distinct` similarity matrix.
    matrix: Vec<f32>,
    /// Name of the measure used, for reports.
    measure_name: String,
}

/// Below this many distinct names the matrix is so small that thread
/// spawn overhead dominates; [`SimilarityCache::build_parallel`] falls
/// back to the serial fill.
const PARALLEL_BUILD_MIN_NAMES: usize = 64;

impl SimilarityCache {
    /// Computes the cache for a universe under a similarity measure.
    ///
    /// Once built, the cache is immutable: every read path
    /// ([`SimilarityCache::attr_sim`] and friends) is a plain indexed load
    /// with no locking, so a single cache can be shared freely across
    /// solver threads (it is `Send + Sync`; the portfolio solver and the
    /// server's catalog store rely on this).
    pub fn build(universe: &Universe, measure: &dyn Similarity) -> Self {
        Self::build_with_threads(universe, measure, 1)
    }

    /// Like [`SimilarityCache::build`], filling the similarity matrix with
    /// up to `threads` OS threads. The result is byte-identical to the
    /// serial build: each upper-triangle cell is computed by exactly one
    /// thread and mirrored afterwards, exactly as the serial fill defines
    /// `sim(j,i) := sim(i,j)`.
    pub fn build_parallel(universe: &Universe, measure: &dyn Similarity, threads: usize) -> Self {
        Self::build_with_threads(universe, measure, threads.max(1))
    }

    fn build_with_threads(universe: &Universe, measure: &dyn Similarity, threads: usize) -> Self {
        let mut intern: HashMap<&str, u32> = HashMap::new();
        let mut names: Vec<&str> = Vec::new();
        let mut name_ids: Vec<Vec<u32>> = Vec::with_capacity(universe.len());
        for source in universe.sources() {
            let ids = source
                .schema()
                .iter()
                .map(|(_, attr)| {
                    *intern.entry(attr.name()).or_insert_with(|| {
                        names.push(attr.name());
                        (names.len() - 1) as u32
                    })
                })
                .collect();
            name_ids.push(ids);
        }
        let distinct = names.len();
        let mut matrix = vec![0.0f32; distinct * distinct];
        if threads <= 1 || distinct < PARALLEL_BUILD_MIN_NAMES {
            for i in 0..distinct {
                matrix[i * distinct + i] = 1.0;
                for j in (i + 1)..distinct {
                    let s = measure.similarity(names[i], names[j]) as f32;
                    matrix[i * distinct + j] = s;
                    matrix[j * distinct + i] = s;
                }
            }
        } else {
            // Split the matrix into contiguous row bands, one scoped thread
            // per band, each filling its rows' diagonal-and-above cells in
            // place — bands are disjoint `&mut` slices, so no cell is ever
            // written twice.
            let rows_per_band = distinct.div_ceil(threads);
            let names = &names;
            std::thread::scope(|scope| {
                for (band_idx, band) in matrix.chunks_mut(rows_per_band * distinct).enumerate() {
                    let first_row = band_idx * rows_per_band;
                    scope.spawn(move || {
                        for (r, row) in band.chunks_mut(distinct).enumerate() {
                            let i = first_row + r;
                            row[i] = 1.0;
                            for (j, cell) in row.iter_mut().enumerate().skip(i + 1) {
                                *cell = measure.similarity(names[i], names[j]) as f32;
                            }
                        }
                    });
                }
            });
            // Mirror the upper triangle below the diagonal; symmetry is the
            // cache's contract, not necessarily the measure's.
            for i in 0..distinct {
                for j in (i + 1)..distinct {
                    matrix[j * distinct + i] = matrix[i * distinct + j];
                }
            }
        }
        SimilarityCache {
            name_ids,
            distinct,
            matrix,
            measure_name: measure.name().to_string(),
        }
    }

    /// Number of distinct attribute names interned.
    pub fn distinct_names(&self) -> usize {
        self.distinct
    }

    /// The measure this cache was built with.
    pub fn measure_name(&self) -> &str {
        &self.measure_name
    }

    /// Interned name id of an attribute.
    ///
    /// # Panics
    ///
    /// Panics if the attribute does not belong to the universe the cache was
    /// built from (a logic error: caches and universes travel together).
    #[inline]
    pub fn name_id(&self, attr: AttrId) -> u32 {
        self.name_ids[attr.source.index()][attr.index as usize]
    }

    /// Cached similarity of two attributes.
    #[inline]
    pub fn attr_sim(&self, a: AttrId, b: AttrId) -> f64 {
        self.sim_by_name_id(self.name_id(a), self.name_id(b))
    }

    /// Cached similarity of two interned names.
    #[inline]
    pub fn sim_by_name_id(&self, a: u32, b: u32) -> f64 {
        f64::from(self.matrix[a as usize * self.distinct + b as usize])
    }

    /// Approximate memory use of the matrix, in bytes.
    pub fn matrix_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<f32>()
    }

    /// For each source (indexed by source id), the best similarity any of
    /// its attributes reaches against an attribute of a *different* source.
    ///
    /// This is the per-source upper bound on cluster cohesion: a source
    /// whose best cross-source similarity is below `θ` can never join a
    /// non-seed GA. Sources of a single-source universe score `0.0`.
    pub fn per_source_best_cross_sim(&self) -> Vec<f64> {
        let sets: Vec<std::collections::BTreeSet<u32>> = self
            .name_ids
            .iter()
            .map(|ids| ids.iter().copied().collect())
            .collect();
        let mut best = vec![0.0f64; sets.len()];
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                for &a in &sets[i] {
                    for &b in &sets[j] {
                        let s = self.sim_by_name_id(a, b);
                        if s > best[i] {
                            best[i] = s;
                        }
                        if s > best[j] {
                            best[j] = s;
                        }
                    }
                }
            }
        }
        best
    }

    /// The best similarity achievable between attributes of two *different*
    /// sources — an upper bound on any usable matching threshold `θ`: above
    /// this value no pair of attributes can co-cluster, so every non-seed GA
    /// is a singleton and dies to any `β ≥ 2`.
    pub fn max_cross_source_sim(&self) -> f64 {
        self.per_source_best_cross_sim()
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Convenience for one-shot audits: the highest cross-source attribute
/// similarity in `universe` under `measure` (see
/// [`SimilarityCache::max_cross_source_sim`]). A `θ` above this bound is
/// unsatisfiable: the matcher can never form a multi-source GA outside the
/// user's seed GAs.
pub fn theta_upper_bound(universe: &Universe, measure: &dyn Similarity) -> f64 {
    SimilarityCache::build(universe, measure).max_cross_source_sim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::JaccardNGram;
    use mube_core::ids::SourceId;
    use mube_core::schema::Schema;
    use mube_core::source::SourceSpec;

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["title", "author"])));
        b.add_source(SourceSpec::new("b", Schema::new(["title", "writer"])));
        b.add_source(SourceSpec::new("c", Schema::new(["book title"])));
        b.build().unwrap()
    }

    fn attr(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    #[test]
    fn interns_duplicate_names() {
        let u = universe();
        let cache = SimilarityCache::build(&u, &JaccardNGram::trigram());
        // 5 attributes but only 4 distinct names.
        assert_eq!(cache.distinct_names(), 4);
        assert_eq!(cache.name_id(attr(0, 0)), cache.name_id(attr(1, 0)));
        assert_ne!(cache.name_id(attr(0, 1)), cache.name_id(attr(1, 1)));
    }

    #[test]
    fn matches_measure_exactly() {
        let u = universe();
        let measure = JaccardNGram::trigram();
        let cache = SimilarityCache::build(&u, &measure);
        let expected = measure.similarity("title", "book title");
        let got = cache.attr_sim(attr(0, 0), attr(2, 0));
        assert!(
            (got - expected).abs() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn identical_names_have_sim_one() {
        let u = universe();
        let cache = SimilarityCache::build(&u, &JaccardNGram::trigram());
        assert_eq!(cache.attr_sim(attr(0, 0), attr(1, 0)), 1.0);
        assert_eq!(cache.attr_sim(attr(0, 0), attr(0, 0)), 1.0);
    }

    #[test]
    fn symmetric() {
        let u = universe();
        let cache = SimilarityCache::build(&u, &JaccardNGram::trigram());
        let ab = cache.attr_sim(attr(0, 1), attr(1, 1));
        let ba = cache.attr_sim(attr(1, 1), attr(0, 1));
        assert_eq!(ab, ba);
    }

    #[test]
    fn reports_memory() {
        let u = universe();
        let cache = SimilarityCache::build(&u, &JaccardNGram::trigram());
        assert_eq!(cache.matrix_bytes(), 4 * 4 * 4);
        assert_eq!(cache.measure_name(), "jaccard3");
    }

    #[test]
    fn cross_source_bound_finds_shared_names() {
        // "title" appears in sources a and b, so the bound is exactly 1.
        let u = universe();
        let cache = SimilarityCache::build(&u, &JaccardNGram::trigram());
        assert_eq!(cache.max_cross_source_sim(), 1.0);
        assert_eq!(theta_upper_bound(&u, &JaccardNGram::trigram()), 1.0);
        let per_source = cache.per_source_best_cross_sim();
        assert_eq!(per_source.len(), 3);
        assert_eq!(per_source[0], 1.0);
        assert_eq!(per_source[1], 1.0);
        // Source c's best partner is "title" vs "book title" < 1.
        assert!(per_source[2] < 1.0 && per_source[2] > 0.0, "{per_source:?}");
    }

    #[test]
    fn cross_source_bound_on_dissimilar_universe() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["aaaaaa"])));
        b.add_source(SourceSpec::new("b", Schema::new(["zzzzzz"])));
        let u = b.build().unwrap();
        assert_eq!(theta_upper_bound(&u, &JaccardNGram::trigram()), 0.0);
    }

    /// A universe wide enough to exceed the parallel-build threshold.
    fn wide_universe() -> Universe {
        let mut b = Universe::builder();
        for s in 0..10u32 {
            let attrs: Vec<String> = (0..12).map(|a| format!("field {s} {a} name")).collect();
            b.add_source(SourceSpec::new(format!("src{s}"), Schema::new(attrs)));
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_build_is_bitwise_identical_to_serial() {
        let u = wide_universe();
        let measure = JaccardNGram::trigram();
        let serial = SimilarityCache::build(&u, &measure);
        assert!(serial.distinct_names() >= super::PARALLEL_BUILD_MIN_NAMES);
        for threads in [2, 3, 8] {
            let parallel = SimilarityCache::build_parallel(&u, &measure, threads);
            assert_eq!(parallel.distinct_names(), serial.distinct_names());
            let d = serial.distinct_names() as u32;
            for i in 0..d {
                for j in 0..d {
                    assert_eq!(
                        parallel.sim_by_name_id(i, j).to_bits(),
                        serial.sim_by_name_id(i, j).to_bits(),
                        "cell ({i},{j}) diverged at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimilarityCache>();
    }

    /// Contention regression test for the portfolio solver: many threads
    /// hammering the read path concurrently must observe exactly the values
    /// a single-threaded reader sees — reads are plain loads on an immutable
    /// matrix, with no lock to contend on or corrupt.
    #[test]
    fn concurrent_reads_match_serial_reads() {
        let u = wide_universe();
        let cache = std::sync::Arc::new(SimilarityCache::build(&u, &JaccardNGram::trigram()));
        let d = cache.distinct_names() as u32;
        let expected: Vec<f64> = (0..d)
            .flat_map(|i| (0..d).map(move |j| (i, j)))
            .map(|(i, j)| cache.sim_by_name_id(i, j))
            .collect();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let cache = std::sync::Arc::clone(&cache);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                // Each thread walks the matrix from a different offset so the
                // threads are always reading different cells at once.
                for round in 0..50u32 {
                    for i in 0..d {
                        for j in 0..d {
                            let ii = (i + t + round) % d;
                            let got = cache.sim_by_name_id(ii, j);
                            let want = expected[(ii * d + j) as usize];
                            assert_eq!(got.to_bits(), want.to_bits());
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("reader thread panicked");
        }
    }

    #[test]
    fn cross_source_bound_single_source_is_zero() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("only", Schema::new(["x", "x copy"])));
        let u = b.build().unwrap();
        // Similar attributes *within* one source do not count.
        assert_eq!(theta_upper_bound(&u, &JaccardNGram::trigram()), 0.0);
    }
}

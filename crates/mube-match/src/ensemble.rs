//! Ensemble similarity: combine several measures.
//!
//! §3 of the paper: "Match(S) can use any attribute similarity measure".
//! Single measures have blind spots — 3-gram Jaccard underrates reordered
//! multi-word labels ("name of event" vs "event name"), token overlap
//! misses morphological variants ("keyword" vs "keywords"). An ensemble
//! takes the best (or a weighted mix) of several views.

use crate::similarity::Similarity;

/// How the member scores are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// The maximum member score — optimistic: any strong signal matches.
    Max,
    /// The arithmetic mean — all members must agree for a high score.
    Mean,
}

/// A similarity measure combining the verdicts of several members.
pub struct Ensemble {
    members: Vec<Box<dyn Similarity>>,
    combine: Combine,
    display_name: String,
}

impl Ensemble {
    /// Builds an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Similarity>>, combine: Combine) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        let names: Vec<&str> = members.iter().map(|m| m.name()).collect();
        let display_name = format!(
            "{}({})",
            match combine {
                Combine::Max => "max",
                Combine::Mean => "mean",
            },
            names.join(",")
        );
        Ensemble {
            members,
            combine,
            display_name,
        }
    }

    /// The recommended general-purpose ensemble: max of 3-gram Jaccard and
    /// token Dice — n-grams catch morphology, tokens catch word reordering.
    pub fn lexical() -> Self {
        use crate::similarity::{JaccardNGram, TokenDice};
        Ensemble::new(
            vec![Box::new(JaccardNGram::trigram()), Box::new(TokenDice)],
            Combine::Max,
        )
    }
}

impl Similarity for Ensemble {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let scores = self.members.iter().map(|m| m.similarity(a, b));
        match self.combine {
            Combine::Max => scores.fold(0.0f64, f64::max),
            Combine::Mean => {
                let (sum, count) = scores.fold((0.0f64, 0usize), |(s, c), x| (s + x, c + 1));
                sum / count as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{JaccardNGram, TokenDice};

    #[test]
    fn max_takes_strongest_signal() {
        let e = Ensemble::lexical();
        // Token view sees reordered words perfectly; n-grams do not.
        let reordered = e.similarity("event name", "name event");
        assert_eq!(reordered, 1.0);
        // n-gram view catches morphology; tokens do not.
        let morph = e.similarity("keyword", "keywords");
        let tok = TokenDice.similarity("keyword", "keywords");
        assert!(morph > tok);
    }

    #[test]
    fn mean_requires_agreement() {
        let e = Ensemble::new(
            vec![Box::new(JaccardNGram::trigram()), Box::new(TokenDice)],
            Combine::Mean,
        );
        let v = e.similarity("event name", "name event");
        assert!(v < 1.0 && v > 0.4, "v={v}");
    }

    #[test]
    fn stays_in_unit_interval_and_symmetric() {
        let e = Ensemble::lexical();
        for (a, b) in [("title", "book title"), ("", "x"), ("a b c", "c b a")] {
            let ab = e.similarity(a, b);
            assert!((0.0..=1.0).contains(&ab));
            assert_eq!(ab, e.similarity(b, a));
        }
    }

    #[test]
    fn name_describes_composition() {
        assert_eq!(Ensemble::lexical().name(), "max(jaccard3,token-dice)");
    }

    #[test]
    #[should_panic]
    fn empty_ensemble_panics() {
        let _ = Ensemble::new(vec![], Combine::Max);
    }
}

//! Attribute-similarity measures.
//!
//! `Match(S)` only needs a pairwise similarity between attribute names in
//! `[0, 1]` (§3: "Match(S) can use any attribute similarity measure, whether
//! it is schema based or data based"). The paper's prototype uses the
//! Jaccard similarity coefficient between the 3-grams of the attribute
//! names; that is [`JaccardNGram::trigram`] here. Two further measures are
//! provided for experimentation and the measure ablation bench.

use std::collections::BTreeSet;

/// A symmetric attribute-name similarity in `[0, 1]`.
pub trait Similarity: Send + Sync {
    /// Short identifier for reports ("jaccard3", "levenshtein", ...).
    fn name(&self) -> &str;

    /// Similarity of two (already normalized) attribute names.
    fn similarity(&self, a: &str, b: &str) -> f64;
}

/// Jaccard coefficient over character n-grams — the paper's measure with
/// `n = 3`.
///
/// Names shorter than `n` contribute their whole text as a single gram, so
/// very short names still compare sensibly.
#[derive(Debug, Clone)]
pub struct JaccardNGram {
    n: usize,
    display_name: String,
}

impl JaccardNGram {
    /// Jaccard over `n`-grams. `n` must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "n-gram size must be at least 1");
        JaccardNGram {
            n,
            display_name: format!("jaccard{n}"),
        }
    }

    /// The paper's configuration: 3-grams.
    pub fn trigram() -> Self {
        JaccardNGram::new(3)
    }

    /// The n-gram set of one name: every length-`n` character window, or
    /// the whole name as a single gram when it is shorter than `n`.
    ///
    /// Public so the MinHash/LSH blocking front end in `mube-scale` shingles
    /// attribute names with *exactly* the gram definition the matcher's
    /// Jaccard measure scores with — keeping the blocking recall argument
    /// honest (LSH approximates the same set-Jaccard the matcher computes).
    pub fn grams(&self, s: &str) -> BTreeSet<Vec<char>> {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return BTreeSet::new();
        }
        if chars.len() <= self.n {
            return BTreeSet::from([chars]);
        }
        chars.windows(self.n).map(<[char]>::to_vec).collect()
    }
}

impl Similarity for JaccardNGram {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ga = self.grams(a);
        let gb = self.grams(b);
        if ga.is_empty() && gb.is_empty() {
            return 1.0;
        }
        if ga.is_empty() || gb.is_empty() {
            return 0.0;
        }
        let inter = ga.intersection(&gb).count();
        let union = ga.len() + gb.len() - inter;
        inter as f64 / union as f64
    }
}

/// `1 − levenshtein(a, b) / max(|a|, |b|)` — normalized edit distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedLevenshtein;

impl Similarity for NormalizedLevenshtein {
    fn name(&self) -> &str {
        "levenshtein"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        let max_len = ca.len().max(cb.len());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - levenshtein(&ca, &cb) as f64 / max_len as f64
    }
}

/// Classic two-row dynamic-programming Levenshtein distance.
fn levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ac) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &bc) in b.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Dice coefficient over whitespace-separated tokens — rewards multi-word
/// labels sharing words ("event name" vs "name of event").
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenDice;

impl Similarity for TokenDice {
    fn name(&self) -> &str {
        "token-dice"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta: BTreeSet<&str> = a.split_whitespace().collect();
        let tb: BTreeSet<&str> = b.split_whitespace().collect();
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let inter = ta.intersection(&tb).count();
        2.0 * inter as f64 / (ta.len() + tb.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bounds_and_symmetry(m: &dyn Similarity, a: &str, b: &str) {
        let ab = m.similarity(a, b);
        let ba = m.similarity(b, a);
        assert!((0.0..=1.0).contains(&ab), "{}({a},{b}) = {ab}", m.name());
        assert!((ab - ba).abs() < 1e-12, "{} not symmetric", m.name());
    }

    #[test]
    fn identical_names_score_one() {
        for m in [
            &JaccardNGram::trigram() as &dyn Similarity,
            &NormalizedLevenshtein,
            &TokenDice,
        ] {
            assert_eq!(m.similarity("title", "title"), 1.0, "{}", m.name());
        }
    }

    #[test]
    fn unrelated_names_score_low() {
        let j = JaccardNGram::trigram();
        assert!(j.similarity("title", "zyxwv") < 0.1);
        assert_eq!(TokenDice.similarity("price", "author"), 0.0);
    }

    #[test]
    fn jaccard_trigram_known_value() {
        let j = JaccardNGram::trigram();
        // "abcd" → {abc, bcd}; "abce" → {abc, bce}; J = 1/3.
        assert!((j.similarity("abcd", "abce") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_short_names() {
        let j = JaccardNGram::trigram();
        assert_eq!(j.similarity("ab", "ab"), 1.0);
        assert_eq!(j.similarity("ab", "cd"), 0.0);
        assert_eq!(j.similarity("", ""), 1.0);
        assert_eq!(j.similarity("", "abc"), 0.0);
    }

    #[test]
    fn jaccard_related_names_score_midrange() {
        let j = JaccardNGram::trigram();
        let s = j.similarity("book title", "title");
        assert!(s > 0.2 && s < 1.0, "s={s}");
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein(&['a', 'b', 'c'], &['a', 'b', 'c']), 0);
        assert_eq!(
            levenshtein(
                &['k', 'i', 't', 't', 'e', 'n'],
                &['s', 'i', 't', 't', 'i', 'n', 'g']
            ),
            3
        );
        assert_eq!(levenshtein(&[], &['x']), 1);
    }

    #[test]
    fn normalized_levenshtein_values() {
        let l = NormalizedLevenshtein;
        assert_eq!(l.similarity("", ""), 1.0);
        assert!((l.similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn token_dice_word_overlap() {
        let d = TokenDice;
        // {event, name} vs {name, of, event}: 2·2/(2+3) = 0.8.
        assert!((d.similarity("event name", "name of event") - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bounds_and_symmetry_spot_checks() {
        let names = ["title", "book title", "isbn", "event name", "a", ""];
        let measures: [&dyn Similarity; 3] =
            [&JaccardNGram::trigram(), &NormalizedLevenshtein, &TokenDice];
        for m in measures {
            for a in names {
                for b in names {
                    check_bounds_and_symmetry(m, a, b);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_gram_panics() {
        let _ = JaccardNGram::new(0);
    }
}

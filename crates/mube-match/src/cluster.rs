//! Greedy constrained similarity clustering — Algorithm 1 of the paper.
//!
//! Starting from one cluster per attribute (plus one *keep* cluster per user
//! GA constraint), the algorithm repeatedly merges the most similar pair of
//! clusters whose union is still a valid GA, where cluster similarity is the
//! **maximum** similarity between an attribute of one cluster and an
//! attribute of the other. Clusters whose best similarity to every other
//! cluster falls below the threshold `θ` are pruned. The surviving clusters
//! are the GAs of the generated mediated schema.
//!
//! The max-linkage definition is what makes GA constraints act as *bridges*:
//! a constraint cluster `{F name, Prenom}` attracts attributes similar to
//! either member without the dissimilar member penalizing them — "the user
//! provides an example of a matching, and `µBE` expands it".
//!
//! Two clarifications of the paper's pseudocode (its printed guards are
//! garbled by the PDF-to-text conversion) that we adopt, guided by the
//! stated termination condition and Figure 3:
//!
//! * another round runs whenever *any* merge happened, not only when a
//!   merge candidate was starved (so mutually-similar merged clusters can
//!   keep coalescing, as in Figure 3(b)→(c));
//! * elimination at the end of a round removes clusters that were never
//!   merged, are not pending merge candidates, and are not user-kept.

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::ga::{GlobalAttribute, MediatedSchema};
use mube_core::ids::SourceId;
use mube_core::matchop::{MatchOperator, MatchOutcome};
use mube_core::source::Universe;

use crate::cache::SimilarityCache;
use crate::similarity::Similarity;

/// `µBE`'s reference `Match(S)` operator.
///
/// Holds a similarity cache precomputed over the universe it was built for;
/// calls with a different universe are rejected as infeasible (caches and
/// universes travel together).
pub struct ClusterMatcher {
    cache: Arc<SimilarityCache>,
    universe_len: usize,
}

impl ClusterMatcher {
    /// Builds a matcher (and its similarity cache) for a universe.
    pub fn new(universe: Arc<Universe>, measure: impl Similarity + 'static) -> Self {
        let cache = Arc::new(SimilarityCache::build(&universe, &measure));
        ClusterMatcher {
            cache,
            universe_len: universe.len(),
        }
    }

    /// Builds a matcher from an existing cache (sharing it with other
    /// components, e.g. diagnostics).
    pub fn with_cache(universe: &Universe, cache: Arc<SimilarityCache>) -> Self {
        ClusterMatcher {
            cache,
            universe_len: universe.len(),
        }
    }

    /// The underlying similarity cache.
    pub fn cache(&self) -> &Arc<SimilarityCache> {
        &self.cache
    }
}

/// One cluster during Algorithm 1.
struct Cluster {
    ga: GlobalAttribute,
    /// User-kept (seeded from a GA constraint): immune to elimination and
    /// to the θ bound.
    keep: bool,
    /// Ever produced by a merge (size ≥ 2 growth); immune to elimination.
    formed_by_merge: bool,
}

impl ClusterMatcher {
    /// Max-linkage similarity between two clusters.
    fn cluster_sim(&self, a: &Cluster, b: &Cluster) -> f64 {
        let mut best = 0.0f64;
        for &x in a.ga.attrs() {
            for &y in b.ga.attrs() {
                let s = self.cache.attr_sim(x, y);
                if s > best {
                    best = s;
                }
            }
        }
        best
    }

    /// Quality of one GA: the maximum similarity between any two of its
    /// attributes (1.0 for singletons, which only arise from user
    /// constraints).
    fn ga_quality(&self, ga: &GlobalAttribute) -> f64 {
        let attrs: Vec<_> = ga.attrs().iter().copied().collect();
        if attrs.len() < 2 {
            return 1.0;
        }
        let mut best = 0.0f64;
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                best = best.max(self.cache.attr_sim(attrs[i], attrs[j]));
            }
        }
        best
    }
}

impl MatchOperator for ClusterMatcher {
    fn match_sources(
        &self,
        universe: &Universe,
        sources: &BTreeSet<SourceId>,
        constraints: &Constraints,
    ) -> MatchOutcome {
        if universe.len() != self.universe_len {
            return MatchOutcome::Infeasible;
        }
        // The caller must pass S ⊇ C (the paper ensures this for every call
        // to Match); a violating call can never produce a valid schema.
        if !constraints
            .required_sources
            .iter()
            .all(|s| sources.contains(s))
        {
            return MatchOutcome::Infeasible;
        }
        let theta = constraints.theta;

        // Seed clusters: merged GA constraints (keep = true)...
        let seeds = constraints.merged_ga_seeds();
        let mut seeded_attrs: BTreeSet<_> = BTreeSet::new();
        let mut clusters: Vec<Cluster> = Vec::new();
        for seed in seeds {
            if !seed.sources().all(|s| sources.contains(&s)) {
                // GA constraints imply source constraints; an attribute from
                // an unselected source cannot be mediated.
                return MatchOutcome::Infeasible;
            }
            seeded_attrs.extend(seed.attrs().iter().copied());
            clusters.push(Cluster {
                ga: seed,
                keep: true,
                formed_by_merge: false,
            });
        }
        // ...then every remaining attribute as its own cluster.
        for &sid in sources {
            let Some(source) = universe.get(sid) else {
                return MatchOutcome::Infeasible;
            };
            for attr in source.attr_ids() {
                if !seeded_attrs.contains(&attr) {
                    clusters.push(Cluster {
                        ga: GlobalAttribute::singleton(attr),
                        keep: false,
                        formed_by_merge: false,
                    });
                }
            }
        }

        // The greedy merge loop.
        loop {
            let k = clusters.len();
            // All cluster pairs at or above the threshold, best first.
            // Deterministic tie-break on indices.
            let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
            for i in 0..k {
                for j in (i + 1)..k {
                    let s = self.cluster_sim(&clusters[i], &clusters[j]);
                    if s >= theta {
                        pairs.push((s, i, j));
                    }
                }
            }
            // total_cmp: a user-written `Similarity` returning NaN must
            // not panic the matcher (NaN pairs sort last and lose ties).
            pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

            let mut merged = vec![false; k];
            let mut mergecand = vec![false; k];
            let mut new_clusters: Vec<Cluster> = Vec::new();
            let mut any_merge = false;

            for &(_, i, j) in &pairs {
                match (merged[i], merged[j]) {
                    (false, false) => {
                        if let Some(ga) = clusters[i].ga.merge(&clusters[j].ga) {
                            merged[i] = true;
                            merged[j] = true;
                            any_merge = true;
                            new_clusters.push(Cluster {
                                ga,
                                keep: clusters[i].keep || clusters[j].keep,
                                formed_by_merge: true,
                            });
                        }
                    }
                    (true, false) => mergecand[j] = true,
                    (false, true) => mergecand[i] = true,
                    (true, true) => {}
                }
            }

            // Elimination: survivors are merge results, merge candidates
            // starved this round, previously merged clusters, and user-kept
            // clusters.
            let mut survivors = new_clusters;
            for (idx, cluster) in clusters.into_iter().enumerate() {
                if merged[idx] {
                    continue; // replaced by its merge result
                }
                if cluster.keep || cluster.formed_by_merge || mergecand[idx] {
                    survivors.push(cluster);
                }
            }
            clusters = survivors;

            if !any_merge {
                break;
            }
        }

        let schema = MediatedSchema::new(clusters.into_iter().map(|c| c.ga));
        if !schema.is_valid_on(&constraints.required_sources) {
            return MatchOutcome::Infeasible;
        }
        let quality = if schema.is_empty() {
            0.0
        } else {
            schema.gas().iter().map(|g| self.ga_quality(g)).sum::<f64>() / schema.len() as f64
        };
        MatchOutcome::Matched { schema, quality }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::JaccardNGram;
    use mube_core::ids::AttrId;
    use mube_core::schema::Schema;
    use mube_core::source::SourceSpec;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn build(schemas: &[&[&str]]) -> (Arc<Universe>, ClusterMatcher) {
        let mut b = Universe::builder();
        for (i, attrs) in schemas.iter().enumerate() {
            b.add_source(SourceSpec::new(
                format!("s{i}"),
                Schema::new(attrs.iter().copied()),
            ));
        }
        let u = Arc::new(b.build().unwrap());
        let m = ClusterMatcher::new(Arc::clone(&u), JaccardNGram::trigram());
        (u, m)
    }

    fn run(
        u: &Universe,
        m: &ClusterMatcher,
        constraints: &Constraints,
    ) -> Option<(MediatedSchema, f64)> {
        let sources: BTreeSet<_> = u.source_ids().collect();
        match m.match_sources(u, &sources, constraints) {
            MatchOutcome::Matched { schema, quality } => Some((schema, quality)),
            MatchOutcome::Infeasible => None,
        }
    }

    #[test]
    fn clusters_identical_names() {
        let (u, m) = build(&[&["title", "price"], &["title", "price"], &["title"]]);
        let c = Constraints::with_max_sources(3).theta(0.75);
        let (schema, quality) = run(&u, &m, &c).unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(quality, 1.0);
        let title_ga = schema.ga_of(a(0, 0)).unwrap();
        assert_eq!(title_ga.len(), 3);
    }

    #[test]
    fn unmatched_singletons_are_pruned() {
        let (u, m) = build(&[&["title", "zzzz"], &["title"]]);
        let c = Constraints::with_max_sources(2).theta(0.75);
        let (schema, _) = run(&u, &m, &c).unwrap();
        // "zzzz" matches nothing → eliminated; only the title GA remains.
        assert_eq!(schema.len(), 1);
        assert!(schema.ga_of(a(0, 1)).is_none());
    }

    #[test]
    fn one_attribute_per_source_per_ga() {
        // Both attributes of source 0 are similar to source 1's "title",
        // but a GA may contain at most one attribute per source.
        let (u, m) = build(&[&["title", "title x"], &["title"]]);
        let c = Constraints::with_max_sources(2).theta(0.3);
        let (schema, _) = run(&u, &m, &c).unwrap();
        for ga in schema.gas() {
            let sources: Vec<_> = ga.sources().collect();
            let distinct: BTreeSet<_> = sources.iter().copied().collect();
            assert_eq!(sources.len(), distinct.len());
        }
    }

    #[test]
    fn threshold_gates_merging() {
        let (u, m) = build(&[&["book title"], &["title"]]);
        // Jaccard3("book title", "title") ≈ 0.375: merges at θ=0.3, not at 0.6.
        let low = Constraints::with_max_sources(2).theta(0.3);
        let (schema, q) = run(&u, &m, &low).unwrap();
        assert_eq!(schema.len(), 1);
        assert!(q >= 0.3);

        let high = Constraints::with_max_sources(2).theta(0.6);
        let (schema, q) = run(&u, &m, &high).unwrap();
        assert!(schema.is_empty());
        assert_eq!(q, 0.0);
    }

    #[test]
    fn ga_constraint_bridges_dissimilar_attributes() {
        // "f name" and "prenom" share no trigrams; a GA constraint bridges
        // them, and "first name" then joins via its similarity to "f name".
        let (u, m) = build(&[&["f name"], &["prenom"], &["first name"]]);
        let bridge = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let c = Constraints::with_max_sources(3)
            .theta(0.30)
            .require_ga(bridge.clone());

        // Without the constraint nothing merges with "prenom".
        let plain = Constraints::with_max_sources(3).theta(0.30);
        let (schema_plain, _) = run(&u, &m, &plain).unwrap();
        assert!(schema_plain.ga_of(a(1, 0)).is_none());

        let (schema, _) = run(&u, &m, &c).unwrap();
        let ga = schema.ga_of(a(1, 0)).expect("bridged GA must survive");
        assert!(ga.contains(a(0, 0)), "constraint preserved");
        assert!(ga.contains(a(2, 0)), "bridge attracted 'first name'");
        assert!(schema.covers_gas(&[bridge]));
    }

    #[test]
    fn keep_clusters_survive_even_unmatched() {
        let (u, m) = build(&[&["alpha"], &["omega"]]);
        let ga = GlobalAttribute::try_new([a(0, 0)]).unwrap();
        let c = Constraints::with_max_sources(2)
            .theta(0.9)
            .require_ga(ga.clone());
        let (schema, _) = run(&u, &m, &c).unwrap();
        assert_eq!(schema.len(), 1);
        assert!(schema.covers_gas(&[ga]));
    }

    #[test]
    fn source_constraint_validity_checked() {
        // Source 1's only attribute matches nothing, so the schema cannot
        // span it; with source 1 in C the match is infeasible.
        let (u, m) = build(&[&["title"], &["zzzz"], &["title"]]);
        let c = Constraints::with_max_sources(3)
            .theta(0.75)
            .require_source(SourceId(1));
        assert!(run(&u, &m, &c).is_none());
        // Without the constraint, matching succeeds (source 1 contributes
        // nothing to the schema).
        let c2 = Constraints::with_max_sources(3).theta(0.75);
        assert!(run(&u, &m, &c2).is_some());
    }

    #[test]
    fn subset_call_only_clusters_selected_sources() {
        let (u, m) = build(&[&["title"], &["title"], &["title"]]);
        let sources: BTreeSet<_> = [SourceId(0), SourceId(2)].into();
        let c = Constraints::with_max_sources(2).theta(0.75);
        match m.match_sources(&u, &sources, &c) {
            MatchOutcome::Matched { schema, .. } => {
                assert_eq!(schema.len(), 1);
                let ga = &schema.gas()[0];
                assert_eq!(ga.len(), 2);
                assert!(!ga.touches_source(SourceId(1)));
            }
            MatchOutcome::Infeasible => panic!("expected match"),
        }
    }

    #[test]
    fn missing_required_source_in_selection_is_infeasible() {
        let (u, m) = build(&[&["title"], &["title"]]);
        let only0: BTreeSet<_> = [SourceId(0)].into();
        let c = Constraints::with_max_sources(2).require_source(SourceId(1));
        assert_eq!(m.match_sources(&u, &only0, &c), MatchOutcome::Infeasible);
    }

    #[test]
    fn ga_constraint_source_outside_selection_is_infeasible() {
        let (u, m) = build(&[&["title"], &["title"]]);
        let only0: BTreeSet<_> = [SourceId(0)].into();
        let ga = GlobalAttribute::try_new([a(1, 0)]).unwrap();
        let c = Constraints::with_max_sources(2).require_ga(ga);
        // required_sources is empty (the GA implies source 1), but source 1
        // is not selected.
        assert_eq!(m.match_sources(&u, &only0, &c), MatchOutcome::Infeasible);
    }

    #[test]
    fn chained_merging_converges() {
        // a–b similar, c–d similar, and the merged pairs are mutually
        // similar through b–c: everything should coalesce into one GA.
        let (u, m) = build(&[
            &["order date"],
            &["order data"],
            &["order daze"],
            &["order dace"],
        ]);
        let c = Constraints::with_max_sources(4).theta(0.5);
        let (schema, q) = run(&u, &m, &c).unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.gas()[0].len(), 4);
        assert!(q >= 0.5);
    }

    #[test]
    fn quality_is_mean_of_ga_qualities() {
        let (u, m) = build(&[&["title", "price"], &["title", "price"]]);
        let c = Constraints::with_max_sources(2).theta(0.75);
        let (schema, q) = run(&u, &m, &c).unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(q, 1.0); // both GAs are exact-name matches
    }

    #[test]
    fn deterministic_output() {
        let (u, m) = build(&[
            &["title", "author", "isbn"],
            &["book title", "writer", "isbn"],
            &["title", "author name"],
        ]);
        let c = Constraints::with_max_sources(3).theta(0.3);
        let r1 = run(&u, &m, &c).unwrap();
        let r2 = run(&u, &m, &c).unwrap();
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, r2.1);
    }

    #[test]
    fn wrong_universe_rejected() {
        let (u1, m) = build(&[&["title"]]);
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("x", Schema::new(["a"])));
        b.add_source(SourceSpec::new("y", Schema::new(["b"])));
        let u2 = b.build().unwrap();
        let sources: BTreeSet<_> = u2.source_ids().collect();
        let c = Constraints::with_max_sources(2);
        assert_eq!(m.match_sources(&u2, &sources, &c), MatchOutcome::Infeasible);
        drop(u1);
    }
}

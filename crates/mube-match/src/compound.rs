//! Compound schema elements — n:m matching via 1:1 matching (§2.1).
//!
//! The paper's formulation is 1:1, but notes it "may be extended to
//! accommodate compound schema elements by replacing the attributes in our
//! definitions with compound elements... This would enable us to handle
//! matching with n:m cardinality by mapping n:m matches to 1:1 matches on
//! compound elements." This module implements that extension:
//!
//! 1. the user (or a heuristic) declares groups of attributes within a
//!    source that act as one unit — e.g. `{first name, last name}`;
//! 2. [`Compounding::derive`] builds a *derived universe* whose schemas
//!    have one attribute per compound element (ungrouped attributes stay
//!    as singletons), with the concatenated member names so lexical
//!    similarity sees the combined text ("first name last name" ≈
//!    "full name");
//! 3. the ordinary 1:1 machinery — Algorithm 1, QEFs, tabu search — runs
//!    on the derived universe;
//! 4. [`Derived::expand`] maps a mediated schema on the derived
//!    universe back to an n:m correspondence over the original attributes.

use std::collections::{BTreeMap, BTreeSet};

use mube_core::error::MubeError;
use mube_core::ga::MediatedSchema;
use mube_core::ids::{AttrId, SourceId};
use mube_core::schema::Schema;
use mube_core::source::{SourceSpec, Universe};

/// Declared attribute groups, per source.
#[derive(Debug, Clone, Default)]
pub struct Compounding {
    /// source → groups of original attribute indices.
    groups: BTreeMap<SourceId, Vec<Vec<u32>>>,
}

/// An n:m correspondence: for each participating source, the set of its
/// original attributes taking part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundGa {
    /// One entry per source (sources are distinct, like Definition 1).
    pub groups: Vec<(SourceId, BTreeSet<AttrId>)>,
}

/// A mediated schema expanded back to original attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompoundSchema {
    /// The n:m correspondences.
    pub gas: Vec<CompoundGa>,
}

/// The derived universe plus the bookkeeping to expand results back.
pub struct Derived {
    /// The derived universe (one attribute per compound element).
    pub universe: Universe,
    /// derived attribute → original attributes.
    members: BTreeMap<AttrId, Vec<AttrId>>,
}

impl Compounding {
    /// Starts with no groups (every attribute its own element).
    pub fn new() -> Self {
        Compounding::default()
    }

    /// Declares that the given attribute indices of `source` form one
    /// compound element.
    ///
    /// Fails if the group has fewer than two members, repeats an index, or
    /// overlaps a previously declared group of the same source.
    pub fn add_group(
        &mut self,
        source: SourceId,
        indices: impl IntoIterator<Item = u32>,
    ) -> Result<(), MubeError> {
        let group: Vec<u32> = {
            let mut g: Vec<u32> = indices.into_iter().collect();
            g.sort_unstable();
            g
        };
        if group.len() < 2 {
            return Err(MubeError::InvalidParameter {
                detail: "a compound element needs at least two attributes".into(),
            });
        }
        if group.windows(2).any(|w| w[0] == w[1]) {
            return Err(MubeError::InvalidParameter {
                detail: "a compound element cannot repeat an attribute".into(),
            });
        }
        let existing = self.groups.entry(source).or_default();
        for g in existing.iter() {
            if g.iter().any(|i| group.binary_search(i).is_ok()) {
                return Err(MubeError::ConstraintConflict {
                    detail: format!("attribute of {source} already in another compound element"),
                });
            }
        }
        existing.push(group);
        Ok(())
    }

    /// Builds the derived universe. Compound elements become single
    /// attributes named by joining their members' names in schema order;
    /// cardinalities, signatures, and characteristics carry over untouched
    /// (they describe the source, not its schema shape).
    ///
    /// Fails if any declared index is out of range for its source.
    pub fn derive(&self, universe: &Universe) -> Result<Derived, MubeError> {
        let mut builder = Universe::builder();
        let mut members: BTreeMap<AttrId, Vec<AttrId>> = BTreeMap::new();
        for source in universe.sources() {
            let sid = source.id();
            let declared = self.groups.get(&sid).cloned().unwrap_or_default();
            for group in &declared {
                for &i in group {
                    if source.schema().attr(i as usize).is_none() {
                        return Err(MubeError::UnknownAttribute {
                            detail: AttrId::new(sid, i).to_string(),
                        });
                    }
                }
            }
            let grouped: BTreeSet<u32> = declared.iter().flatten().copied().collect();

            // Derived schema: compound elements first come where their
            // first member sat; we simply emit elements in order of their
            // smallest member index to keep the schema stable.
            let mut elements: Vec<Vec<u32>> = declared;
            for (i, _) in source.schema().iter() {
                let i = i as u32;
                if !grouped.contains(&i) {
                    elements.push(vec![i]);
                }
            }
            elements.sort_by_key(|e| e[0]);

            let names: Vec<String> = elements
                .iter()
                .map(|element| {
                    element
                        .iter()
                        .map(|&i| {
                            source
                                .schema()
                                .attr(i as usize)
                                .expect("indices validated above")
                                .name()
                                .to_string()
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let mut spec = SourceSpec::new(source.name(), Schema::new(names))
                .cardinality(source.cardinality());
            if let Some(sig) = source.signature() {
                spec = spec.signature(sig.clone());
            }
            for (name, &value) in source.characteristics() {
                spec = spec.characteristic(name.clone(), value);
            }
            let derived_sid = builder.add_source(spec);
            for (j, element) in elements.iter().enumerate() {
                members.insert(
                    AttrId::new(derived_sid, j as u32),
                    element.iter().map(|&i| AttrId::new(sid, i)).collect(),
                );
            }
        }
        Ok(Derived {
            universe: builder.build()?,
            members,
        })
    }
}

impl Derived {
    /// The original attributes behind a derived attribute.
    pub fn members_of(&self, derived: AttrId) -> Option<&[AttrId]> {
        self.members.get(&derived).map(Vec::as_slice)
    }

    /// Expands a mediated schema over the derived universe into an n:m
    /// correspondence over the original attributes.
    pub fn expand(&self, schema: &MediatedSchema) -> CompoundSchema {
        let gas = schema
            .gas()
            .iter()
            .map(|ga| CompoundGa {
                groups: ga
                    .attrs()
                    .iter()
                    .map(|&derived| {
                        let originals: BTreeSet<AttrId> = self
                            .members
                            .get(&derived)
                            .expect("schema attrs come from the derived universe")
                            .iter()
                            .copied()
                            .collect();
                        let source = originals
                            .iter()
                            .next()
                            .expect("compound elements are non-empty")
                            .source;
                        (source, originals)
                    })
                    .collect(),
            })
            .collect();
        CompoundSchema { gas }
    }
}

impl CompoundGa {
    /// True if any group has more than one attribute, i.e. this is a
    /// genuine n:m (not 1:1) correspondence.
    pub fn is_nm(&self) -> bool {
        self.groups.iter().any(|(_, g)| g.len() > 1)
    }

    /// Total original attributes involved.
    pub fn width(&self) -> usize {
        self.groups.iter().map(|(_, g)| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Similarity, TokenDice};
    use crate::ClusterMatcher;
    use mube_core::constraints::Constraints;
    use mube_core::matchop::{MatchOperator, MatchOutcome};
    use std::sync::Arc;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("split", Schema::new(["first name", "last name", "price"]))
                .cardinality(10)
                .characteristic("mttf", 5.0),
        );
        b.add_source(
            SourceSpec::new("joined", Schema::new(["full name", "price"])).cardinality(20),
        );
        b.build().unwrap()
    }

    #[test]
    fn add_group_validation() {
        let mut c = Compounding::new();
        assert!(c.add_group(SourceId(0), [0]).is_err(), "needs two members");
        assert!(c.add_group(SourceId(0), [0, 0]).is_err(), "no repeats");
        assert!(c.add_group(SourceId(0), [0, 1]).is_ok());
        assert!(
            c.add_group(SourceId(0), [1, 2]).is_err(),
            "overlap rejected"
        );
        assert!(
            c.add_group(SourceId(1), [0, 1]).is_ok(),
            "other sources independent"
        );
    }

    #[test]
    fn derive_concatenates_names_and_keeps_singletons() {
        let u = universe();
        let mut c = Compounding::new();
        c.add_group(SourceId(0), [0, 1]).unwrap();
        let derived = c.derive(&u).unwrap();
        let du = &derived.universe;
        assert_eq!(du.source(SourceId(0)).schema().len(), 2);
        assert_eq!(du.attr_name(a(0, 0)), Some("first name last name"));
        assert_eq!(du.attr_name(a(0, 1)), Some("price"));
        // Unmodified source carries over.
        assert_eq!(du.source(SourceId(1)).schema().len(), 2);
        // Source-level data carries over.
        assert_eq!(du.source(SourceId(0)).cardinality(), 10);
        assert_eq!(du.source(SourceId(0)).characteristic("mttf"), Some(5.0));
    }

    #[test]
    fn derive_rejects_out_of_range() {
        let u = universe();
        let mut c = Compounding::new();
        c.add_group(SourceId(0), [0, 9]).unwrap();
        assert!(matches!(
            c.derive(&u),
            Err(MubeError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn members_map_back() {
        let u = universe();
        let mut c = Compounding::new();
        c.add_group(SourceId(0), [0, 1]).unwrap();
        let derived = c.derive(&u).unwrap();
        assert_eq!(derived.members_of(a(0, 0)), Some(&[a(0, 0), a(0, 1)][..]));
        assert_eq!(derived.members_of(a(0, 1)), Some(&[a(0, 2)][..]));
        assert_eq!(derived.members_of(a(9, 0)), None);
    }

    #[test]
    fn nm_match_found_through_compounding() {
        // "first name"+"last name" (2 attrs) should match "full name"
        // (1 attr): a 2:1 correspondence, impossible under 1:1 matching.
        let u = universe();

        // Without compounding, token-Dice cannot reach θ=0.5:
        // {first,name} vs {full,name} = 0.5; {last,name} vs {full,name} = 0.5.
        // (Exactly at the boundary, so use θ=0.6 to make the point.)
        let sim = TokenDice;
        assert!(sim.similarity("first name", "full name") < 0.6);

        let mut c = Compounding::new();
        c.add_group(SourceId(0), [0, 1]).unwrap();
        let derived = c.derive(&u).unwrap();
        // "first name last name" vs "full name": {first,name,last} vs
        // {full,name} → 2·1/5 = 0.4... token overlap is weak; use the
        // max-ensemble which also sees the character-level signal.
        let du = Arc::new(derived.universe.clone());
        let matcher = ClusterMatcher::new(Arc::clone(&du), crate::Ensemble::lexical());
        let sources: BTreeSet<SourceId> = du.source_ids().collect();
        let constraints = Constraints::with_max_sources(2).theta(0.35);
        let MatchOutcome::Matched { schema, .. } =
            matcher.match_sources(&du, &sources, &constraints)
        else {
            panic!("expected a match");
        };
        let expanded = derived.expand(&schema);
        // Find the name correspondence and check it is genuinely 2:1.
        let name_ga = expanded
            .gas
            .iter()
            .find(|ga| ga.groups.iter().any(|(_, g)| g.len() == 2))
            .expect("the compound name element matched");
        assert!(name_ga.is_nm());
        assert_eq!(name_ga.width(), 3);
        let split_group = name_ga
            .groups
            .iter()
            .find(|(s, _)| *s == SourceId(0))
            .expect("split source participates");
        assert_eq!(split_group.1, BTreeSet::from([a(0, 0), a(0, 1)]));
    }

    #[test]
    fn expand_preserves_one_to_one_parts() {
        let u = universe();
        let c = Compounding::new(); // no groups at all
        let derived = c.derive(&u).unwrap();
        let du = Arc::new(derived.universe.clone());
        let matcher = ClusterMatcher::new(Arc::clone(&du), TokenDice);
        let sources: BTreeSet<SourceId> = du.source_ids().collect();
        let constraints = Constraints::with_max_sources(2).theta(0.9);
        let MatchOutcome::Matched { schema, .. } =
            matcher.match_sources(&du, &sources, &constraints)
        else {
            panic!("expected a match");
        };
        let expanded = derived.expand(&schema);
        // Only "price" ↔ "price" matches at θ=0.9; it is 1:1.
        assert_eq!(expanded.gas.len(), 1);
        assert!(!expanded.gas[0].is_nm());
        assert_eq!(expanded.gas[0].width(), 2);
    }
}

//! Property tests for the similarity measures and Algorithm 1 over
//! arbitrary generated schemas.

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::matchop::{MatchOperator, MatchOutcome};
use mube_core::schema::Schema;
use mube_core::source::{SourceSpec, Universe};
use mube_match::similarity::{JaccardNGram, NormalizedLevenshtein, Similarity, TokenDice};
use mube_match::{ClusterMatcher, Ensemble};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    // Lowercase words of 1-3 tokens, like normalized form labels.
    prop::collection::vec("[a-z]{1,8}", 1..4).prop_map(|words| words.join(" "))
}

fn universe_strategy() -> impl Strategy<Value = Universe> {
    prop::collection::vec(prop::collection::vec(name_strategy(), 1..5), 2..6).prop_map(|schemas| {
        let mut b = Universe::builder();
        for (i, attrs) in schemas.into_iter().enumerate() {
            // Dedupe within one schema: real interfaces don't repeat
            // labels and GAs forbid same-source duplicates.
            let mut seen = BTreeSet::new();
            let mut unique: Vec<String> = attrs
                .into_iter()
                .filter(|a| seen.insert(a.clone()))
                .collect();
            if unique.is_empty() {
                unique.push(format!("attr{i}"));
            }
            b.add_source(SourceSpec::new(format!("s{i}"), Schema::new(unique)));
        }
        b.build()
            .expect("non-empty universes with non-empty schemas")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// All measures: bounded, symmetric, reflexive (identical names → 1).
    #[test]
    fn measures_are_metrics_like(a in name_strategy(), b in name_strategy()) {
        let measures: Vec<Box<dyn Similarity>> = vec![
            Box::new(JaccardNGram::trigram()),
            Box::new(JaccardNGram::new(2)),
            Box::new(NormalizedLevenshtein),
            Box::new(TokenDice),
            Box::new(Ensemble::lexical()),
        ];
        for m in &measures {
            let ab = m.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ab), "{}({a},{b}) = {ab}", m.name());
            prop_assert!((ab - m.similarity(&b, &a)).abs() < 1e-12, "{} asymmetric", m.name());
            prop_assert!((m.similarity(&a, &a) - 1.0).abs() < 1e-12, "{} not reflexive", m.name());
        }
    }

    /// Algorithm 1 output is always a valid mediated schema whose GAs meet
    /// the threshold, for arbitrary universes and thresholds.
    #[test]
    fn clustering_output_always_valid(universe in universe_strategy(), theta in 0.05f64..1.0) {
        let universe = Arc::new(universe);
        let matcher = ClusterMatcher::new(Arc::clone(&universe), JaccardNGram::trigram());
        let sources: BTreeSet<_> = universe.source_ids().collect();
        let constraints = Constraints::with_max_sources(universe.len()).theta(theta);
        match matcher.match_sources(&universe, &sources, &constraints) {
            MatchOutcome::Matched { schema, quality } => {
                prop_assert!(schema.gas_disjoint());
                prop_assert!((0.0..=1.0).contains(&quality));
                let measure = JaccardNGram::trigram();
                for ga in schema.gas() {
                    // No user constraints → every GA grew by merging, so it
                    // has ≥ 2 attributes and meets θ.
                    prop_assert!(ga.len() >= 2);
                    let attrs: Vec<_> = ga.attrs().iter().copied().collect();
                    let mut best = 0.0f64;
                    for i in 0..attrs.len() {
                        for j in (i + 1)..attrs.len() {
                            best = best.max(measure.similarity(
                                universe.attr_name(attrs[i]).unwrap(),
                                universe.attr_name(attrs[j]).unwrap(),
                            ));
                        }
                    }
                    prop_assert!(best >= theta - 1e-9, "GA quality {best} < θ {theta}");
                    // Definition 1: one attribute per source.
                    let srcs: BTreeSet<_> = ga.sources().collect();
                    prop_assert_eq!(srcs.len(), ga.len());
                }
            }
            MatchOutcome::Infeasible => {
                // Only possible with source constraints, which we don't set.
                prop_assert!(false, "unconstrained match must not be infeasible");
            }
        }
    }

    /// Raising θ can only shrink the set of matched attributes.
    #[test]
    fn higher_theta_matches_fewer_attributes(universe in universe_strategy()) {
        let universe = Arc::new(universe);
        let matcher = ClusterMatcher::new(Arc::clone(&universe), JaccardNGram::trigram());
        let sources: BTreeSet<_> = universe.source_ids().collect();
        let count_matched = |theta: f64| -> usize {
            let constraints = Constraints::with_max_sources(universe.len()).theta(theta);
            match matcher.match_sources(&universe, &sources, &constraints) {
                MatchOutcome::Matched { schema, .. } => {
                    schema.gas().iter().map(mube_core::GlobalAttribute::len).sum()
                }
                MatchOutcome::Infeasible => 0,
            }
        };
        let low = count_matched(0.2);
        let high = count_matched(0.8);
        prop_assert!(high <= low, "θ=0.8 matched {high} > θ=0.2 matched {low}");
    }
}

//! Micro-benchmarks for full objective evaluation (matching + β filtering
//! + all five QEFs), cached and uncached.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_bench::{Setup, Variant, EXPERIMENT_SEED};
use mube_core::SourceId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_objective(c: &mut Criterion) {
    let setup = Setup::small(60);
    let constraints = Variant::Unconstrained.constraints(&setup, 20, EXPERIMENT_SEED);
    let problem = setup.problem(constraints).unwrap();
    let all: Vec<SourceId> = setup.universe().source_ids().collect();
    let mut rng = StdRng::seed_from_u64(3);

    let mut group = c.benchmark_group("objective_uncached");
    for &k in &[5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut picks = all.clone();
                    picks.shuffle(&mut rng);
                    picks.into_iter().take(k).collect::<BTreeSet<_>>()
                },
                |sources| problem.objective(black_box(&sources)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // Cached path: repeated evaluation of one candidate.
    let fixed: BTreeSet<SourceId> = all.iter().copied().take(10).collect();
    problem.objective(&fixed);
    c.bench_function("objective_cached", |b| {
        b.iter(|| problem.objective(black_box(&fixed)));
    });
}

criterion_group!(benches, bench_objective);
criterion_main!(benches);

//! Server-side solve throughput under the `mube-serve` worker pool.
//!
//! The question a deployment cares about: with `K` concurrent sessions all
//! solving over the *same* universe (sharing one similarity cache), how
//! much does adding worker threads buy? Each measurement pushes one solve
//! job per session through a [`mube_serve::WorkerPool`] and waits for all
//! of them — comparing a single-threaded pool against a multi-threaded
//! one on identical work.

use std::sync::mpsc;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_bench::{Setup, Variant, EXPERIMENT_SEED};
use mube_opt::TabuSearch;
use mube_serve::WorkerPool;

/// Solver budget per session — small, so the benchmark measures pool
/// scaling rather than one long search.
const BUDGET: u64 = 200;

/// Concurrent sessions per measurement.
const SESSIONS: usize = 8;

fn bench_pool_throughput(c: &mut Criterion) {
    let setup = Setup::small(40);
    let constraints = Variant::Unconstrained.constraints(&setup, 10, EXPERIMENT_SEED);
    let problem = Arc::new(setup.problem(constraints).unwrap());
    let solver = Arc::new(TabuSearch {
        max_evaluations: BUDGET,
        ..TabuSearch::default()
    });

    let mut group = c.benchmark_group("serve_pool_throughput");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            &threads,
            |b, _| {
                b.iter(|| {
                    let (tx, rx) = mpsc::channel();
                    for i in 0..SESSIONS {
                        let problem = Arc::clone(&problem);
                        let solver = Arc::clone(&solver);
                        let tx = tx.clone();
                        // Distinct seeds, like distinct sessions re-solving.
                        assert!(pool.execute(move || {
                            let solution = problem
                                .solve(solver.as_ref(), EXPERIMENT_SEED + i as u64)
                                .unwrap();
                            tx.send(solution.quality).unwrap();
                        }));
                    }
                    let mut total = 0.0;
                    for _ in 0..SESSIONS {
                        total += rx.recv().unwrap();
                    }
                    total
                });
            },
        );
        pool.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_pool_throughput);
criterion_main!(benches);

//! Benchmarks fault-tolerant query execution: wall time of a full
//! executor run (retries, breakers, degradation accounting included) at
//! 0%, 10%, and 30% injected source-failure rates.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_core::SourceId;
use mube_exec::{
    DataSourceBackend, Executor, FaultInjector, FaultSpec, Query, RetryPolicy, WindowBackend,
};
use mube_synth::{generate, SynthConfig};

fn bench_execute_under_faults(c: &mut Criterion) {
    let synth = generate(&SynthConfig::small(40), 2007);
    let universe = Arc::clone(&synth.universe);
    let sources: BTreeSet<SourceId> = universe.sources().map(mube_core::Source::id).collect();
    let query = Query::range(0, u64::MAX);

    let mut group = c.benchmark_group("execute_makespan");
    for &pct in &[0u32, 10, 30] {
        let backend: Box<dyn DataSourceBackend> = if pct == 0 {
            Box::new(WindowBackend::new(&synth))
        } else {
            let spec = FaultSpec::parse(&format!("rate={}", f64::from(pct) / 100.0)).unwrap();
            Box::new(FaultInjector::new(
                WindowBackend::new(&synth),
                &universe,
                &spec,
                7,
            ))
        };
        let executor = Executor::new(Arc::clone(&universe), backend)
            .with_policy(RetryPolicy::default().with_jitter_seed(7));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pct}pct")),
            &pct,
            |b, _| {
                b.iter(|| {
                    let report = executor.execute(black_box(&sources), &query);
                    black_box((report.makespan, report.degradation.failed.len()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_execute_under_faults);
criterion_main!(benches);

//! Scale benchmarks: LSH bucketing throughput and cluster-level
//! (hierarchical) vs flat solving at 1k/10k/100k sources.
//!
//! Besides the usual per-iteration timings, this bench writes
//! `BENCH_scale.json` at the workspace root: one single-shot wall-clock
//! comparison per universe size, flat (materialize everything, one
//! `Problem`) against the `mube-scale` pipeline (streaming ingest →
//! relevance pruning → LSH blocking → two-level solve). The flat path pays
//! for every tuple in the catalog up front; the pipeline's costs are
//! bounded by `top_k`, which is why it wins from 10k sources on.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::source::Universe;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::{CancelToken, TabuSearch};
use mube_scale::SourceStream as _;
use mube_scale::{block, scale_solve, LshConfig, ScaleOptions, SourceRecord, SynthStream};
use mube_synth::{StreamingUniverse, SynthConfig};

const SEED: u64 = 0x1CDE_2007;
/// Total evaluation budget per comparison arm. The flat arm spends it in
/// one solve; the hierarchical arm splits it across its two levels, so
/// both arms evaluate the same number of candidate subsets.
const EVALS: u64 = 400;
/// Final selection size `m`.
const MAX_SOURCES: usize = 10;

fn solver(max_evaluations: u64) -> TabuSearch {
    TabuSearch {
        max_evaluations,
        ..TabuSearch::default()
    }
}

/// Streams the first `n` records of an `n`-source scale universe without
/// forcing signatures — the exact input the blocking stage sees.
fn records(n: usize) -> Vec<SourceRecord> {
    let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::scale(n), SEED));
    (0..stream.len()).map(|i| stream.get(i)).collect()
}

fn bench_lsh_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_block");
    for survivors in [500usize, 1_500] {
        let recs = records(survivors);
        group.bench_with_input(BenchmarkId::from_parameter(survivors), &recs, |b, recs| {
            b.iter(|| block(recs, &LshConfig::default()));
        });
    }
    group.finish();
}

/// Flat baseline: materialize the whole streamed universe (every tuple
/// pool → PCSA signature), build one `Problem`, solve. Returns wall-clock
/// milliseconds and solution quality.
fn flat_solve(n: usize) -> (f64, f64) {
    let t0 = Instant::now();
    let streamed = StreamingUniverse::new(SynthConfig::scale(n), SEED);
    let mut builder = Universe::builder();
    for source in streamed.iter() {
        builder.add_source(source.into_spec());
    }
    let universe = Arc::new(builder.build().expect("streamed specs are valid"));
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    let constraints = Constraints::with_max_sources(MAX_SOURCES)
        .theta(0.75)
        .beta(2);
    let problem = Problem::new(universe, matcher, paper_default_qefs("mttf"), constraints)
        .expect("flat problem");
    let solution = problem.solve(&solver(EVALS), SEED).expect("flat solve");
    (t0.elapsed().as_secs_f64() * 1000.0, solution.quality)
}

/// Cluster-level path: the full `mube-scale` pipeline over the same
/// streamed universe. Signatures are synthesized only for the `top_k`
/// relevance survivors.
fn hierarchical_solve(n: usize) -> (f64, f64) {
    let t0 = Instant::now();
    let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::scale(n), SEED));
    let mut opts = ScaleOptions::new(MAX_SOURCES);
    opts.seed = SEED;
    opts.lsh_threads = 4;
    // Half the total budget per level: coarse + fine together spend EVALS.
    let report =
        scale_solve(&stream, &opts, &solver(EVALS / 2), &CancelToken::none()).expect("scale solve");
    (t0.elapsed().as_secs_f64() * 1000.0, report.solution.quality)
}

fn bench_solve_1k(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_1k");
    group.sample_size(10);
    group.bench_function("flat", |b| b.iter(|| flat_solve(1_000)));
    group.bench_function("cluster", |b| b.iter(|| hierarchical_solve(1_000)));
    group.finish();
}

criterion_group!(benches, bench_lsh_block, bench_solve_1k);

/// Single-shot comparison at 1k/10k/100k, written to `BENCH_scale.json`.
fn write_bench_json() {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut rows = String::new();
    for (i, &n) in [1_000usize, 10_000, 100_000].iter().enumerate() {
        let block_ms = {
            let recs = records(n.min(1_500));
            let t0 = Instant::now();
            let blocks = block(&recs, &LshConfig::default());
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            eprintln!(
                "scale json: blocked {} survivors into {} clusters in {ms:.1} ms",
                recs.len(),
                blocks.clusters.len()
            );
            ms
        };
        let (flat_ms, flat_q) = flat_solve(n);
        let (hier_ms, hier_q) = hierarchical_solve(n);
        eprintln!(
            "scale json: n={n} flat {flat_ms:.0} ms (Q={flat_q:.4}) \
             vs cluster {hier_ms:.0} ms (Q={hier_q:.4})"
        );
        if i > 0 {
            rows.push(',');
        }
        write!(
            rows,
            "{{\"sources\":{n},\"lsh_block_ms\":{block_ms:.2},\
             \"flat_ms\":{flat_ms:.2},\"flat_quality\":{flat_q:.4},\
             \"cluster_ms\":{hier_ms:.2},\"cluster_quality\":{hier_q:.4}}}"
        )
        .expect("string write");
    }
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"generated_unix\": {unix_secs},\n  \
         \"seed\": {SEED},\n  \"solver\": \"tabu\",\n  \"max_evaluations\": {EVALS},\n  \
         \"max_sources\": {MAX_SOURCES},\n  \"top_k\": 1500,\n  \"rows\": [{rows}]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    eprintln!("scale json: wrote {path}");
}

fn main() {
    benches();
    write_bench_json();
}

//! Portfolio scaling benchmark: the same 8-member portfolio solved at
//! 1/2/4/8 OS threads. The determinism contract says every thread count
//! returns byte-identical results, so this measures pure wall-clock
//! scaling of the parallel multi-start — the solve-latency trajectory
//! BENCH_*.json tracks.
//!
//! Each iteration gets a freshly built problem (`iter_batched`) so the
//! sharded objective cache is cold and the delta evaluators do real work,
//! as they would on a user's first solve.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mube_bench::{Setup, Variant, EXPERIMENT_SEED};
use mube_opt::Portfolio;

const SOURCES: usize = 40;
const MAX_SOURCES: usize = 10;

fn bench_portfolio_threads(c: &mut Criterion) {
    let setup = Setup::small(SOURCES);
    let constraints = Variant::Unconstrained.constraints(&setup, MAX_SOURCES, EXPERIMENT_SEED);
    let mut group = c.benchmark_group("portfolio_solve");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let portfolio = Portfolio::from_spec("tabu,sls,anneal,pso", 2)
            .expect("spec is valid")
            .threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &portfolio,
            |b, portfolio| {
                b.iter_batched(
                    || setup.problem(constraints.clone()).expect("valid problem"),
                    |problem| portfolio.run(&problem, EXPERIMENT_SEED),
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// The single-solver baseline the portfolio is compared against.
fn bench_single_solver_baseline(c: &mut Criterion) {
    let setup = Setup::small(SOURCES);
    let constraints = Variant::Unconstrained.constraints(&setup, MAX_SOURCES, EXPERIMENT_SEED);
    let mut group = c.benchmark_group("portfolio_baseline");
    group.sample_size(10);
    let tabu = mube_bench::experiment_tabu();
    group.bench_function("tabu_alone", |b| {
        b.iter_batched(
            || setup.problem(constraints.clone()).expect("valid problem"),
            |problem| problem.solve(&tabu, EXPERIMENT_SEED).expect("feasible"),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_portfolio_threads,
    bench_single_solver_baseline
);
criterion_main!(benches);

//! Micro-benchmarks for the PCSA sketch: insert throughput, union
//! composition, and estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};
use std::hint::black_box;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcsa_insert");
    for &n in &[10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sig = PcsaSignature::new(PcsaConfig::new(64, 32, 7));
                for k in 0..n {
                    sig.insert(black_box(k));
                }
                sig
            });
        });
    }
    group.finish();
}

fn bench_union_and_estimate(c: &mut Criterion) {
    let config = PcsaConfig::new(64, 32, 7);
    let sigs: Vec<PcsaSignature> = (0..32u64)
        .map(|i| {
            let mut s = PcsaSignature::new(config.clone());
            for k in 0..50_000 {
                s.insert(i * 10_000 + k);
            }
            s
        })
        .collect();

    let mut group = c.benchmark_group("pcsa_union");
    for &k in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = sigs[0].clone();
                for s in &sigs[1..k] {
                    acc.union_assign(black_box(s)).unwrap();
                }
                acc.estimate()
            });
        });
    }
    group.finish();

    c.bench_function("pcsa_estimate", |b| {
        b.iter(|| black_box(&sigs[0]).estimate());
    });
}

criterion_group!(benches, bench_insert, bench_union_and_estimate);
criterion_main!(benches);

//! End-to-end solve benchmarks: one `µBE` iteration under each optimizer at
//! a fixed small budget. This is the wall-clock a user feels per feedback
//! round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_bench::{Setup, Variant, EXPERIMENT_SEED};
use mube_opt::{
    ParticleSwarm, SimulatedAnnealing, StochasticLocalSearch, SubsetSolver, TabuSearch,
};

const BUDGET: u64 = 400;

fn solvers() -> Vec<Box<dyn SubsetSolver>> {
    vec![
        Box::new(TabuSearch {
            max_evaluations: BUDGET,
            ..TabuSearch::default()
        }),
        Box::new(StochasticLocalSearch {
            max_evaluations: BUDGET,
            ..Default::default()
        }),
        Box::new(SimulatedAnnealing {
            max_evaluations: BUDGET,
            ..Default::default()
        }),
        Box::new(ParticleSwarm {
            max_evaluations: BUDGET,
            ..Default::default()
        }),
    ]
}

fn bench_solve(c: &mut Criterion) {
    let setup = Setup::small(40);
    let constraints = Variant::Unconstrained.constraints(&setup, 10, EXPERIMENT_SEED);
    let problem = setup.problem(constraints).unwrap();
    let mut group = c.benchmark_group("solve_one_iteration");
    group.sample_size(10);
    for solver in solvers() {
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.name()),
            &solver,
            |b, solver| {
                b.iter(|| problem.solve(solver.as_ref(), EXPERIMENT_SEED).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);

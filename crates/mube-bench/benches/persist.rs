//! Durability-layer micro-benchmarks for the `mube-serve` session journal.
//!
//! Two costs bound a deployment's choices: the per-request tax of
//! journaling an event (WAL append, by fsync policy — `never` isolates the
//! encode+write path, `always` shows the full durability price), and the
//! restart tax of replaying the log (snapshot + tail decode at 1k and 10k
//! events, with and without compaction having folded the tail away).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_serve::{Event, FsyncPolicy, Journal};

/// A typical feedback body, sized like real traffic.
const BODY: &str = "{\"actions\":[{\"op\":\"pin\",\"source\":\"site0042\"},\
                    {\"op\":\"weight\",\"qef\":\"coverage\",\"value\":0.4}]}";

/// A fresh per-measurement journal directory.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mube-persist-bench-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn event(i: u64) -> Event {
    Event::Feedback {
        session: 1 + (i % 8),
        body: BODY.to_string(),
    }
}

/// Seeds a journal with `n` events plus the session-create records that
/// keep them live through compaction, then drops the handle.
fn seed_journal(dir: &Path, n: u64, snapshot_every: u64) {
    let (journal, _, _) = Journal::open(dir, FsyncPolicy::Never, snapshot_every).unwrap();
    for s in 1..=8u64 {
        journal
            .append(Event::SessionCreate {
                id: s,
                catalog_id: 1,
                body: "{\"catalog\":1,\"seed\":7}".to_string(),
            })
            .unwrap();
    }
    for i in 0..n {
        journal.append(event(i)).unwrap();
    }
    journal.flush().unwrap();
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    for (policy, name) in [
        (FsyncPolicy::Never, "fsync-never"),
        (FsyncPolicy::Always, "fsync-always"),
    ] {
        let dir = fresh_dir(name);
        // One long-lived journal; compaction disabled so the measurement is
        // pure append, not amortized snapshot work.
        let (journal, _, _) = Journal::open(&dir, policy, u64::MAX).unwrap();
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                journal.append(event(i)).unwrap();
                i += 1;
                i
            });
        });
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_replay");
    group.sample_size(10);
    for n in [1_000u64, 10_000] {
        // All events in the tail: replay pays a full scan+decode.
        let tail_dir = fresh_dir("tail");
        seed_journal(&tail_dir, n, u64::MAX);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}-events-tail")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let (journal, events, report) =
                        Journal::open(&tail_dir, FsyncPolicy::Never, u64::MAX).unwrap();
                    assert!(report.corruption.is_none());
                    assert_eq!(events.len() as u64, n + 8);
                    drop(journal);
                    events.len()
                });
            },
        );
        let _ = std::fs::remove_dir_all(&tail_dir);

        // Compaction ran while seeding: replay reads mostly the snapshot.
        let snap_dir = fresh_dir("snap");
        seed_journal(&snap_dir, n, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}-events-snapshotted")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let (journal, events, report) =
                        Journal::open(&snap_dir, FsyncPolicy::Never, u64::MAX).unwrap();
                    assert!(report.corruption.is_none());
                    assert!(report.snapshot_events > 0, "seeding should have compacted");
                    assert_eq!(events.len() as u64, n + 8);
                    drop(journal);
                    events.len()
                });
            },
        );
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_replay);
criterion_main!(benches);

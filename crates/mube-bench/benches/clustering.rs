//! Micro-benchmarks for Algorithm 1 (greedy constrained similarity
//! clustering): the dominant cost of every objective evaluation.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mube_bench::Setup;
use mube_core::constraints::Constraints;
use mube_core::matchop::MatchOperator;
use mube_core::SourceId;
use std::hint::black_box;

fn bench_match(c: &mut Criterion) {
    let setup = Setup::small(60);
    let mut group = c.benchmark_group("cluster_match");
    for &k in &[5usize, 10, 20, 40] {
        let sources: BTreeSet<SourceId> = setup.universe().source_ids().take(k).collect();
        let constraints = Constraints::with_max_sources(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                setup.matcher.match_sources(
                    setup.universe(),
                    black_box(&sources),
                    black_box(&constraints),
                )
            });
        });
    }
    group.finish();
}

fn bench_match_with_ga_constraints(c: &mut Criterion) {
    let setup = Setup::small(60);
    let sources: BTreeSet<SourceId> = setup.universe().source_ids().take(20).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let pool: Vec<SourceId> = sources.iter().copied().collect();
    let mut constraints = Constraints::with_max_sources(20);
    for concept in 0..2 {
        if let Some(ga) = setup.synth.ground_truth.make_ga_constraint(
            setup.universe(),
            &pool,
            concept,
            5,
            &mut rng,
        ) {
            constraints.required_gas.push(ga);
        }
    }
    c.bench_function("cluster_match_seeded", |b| {
        b.iter(|| {
            setup.matcher.match_sources(
                setup.universe(),
                black_box(&sources),
                black_box(&constraints),
            )
        });
    });
}

fn bench_similarity_cache_build(c: &mut Criterion) {
    use mube_match::similarity::JaccardNGram;
    use mube_match::SimilarityCache;
    let setup = Setup::small(60);
    c.bench_function("similarity_cache_build", |b| {
        b.iter(|| SimilarityCache::build(black_box(setup.universe()), &JaccardNGram::trigram()));
    });
}

criterion_group!(
    benches,
    bench_match,
    bench_match_with_ga_constraints,
    bench_similarity_cache_build
);
criterion_main!(benches);

//! §7.4 — robustness to weight perturbation.
//!
//! The paper randomly perturbs all QEF weights by up to ±15% and reports
//! that "perturbing the weights caused at most 1 GA in the solution to
//! change, and the selected sources rarely changed". We repeat the
//! experiment: solve with the default weights, then re-solve under
//! perturbed weights and diff the solutions.
//!
//! The re-solves *warm-start* from the baseline solution
//! ([`mube_opt::InitStrategy::Provided`]), matching `µBE`'s iterative
//! interaction model in which each run continues from the current solution.
//! This isolates the effect of the weight change from search randomness: a
//! cold restart of any stochastic search would differ from the baseline for
//! reasons unrelated to the weights.

use mube_core::qefs::paper_default_qefs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// Diff of one perturbed run against the baseline.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Trial index.
    pub index: usize,
    /// Source membership changes (added + removed).
    pub sources_changed: usize,
    /// GAs present on one side but not the other.
    pub gas_changed: usize,
    /// Quality under the perturbed weights.
    pub quality: f64,
}

/// Runs the perturbation trials.
pub fn sweep(scale: Scale) -> Vec<Trial> {
    let (universe, m, trials) = match scale {
        Scale::Paper => (200, 20, 10),
        Scale::Quick => (50, 8, 4),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
    let mut problem = setup.problem(constraints).expect("constraints are valid");
    let baseline = timed_solve(&problem, &scale.tabu(), EXPERIMENT_SEED)
        .expect("paper workloads are feasible")
        .solution;

    let base_weights: Vec<f64> = baseline.qef_scores.iter().map(|&(_, w, _)| w).collect();
    // Warm-start the perturbed solves from the baseline solution.
    let warm = mube_opt::TabuSearch {
        init: mube_opt::InitStrategy::Provided(
            baseline.sources.iter().map(|s| s.index()).collect(),
        ),
        ..scale.tabu()
    };
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 0xF00D);
    let mut out = Vec::new();
    for index in 0..trials {
        // Perturb each weight by up to ±15% (multiplicative), renormalize.
        let mut weights: Vec<f64> = base_weights
            .iter()
            .map(|w| w * (1.0 + rng.random_range(-0.15..=0.15)))
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let qefs = paper_default_qefs("mttf")
            .with_weights(&weights)
            .expect("perturbed weights are valid");
        problem.set_qefs(qefs);
        let solved = timed_solve(&problem, &warm, EXPERIMENT_SEED)
            .expect("paper workloads are feasible")
            .solution;
        let diff = baseline.diff(&solved);
        out.push(Trial {
            index,
            sources_changed: diff.sources_changed(),
            gas_changed: diff.gas_changed,
            quality: solved.quality,
        });
    }
    out
}

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let trials = sweep(scale);
    let mut out =
        String::from("## §7.4 — robustness to ±15% weight perturbation (choose 20 of 200)\n\n");
    out.push_str(&header(&[
        "trial",
        "sources changed",
        "GAs changed",
        "quality",
    ]));
    out.push('\n');
    for t in &trials {
        out.push_str(&row(&[
            t.index.to_string(),
            t.sources_changed.to_string(),
            t.gas_changed.to_string(),
            format!("{:.4}", t.quality),
        ]));
        out.push('\n');
    }
    let max_gas = trials.iter().map(|t| t.gas_changed).max().unwrap_or(0);
    let src_trials = trials.iter().filter(|t| t.sources_changed > 0).count();
    out.push_str(&format!(
        "\nmax GAs changed: {max_gas}; trials with any source change: {src_trials}/{}\n\
         Paper's claim: at most 1 GA changed, sources rarely changed.\n",
        trials.len()
    ));
    out
}

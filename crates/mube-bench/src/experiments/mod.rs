//! One module per table/figure of the paper's evaluation (§7).
//!
//! Every module exposes `run(scale) -> String` producing the markdown
//! report the corresponding binary prints; `run_all` stitches them
//! together. All experiments are deterministic in [`crate::EXPERIMENT_SEED`].

pub mod ablate_measures;
pub mod ablate_seeding;
pub mod costs;
pub mod fig5;
pub mod fig67;
pub mod fig8;
pub mod optcmp;
pub mod pcsa;
pub mod perturb;
pub mod table1;

//! §7.3 — accuracy of the PCSA probabilistic counting against exact
//! counting.
//!
//! The paper reports "a worst case error of 7% compared to exact counting"
//! for its coverage/redundancy estimates. We measure the relative error of
//! the PCSA union estimate over random subsets of sources, against the
//! exact union cardinality (interval arithmetic over the generator's tuple
//! windows), for several signature sizes — the paper does not state its
//! bitmap count, so the sweep doubles as the accuracy/space ablation.

use mube_sketch::pcsa::PcsaConfig;
use mube_synth::{generate, SynthConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{header, row, Scale, EXPERIMENT_SEED};

/// Accuracy measured for one sketch configuration.
#[derive(Debug, Clone)]
pub struct Accuracy {
    /// Sketch family and configuration label.
    pub sketch: String,
    /// Signature size in bytes.
    pub bytes: usize,
    /// Mean relative error over the sampled unions.
    pub mean_error: f64,
    /// Worst relative error.
    pub worst_error: f64,
}

/// Runs the accuracy sweep.
pub fn sweep(scale: Scale) -> Vec<Accuracy> {
    let (num_sources, trials) = match scale {
        Scale::Paper => (200, 200),
        Scale::Quick => (40, 40),
    };
    let mut config = match scale {
        Scale::Paper => SynthConfig::paper(num_sources),
        Scale::Quick => SynthConfig::small(num_sources),
    };
    let mut out = Vec::new();
    // The same random unions are measured for every sketch configuration.
    let sample_unions =
        |synth: &mube_synth::SynthUniverse, salt: u64| -> Vec<Vec<mube_core::SourceId>> {
            let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ salt);
            let all: Vec<_> = synth.universe.source_ids().collect();
            (0..trials)
                .map(|_| {
                    let k = rng.random_range(1..=20.min(all.len()));
                    let mut picks = all.clone();
                    picks.shuffle(&mut rng);
                    picks.truncate(k);
                    picks
                })
                .collect()
        };
    let summarize = |label: String, bytes: usize, errors: &[f64]| Accuracy {
        sketch: label,
        bytes,
        mean_error: errors.iter().sum::<f64>() / errors.len() as f64,
        worst_error: errors.iter().cloned().fold(0.0, f64::max),
    };

    // PCSA at several bitmap counts — the paper's sketch.
    for num_maps in [64usize, 256, 1024, 4096] {
        config.pcsa_maps = num_maps;
        let synth = generate(&config, EXPERIMENT_SEED);
        let unions = sample_unions(&synth, num_maps as u64);
        let errors: Vec<f64> = unions
            .iter()
            .map(|picks| {
                let exact = synth.exact_distinct(picks.iter().copied()) as f64;
                let mut union = synth.universe.source(picks[0]).signature().unwrap().clone();
                for &s in &picks[1..] {
                    union
                        .union_assign(synth.universe.source(s).signature().unwrap())
                        .expect("shared config");
                }
                (union.estimate() - exact).abs() / exact
            })
            .collect();
        let bytes = PcsaConfig::new(num_maps, config.pcsa_bits, 0).num_maps() * 8;
        out.push(summarize(format!("PCSA {num_maps} maps"), bytes, &errors));
    }

    // HLL and KMV on the same data — the modern alternatives.
    config.pcsa_maps = 64;
    let synth = generate(&config, EXPERIMENT_SEED);
    for precision in [10u32, 12] {
        let sketches: Vec<mube_sketch::HllSketch> = synth
            .windows
            .iter()
            .map(|w| {
                let mut s = mube_sketch::HllSketch::new(precision, 0xA11);
                for id in w.ids() {
                    s.insert(id);
                }
                s
            })
            .collect();
        let unions = sample_unions(&synth, 1000 + u64::from(precision));
        let errors: Vec<f64> = unions
            .iter()
            .map(|picks| {
                let exact = synth.exact_distinct(picks.iter().copied()) as f64;
                let mut union = sketches[picks[0].index()].clone();
                for &s in &picks[1..] {
                    assert!(union.union_assign(&sketches[s.index()]));
                }
                (union.estimate() - exact).abs() / exact
            })
            .collect();
        let bytes = sketches[0].size_bytes();
        out.push(summarize(
            format!("HLL 2^{precision} registers"),
            bytes,
            &errors,
        ));
    }
    for k in [256usize, 1024] {
        let sketches: Vec<mube_sketch::KmvSketch> = synth
            .windows
            .iter()
            .map(|w| {
                let mut s = mube_sketch::KmvSketch::new(k, 0xB22);
                for id in w.ids() {
                    s.insert(id);
                }
                s
            })
            .collect();
        let unions = sample_unions(&synth, 2000 + k as u64);
        let errors: Vec<f64> = unions
            .iter()
            .map(|picks| {
                let exact = synth.exact_distinct(picks.iter().copied()) as f64;
                let mut union = sketches[picks[0].index()].clone();
                for &s in &picks[1..] {
                    union = union.union(&sketches[s.index()]).expect("shared config");
                }
                (union.estimate() - exact).abs() / exact
            })
            .collect();
        out.push(summarize(format!("KMV k={k}"), k * 8, &errors));
    }
    out
}

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let accs = sweep(scale);
    let mut out = String::from(
        "## §7.3 — PCSA accuracy vs exact counting (random unions of up to 20 sources)\n\n",
    );
    out.push_str(&header(&[
        "sketch",
        "signature bytes",
        "mean error",
        "worst error",
    ]));
    out.push('\n');
    for a in &accs {
        out.push_str(&row(&[
            a.sketch.clone(),
            a.bytes.to_string(),
            format!("{:.2}%", a.mean_error * 100.0),
            format!("{:.2}%", a.worst_error * 100.0),
        ]));
        out.push('\n');
    }
    out.push_str("\nPaper's claim: worst case error of 7% (bitmap count unreported).\n");
    out
}

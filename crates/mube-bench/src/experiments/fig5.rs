//! Figure 5 — execution time to choose 20 sources from universes of
//! increasing size (100–700 sources), under the paper's five constraint
//! variants.
//!
//! Expected shape: time grows with the universe size; adding constraints
//! *reduces* time (they shrink the feasible region the search explores).

use crate::{header, row, timed_solve, Scale, Variant, EXPERIMENT_SEED};

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Universe size.
    pub universe: usize,
    /// Constraint variant label.
    pub variant: String,
    /// Solve time in seconds.
    pub seconds: f64,
    /// Overall quality of the chosen solution.
    pub quality: f64,
}

/// Runs the sweep and returns the measured points.
pub fn sweep(scale: Scale) -> Vec<Point> {
    let (sizes, m): (Vec<usize>, usize) = match scale {
        Scale::Paper => ((1..=7).map(|i| i * 100).collect(), 20),
        Scale::Quick => (vec![20, 40, 60], 8),
    };
    let mut points = Vec::new();
    for n in sizes {
        let setup = match scale {
            Scale::Paper => crate::Setup::paper(n),
            Scale::Quick => crate::Setup::small(n),
        };
        let tabu = match scale {
            Scale::Paper => crate::tabu_for_universe(n),
            Scale::Quick => scale.tabu(),
        };
        for variant in Variant::paper_sweep() {
            let constraints = variant.constraints(&setup, m, EXPERIMENT_SEED);
            let problem = setup
                .problem(constraints)
                .expect("variant constraints are valid");
            let solved = timed_solve(&problem, &tabu, EXPERIMENT_SEED)
                .expect("paper workloads are feasible");
            points.push(Point {
                universe: n,
                variant: variant.label(),
                seconds: solved.elapsed.as_secs_f64(),
                quality: solved.solution.quality,
            });
        }
    }
    points
}

/// Runs the experiment and renders the Figure 5 table.
pub fn run(scale: Scale) -> String {
    let points = sweep(scale);
    let mut out =
        String::from("## Figure 5 — execution time vs universe size (choose 20 sources)\n\n");
    out.push_str(&header(&[
        "universe size",
        "constraints",
        "time (s)",
        "quality",
    ]));
    out.push('\n');
    for p in &points {
        out.push_str(&row(&[
            p.universe.to_string(),
            p.variant.clone(),
            format!("{:.2}", p.seconds),
            format!("{:.4}", p.quality),
        ]));
        out.push('\n');
    }
    out
}
